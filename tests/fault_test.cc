// Tests for the qdb resilience stack: deterministic fault injection (spec
// parsing, seeded draw reproducibility, scope filters), the Retry/Backoff
// combinator (jitter determinism, deadline cuts), the circuit-breaker state
// machine, crash-safe artifact saves under torn writes, serving-stack
// degradation (stale cache, interpreted fallback), and a seeded chaos
// "error storm" proving every request terminates and the run replays
// bit-for-bit.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <future>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/retry.h"
#include "common/rng.h"
#include "common/strings.h"
#include "fault/circuit_breaker.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"
#include "serve/inference_server.h"
#include "serve/model_artifact.h"
#include "serve/model_registry.h"
#include "serve/servable.h"
#include "variational/ansatz.h"

namespace qdb {
namespace fault {
namespace {

using serve::InferenceRequest;
using serve::InferenceResponse;
using serve::InferenceServer;
using serve::ModelArtifact;
using serve::ModelRegistry;
using serve::ModelType;
using serve::ServerOptions;

// A hand-built angle-encoded classifier artifact (no training needed).
ModelArtifact TinyVqcArtifact(const std::string& name) {
  ModelArtifact a;
  a.type = ModelType::kVqcClassifier;
  a.name = name;
  a.num_features = 2;
  a.encoding = VqcEncoding::kAngle;
  a.ansatz_layers = 1;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 0.8;
  const int count = RealAmplitudesParamCount(a.num_features, a.ansatz_layers);
  for (int i = 0; i < count; ++i) {
    a.params.push_back(0.3 + 0.17 * static_cast<double>(i));
  }
  return a;
}

std::string TempPath(const std::string& file) {
  return testing::TempDir() + "/" + file;
}

InferenceRequest Request(const std::string& model, DVector input,
                         long timeout_us = 0) {
  InferenceRequest r;
  r.model = model;
  r.input = std::move(input);
  r.timeout_us = timeout_us;
  return r;
}

/// The injector is a process singleton: every test starts and ends clean.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().DisarmAll(); }
  void TearDown() override { FaultInjector::Global().DisarmAll(); }
};

// ---- Fault injector ---------------------------------------------------------

TEST_F(FaultTest, DisarmedPointsAreFreeAndFireNothing) {
  EXPECT_FALSE(FaultInjector::Global().enabled());
  EXPECT_TRUE(MaybeInject("nowhere").ok());
  EXPECT_FALSE(FaultInjector::Global().Sample("nowhere").has_value());
  EXPECT_EQ(FaultInjector::Global().stats("nowhere").evaluations, 0);
}

TEST_F(FaultTest, SpecStringArmsPoints) {
  ASSERT_TRUE(FaultInjector::Global()
                  .ArmFromSpecString(
                      "serve.dispatch:error:0.2:1337,"
                      "artifact.save:torn_write:1:7:0.4:mymodel,"
                      "sim.run:latency:0.5:42:2500")
                  .ok());
  EXPECT_TRUE(FaultInjector::Global().enabled());
  const std::vector<std::string> points =
      FaultInjector::Global().ArmedPoints();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_EQ(points[0], "artifact.save");
  EXPECT_EQ(points[1], "serve.dispatch");
  EXPECT_EQ(points[2], "sim.run");
}

TEST_F(FaultTest, MalformedSpecsAreRejected) {
  FaultInjector& injector = FaultInjector::Global();
  EXPECT_FALSE(injector.ArmFromSpecString("p:badkind:1:0").ok());
  EXPECT_FALSE(injector.ArmFromSpecString("p:error:1.5:0").ok());
  EXPECT_FALSE(injector.ArmFromSpecString("p:error").ok());
  EXPECT_FALSE(injector.ArmFromSpecString(":error:1:0").ok());
  EXPECT_FALSE(injector.ArmFromSpecString("p:error:1:0:99").ok());
  EXPECT_FALSE(injector.ArmFromSpecString("p:error:1:0:0").ok());
  EXPECT_FALSE(injector.ArmFromSpecString("p:latency:1:0:-5").ok());
  EXPECT_FALSE(injector.ArmFromSpecString("p:torn_write:1:0:1.5").ok());
  EXPECT_FALSE(injector.ArmFromSpecString("p:error:notaprob:0").ok());
  EXPECT_FALSE(injector.ArmFromSpecString("p:kill:1:0:1.5").ok());
  EXPECT_FALSE(injector.enabled()) << "bad specs must not arm anything";
}

TEST_F(FaultTest, KillKindParsesAndNeverFiresAtZeroProbability) {
  // Parsing and arming a kill fault must be safe in-process as long as it
  // cannot fire; probability 0 lets the grammar be covered without dying.
  ASSERT_TRUE(FaultInjector::Global()
                  .ArmFromSpecString("store.journal.append:kill:0:5:0.25")
                  .ok());
  const auto armed = FaultInjector::Global().SnapshotArmed();
  ASSERT_EQ(armed.size(), 1u);
  EXPECT_EQ(armed[0].spec.kind, FaultKind::kKill);
  EXPECT_EQ(armed[0].spec.keep_fraction, 0.25);
  for (int i = 0; i < 200; ++i) {
    EXPECT_FALSE(FaultInjector::Global()
                     .Sample("store.journal.append", "any")
                     .has_value());
  }
  EXPECT_STREQ(FaultKindName(FaultKind::kKill), "kill");
  auto parsed = ParseFaultKind("kill");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), FaultKind::kKill);
}

TEST_F(FaultTest, ArmFromEnvWarnsOnUnknownPointButStillArms) {
  obs::Counter* unknown = obs::GetCounter("fault.unknown_point");
  const long before = unknown->Value();
  // One real point, one typo: the typo is armed anyway (maybe the binary is
  // older than the spec) but warned about and counted.
  ASSERT_EQ(setenv("QDB_FAULTS",
                   "serve.dispatch:error:0.1:1,store.jurnal.append:error:0.1:2",
                   1),
            0);
  EXPECT_TRUE(FaultInjector::Global().ArmFromEnv().ok());
  ASSERT_EQ(unsetenv("QDB_FAULTS"), 0);
  EXPECT_EQ(unknown->Value(), before + 1);
  const auto points = FaultInjector::Global().ArmedPoints();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_TRUE(IsKnownFaultPoint("serve.dispatch"));
  EXPECT_TRUE(IsKnownFaultPoint("store.journal.append"));
  EXPECT_FALSE(IsKnownFaultPoint("store.jurnal.append"));
}

TEST_F(FaultTest, SnapshotArmedTracksPerPointTallies) {
  ASSERT_TRUE(
      FaultInjector::Global()
          .ArmFromSpecString("alpha.point:error:1:3,beta.point:error:0:4:9:tgt")
          .ok());
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(MaybeInject("alpha.point").ok());
  }
  EXPECT_TRUE(MaybeInject("beta.point", "other").ok());  // Scope mismatch.
  const auto armed = FaultInjector::Global().SnapshotArmed();
  ASSERT_EQ(armed.size(), 2u);
  EXPECT_EQ(armed[0].point, "alpha.point");
  EXPECT_EQ(armed[0].evaluations, 3);
  EXPECT_EQ(armed[0].fired, 3);
  EXPECT_EQ(armed[1].point, "beta.point");
  EXPECT_EQ(armed[1].spec.target, "tgt");
  EXPECT_EQ(armed[1].evaluations, 0);  // Mismatched scope consumed no draw.
}

TEST_F(FaultTest, StatuszRendersArmedFaultBlock) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(TinyVqcArtifact("statusz-m")).ok());
  InferenceServer server(registry);
  ASSERT_TRUE(server.Start().ok());
  EXPECT_NE(server.Statusz().find("faults: 0 armed"), std::string::npos);

  ASSERT_TRUE(FaultInjector::Global()
                  .ArmFromSpecString("serve.dispatch:error:0.25:1337")
                  .ok());
  (void)server.Submit(Request("statusz-m", {0.4, 0.9}, 500'000)).get();
  const std::string statusz = server.Statusz();
  EXPECT_NE(statusz.find("faults: 1 armed"), std::string::npos) << statusz;
  EXPECT_NE(statusz.find("serve.dispatch: kind=error p=0.25"),
            std::string::npos)
      << statusz;
  EXPECT_NE(statusz.find("evaluations="), std::string::npos);
  server.Shutdown();
}

TEST_F(FaultTest, SeededDrawsAreBitReproducible) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 0.3;
  spec.seed = 20250805;
  constexpr int kDraws = 200;

  auto record = [&] {
    FaultInjector::Global().Arm("p", spec);  // (Re-)arm resets the stream.
    std::vector<bool> fired;
    for (int i = 0; i < kDraws; ++i) {
      fired.push_back(FaultInjector::Global().Sample("p").has_value());
    }
    return fired;
  };
  const std::vector<bool> first = record();
  const std::vector<bool> second = record();
  EXPECT_EQ(first, second);
  // Sanity: an 0.3 Bernoulli stream is neither all-false nor all-true.
  int count = 0;
  for (bool f : first) count += f ? 1 : 0;
  EXPECT_GT(count, 0);
  EXPECT_LT(count, kDraws);

  spec.seed = 999;
  FaultInjector::Global().Arm("p", spec);
  std::vector<bool> reseeded;
  for (int i = 0; i < kDraws; ++i) {
    reseeded.push_back(FaultInjector::Global().Sample("p").has_value());
  }
  EXPECT_NE(first, reseeded) << "a different seed must change the stream";
}

TEST_F(FaultTest, ScopeFilterMatchesExactlyAndConsumesNoDraw) {
  FaultSpec spec;
  spec.probability = 0.5;
  spec.seed = 77;
  spec.target = "model-a";
  FaultInjector::Global().Arm("p", spec);

  // Record the stream as seen by the matching scope alone.
  std::vector<bool> alone;
  for (int i = 0; i < 50; ++i) {
    alone.push_back(FaultInjector::Global().Sample("p", "model-a").has_value());
  }
  // Re-arm and interleave mismatching scopes: they never fire and must not
  // consume draws, so the matching sequence is unchanged.
  FaultInjector::Global().Arm("p", spec);
  std::vector<bool> interleaved;
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(FaultInjector::Global().Sample("p", "model-b").has_value());
    EXPECT_FALSE(FaultInjector::Global().Sample("p").has_value());
    interleaved.push_back(
        FaultInjector::Global().Sample("p", "model-a").has_value());
  }
  EXPECT_EQ(alone, interleaved);
  const FaultInjector::PointStats stats = FaultInjector::Global().stats("p");
  EXPECT_EQ(stats.evaluations, 50) << "mismatches are not evaluations";
}

TEST_F(FaultTest, InjectReturnsConfiguredErrorCode) {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.error_code = StatusCode::kInternal;
  FaultInjector::Global().Arm("p", spec);
  Status status = FaultInjector::Global().Inject("p");
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal);
}

TEST_F(FaultTest, LatencyFaultSleepsThenSucceeds) {
  FaultSpec spec;
  spec.kind = FaultKind::kLatency;
  spec.latency_us = 2000;
  FaultInjector::Global().Arm("p", spec);
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(FaultInjector::Global().Inject("p").ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2000);
}

// ---- Retry / Backoff --------------------------------------------------------

TEST_F(FaultTest, RetrySucceedsAfterTransientFailures) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  std::vector<long> sleeps;
  policy.sleep_us = [&sleeps](long us) { sleeps.push_back(us); };
  int calls = 0;
  Status status = Retry(policy, [&calls](int attempt) {
    EXPECT_EQ(attempt, calls + 1);
    ++calls;
    return calls < 3 ? Status::Unavailable("transient") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 3);
  ASSERT_EQ(sleeps.size(), 2u);
  for (long us : sleeps) {
    EXPECT_GE(us, policy.initial_backoff_us);
    EXPECT_LE(us, policy.max_backoff_us);
  }
}

TEST_F(FaultTest, RetryStopsOnNonRetryableStatus) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.sleep_us = [](long) {};
  int calls = 0;
  Status status = Retry(policy, [&calls](int) {
    ++calls;
    return Status::InvalidArgument("permanent");
  });
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(calls, 1);
}

TEST_F(FaultTest, RetryExhaustsAttemptsAndReturnsLastError) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep_us = [](long) {};
  int calls = 0;
  Status status = Retry(policy, [&calls](int) {
    ++calls;
    return Status::Unavailable(StrCat("fail #", calls));
  });
  EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  EXPECT_EQ(calls, 3);
  EXPECT_NE(status.ToString().find("fail #3"), std::string::npos);
}

TEST_F(FaultTest, RetryHonorsCustomRetryablePredicate) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.sleep_us = [](long) {};
  policy.retryable = [](const Status& s) {
    return s.code() == StatusCode::kInternal;
  };
  int calls = 0;
  Status status = Retry(policy, [&calls](int) {
    ++calls;
    return calls < 2 ? Status::Internal("flaky") : Status::OK();
  });
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(calls, 2);
}

TEST_F(FaultTest, RetryDeadlineAlreadyPastMakesNoAttempt) {
  RetryPolicy policy;
  policy.sleep_us = [](long) {};
  int calls = 0;
  Status status = Retry(
      policy, [&calls](int) { ++calls; return Status::OK(); },
      RetryClock::now() - std::chrono::milliseconds(1));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 0) << "no work after the deadline";
}

TEST_F(FaultTest, RetryCutsBeforeASleepThatWouldOvershootDeadline) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff_us = 50000;  // 50ms per sleep.
  policy.decorrelated_jitter = false;
  bool slept = false;
  policy.sleep_us = [&slept](long) { slept = true; };
  int calls = 0;
  const auto start = RetryClock::now();
  Status status = Retry(
      policy,
      [&calls](int) {
        ++calls;
        return Status::Unavailable("transient");
      },
      start + std::chrono::milliseconds(10));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(calls, 1) << "the 50ms backoff cannot fit a 10ms deadline";
  EXPECT_FALSE(slept) << "the doomed sleep must be skipped entirely";
}

TEST_F(FaultTest, BackoffJitterIsDeterministicPerSeedAndBounded) {
  RetryPolicy policy;
  policy.initial_backoff_us = 100;
  policy.max_backoff_us = 10000;
  auto sequence = [&policy](uint64_t seed) {
    Backoff backoff(policy, Rng(seed));
    std::vector<long> delays;
    for (int i = 0; i < 20; ++i) delays.push_back(backoff.NextDelayUs());
    return delays;
  };
  const std::vector<long> a = sequence(12345);
  const std::vector<long> b = sequence(12345);
  const std::vector<long> c = sequence(54321);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  for (long us : a) {
    EXPECT_GE(us, policy.initial_backoff_us);
    EXPECT_LE(us, policy.max_backoff_us);
  }
}

TEST_F(FaultTest, RetryResultReturnsFirstSuccessfulValue) {
  RetryPolicy policy;
  policy.sleep_us = [](long) {};
  int calls = 0;
  Result<int> result = RetryResult<int>(policy, [&calls](int) -> Result<int> {
    ++calls;
    if (calls < 2) return Status::Unavailable("warming up");
    return 42;
  });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(calls, 2);
}

// ---- Circuit breaker --------------------------------------------------------

CircuitBreakerOptions FastBreaker() {
  CircuitBreakerOptions options;
  options.window = 8;
  options.min_samples = 2;
  options.failure_threshold = 0.5;
  options.open_duration_us = 2000;
  options.probe_interval_us = 50000;
  options.half_open_probes = 1;
  return options;
}

TEST_F(FaultTest, BreakerOpensOnFailureRateAndSheds) {
  CircuitBreaker breaker("b1", FastBreaker());
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed)
      << "one failure is below min_samples";
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  const CircuitBreaker::Stats stats = breaker.stats();
  EXPECT_EQ(stats.opened, 1);
  EXPECT_EQ(stats.shed, 1);
}

TEST_F(FaultTest, BreakerHalfOpenProbeClosesOnSuccess) {
  CircuitBreaker breaker("b2", FastBreaker());
  breaker.RecordFailure();
  breaker.RecordFailure();
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  EXPECT_TRUE(breaker.Allow()) << "cooldown elapsed: probe admitted";
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  EXPECT_FALSE(breaker.Allow())
      << "probes are rate-limited; the next one is not due yet";
  breaker.RecordSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_TRUE(breaker.Allow());
  EXPECT_EQ(breaker.stats().closed, 1);
}

TEST_F(FaultTest, BreakerHalfOpenFailureReopens) {
  CircuitBreaker breaker("b3", FastBreaker());
  breaker.RecordFailure();
  breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  ASSERT_TRUE(breaker.Allow());
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.RecordFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_FALSE(breaker.Allow());
  EXPECT_EQ(breaker.stats().opened, 2);
}

TEST_F(FaultTest, BreakerLostProbeDoesNotWedgeHalfOpen) {
  CircuitBreakerOptions options = FastBreaker();
  options.probe_interval_us = 1000;
  CircuitBreaker breaker("b4", options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(3));
  ASSERT_TRUE(breaker.Allow());  // Probe admitted... and its outcome lost.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_TRUE(breaker.Allow())
      << "after probe_interval another probe must be admitted";
}

TEST_F(FaultTest, BreakerSlowSuccessesCountAsFailures) {
  CircuitBreakerOptions options = FastBreaker();
  options.latency_threshold_us = 1000;
  CircuitBreaker breaker("b5", options);
  breaker.RecordSuccess(/*latency_us=*/5000);
  breaker.RecordSuccess(/*latency_us=*/5000);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen)
      << "a model answering too slowly is as poisoned as one erroring";
}

TEST_F(FaultTest, BreakerStateNamesAreStable) {
  EXPECT_STREQ(BreakerStateName(BreakerState::kClosed), "closed");
  EXPECT_STREQ(BreakerStateName(BreakerState::kOpen), "open");
  EXPECT_STREQ(BreakerStateName(BreakerState::kHalfOpen), "half_open");
}

// ---- Crash-safe artifact saves ---------------------------------------------

TEST_F(FaultTest, TornSaveNeverYieldsHalfReadableArtifact) {
  const ModelArtifact original = TinyVqcArtifact("torn");
  const std::string fresh = TempPath("fault_torn_fresh.qdbm");
  std::remove(fresh.c_str());
  std::remove((fresh + ".tmp").c_str());

  FaultSpec spec;
  spec.kind = FaultKind::kTornWrite;
  spec.keep_fraction = 0.4;
  FaultInjector::Global().Arm("artifact.save", spec);

  // Torn save to a fresh path: the destination must not exist at all.
  Status torn = original.SaveToFile(fresh);
  ASSERT_FALSE(torn.ok());
  EXPECT_EQ(torn.code(), StatusCode::kInternal);
  EXPECT_EQ(ModelArtifact::LoadFromFile(fresh).status().code(),
            StatusCode::kNotFound)
      << "a torn save must never materialize the destination";
  // The partial temp file exists but can never parse as an artifact.
  std::ifstream tmp_in(fresh + ".tmp", std::ios::binary);
  ASSERT_TRUE(tmp_in.good()) << "the simulated crash leaves the partial tmp";
  EXPECT_FALSE(ModelArtifact::LoadFromFile(fresh + ".tmp").ok());

  // Torn overwrite of an existing artifact: the old complete file survives.
  const std::string existing = TempPath("fault_torn_existing.qdbm");
  FaultInjector::Global().DisarmAll();
  ASSERT_TRUE(original.SaveToFile(existing).ok());
  ModelArtifact changed = original;
  changed.params[0] = -1.25;
  FaultInjector::Global().Arm("artifact.save", spec);
  ASSERT_FALSE(changed.SaveToFile(existing).ok());
  Result<ModelArtifact> survivor = ModelArtifact::LoadFromFile(existing);
  ASSERT_TRUE(survivor.ok()) << survivor.status();
  EXPECT_EQ(survivor.value().params[0], original.params[0])
      << "the destination must still hold the previous complete artifact";
}

TEST_F(FaultTest, TornSaveScopeTargetsOneArtifact) {
  FaultSpec spec;
  spec.kind = FaultKind::kTornWrite;
  spec.target = "poisoned";
  FaultInjector::Global().Arm("artifact.save", spec);
  const std::string path = TempPath("fault_scoped_save.qdbm");
  EXPECT_TRUE(TinyVqcArtifact("healthy").SaveToFile(path).ok());
  EXPECT_FALSE(TinyVqcArtifact("poisoned").SaveToFile(path).ok());
}

TEST_F(FaultTest, LoadModelRetriesTransientReadFaults) {
  const std::string path = TempPath("fault_load_retry.qdbm");
  ASSERT_TRUE(TinyVqcArtifact("retry-load").SaveToFile(path).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.probability = 0.5;
  spec.seed = 1234;
  constexpr int kAttempts = 5;

  // Probe the seeded stream: on which attempt does the fault NOT fire?
  FaultInjector::Global().Arm("artifact.load", spec);
  int first_clean_attempt = -1;
  for (int i = 1; i <= kAttempts; ++i) {
    if (!FaultInjector::Global().Sample("artifact.load", path).has_value()) {
      first_clean_attempt = i;
      break;
    }
  }
  // Re-arm (resetting the stream) and let LoadModel live through it.
  FaultInjector::Global().Arm("artifact.load", spec);
  RetryPolicy retry = serve::DefaultArtifactLoadRetry();
  retry.max_attempts = kAttempts;
  retry.sleep_us = [](long) {};
  ModelRegistry registry;
  Result<std::shared_ptr<const serve::ServableModel>> loaded =
      registry.LoadModel(path, /*reassign_version=*/false, retry);
  if (first_clean_attempt > 0) {
    ASSERT_TRUE(loaded.ok())
        << "attempt " << first_clean_attempt
        << " was clean, so the retry loop must succeed: " << loaded.status();
    EXPECT_EQ(registry.size(), 1u);
  } else {
    EXPECT_EQ(loaded.status().code(), StatusCode::kUnavailable);
  }
}

// ---- Serving-stack degradation ---------------------------------------------

TEST_F(FaultTest, BreakerShedServesBoundedStaleCacheEntries) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(TinyVqcArtifact("m")).ok());
  ServerOptions opts;
  opts.max_wait_us = 0;
  opts.retry.max_attempts = 1;  // Fail fast: the breaker is under test.
  opts.result_cache_ttl_us = 1000;   // Entries go stale after 1ms.
  opts.max_stale_age_us = 0;         // Degraded serving accepts any age.
  opts.breaker.window = 8;
  opts.breaker.min_samples = 2;
  opts.breaker.failure_threshold = 0.5;
  opts.breaker.open_duration_us = 60000000;  // Stays open for the test.
  InferenceServer server(registry, opts);
  ASSERT_TRUE(server.Start().ok());

  const DVector x = {0.25, 0.75};
  Result<InferenceResponse> warm = server.Submit(Request("m", x)).get();
  ASSERT_TRUE(warm.ok()) << warm.status();
  const double fresh_value = warm.value().result.value;
  std::this_thread::sleep_for(std::chrono::milliseconds(3));  // Goes stale.

  // Poison the model: every execution now fails terminally. The warm
  // success plus this failure puts the breaker window at 1/2 = 50% ≥ the
  // threshold with min_samples met, so one failure is enough to open it.
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.error_code = StatusCode::kInternal;
  spec.target = "m";
  FaultInjector::Global().Arm("servable.run", spec);
  Result<InferenceResponse> failed = server.Submit(Request("m", x)).get();
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
  ASSERT_NE(server.breaker("m", 1), nullptr);
  EXPECT_EQ(server.breaker("m", 1)->state(), BreakerState::kOpen);

  // Breaker open + stale entry available → degraded response, not an error.
  Result<InferenceResponse> degraded = server.Submit(Request("m", x)).get();
  ASSERT_TRUE(degraded.ok()) << degraded.status();
  EXPECT_TRUE(degraded.value().degraded);
  EXPECT_TRUE(degraded.value().from_cache);
  EXPECT_EQ(degraded.value().result.value, fresh_value);

  // A request with no cached answer is shed with kUnavailable.
  Result<InferenceResponse> shed =
      server.Submit(Request("m", {0.9, 0.1})).get();
  ASSERT_FALSE(shed.ok());
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);

  const InferenceServer::Stats stats = server.stats();
  EXPECT_GE(stats.degraded, 1);
  EXPECT_EQ(stats.submitted, stats.completed + stats.cache_hits +
                                 stats.degraded + stats.rejected +
                                 stats.expired + stats.failed);
  server.Shutdown();
}

TEST_F(FaultTest, StalenessBoundRejectsAncientEntries) {
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(TinyVqcArtifact("m")).ok());
  ServerOptions opts;
  opts.max_wait_us = 0;
  opts.retry.max_attempts = 1;
  opts.result_cache_ttl_us = 500;
  opts.max_stale_age_us = 1000;  // Entries older than 1ms are unusable.
  opts.breaker.min_samples = 2;
  opts.breaker.failure_threshold = 0.5;
  opts.breaker.open_duration_us = 60000000;
  InferenceServer server(registry, opts);
  ASSERT_TRUE(server.Start().ok());

  const DVector x = {0.3, 0.6};
  ASSERT_TRUE(server.Submit(Request("m", x)).get().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));  // Too old.

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.error_code = StatusCode::kInternal;
  spec.target = "m";
  FaultInjector::Global().Arm("servable.run", spec);
  for (int i = 0; i < 2; ++i) {
    ASSERT_FALSE(server.Submit(Request("m", x)).get().ok());
  }
  ASSERT_EQ(server.breaker("m", 1)->state(), BreakerState::kOpen);

  Result<InferenceResponse> shed = server.Submit(Request("m", x)).get();
  ASSERT_FALSE(shed.ok()) << "a 5ms-old entry exceeds the 1ms bound";
  EXPECT_EQ(shed.status().code(), StatusCode::kUnavailable);
  server.Shutdown();
}

TEST_F(FaultTest, CompiledExecutionFaultFallsBackToInterpreted) {
  // Baseline value through the healthy compiled path.
  Result<std::shared_ptr<const serve::ServableModel>> servable =
      serve::ServableModel::Create(TinyVqcArtifact("fallback"));
  ASSERT_TRUE(servable.ok()) << servable.status();
  const std::vector<DVector> inputs = {{0.2, 0.4}, {0.6, 0.8}};
  Result<std::vector<serve::InferenceValue>> healthy =
      servable.value()->RunBatch(serve::RequestKind::kPredict, inputs);
  ASSERT_TRUE(healthy.ok()) << healthy.status();

  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.target = "fallback";
  FaultInjector::Global().Arm("servable.compiled_exec", spec);
  Result<std::vector<serve::InferenceValue>> degraded =
      servable.value()->RunBatch(serve::RequestKind::kPredict, inputs);
  ASSERT_TRUE(degraded.ok())
      << "a compiled-path fault must degrade, not fail: " << degraded.status();
  ASSERT_EQ(degraded.value().size(), healthy.value().size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    EXPECT_NEAR(degraded.value()[i].value, healthy.value()[i].value, 1e-12)
        << "interpreted fallback must agree with the compiled path";
    EXPECT_EQ(degraded.value()[i].label, healthy.value()[i].label);
  }
}

TEST_F(FaultTest, SpuriousWakeupsDoNotDisturbServing) {
  FaultSpec spec;
  spec.kind = FaultKind::kSpuriousWake;
  spec.probability = 1.0;
  FaultInjector::Global().Arm("serve.queue_wait", spec);
  ModelRegistry registry;
  ASSERT_TRUE(registry.Register(TinyVqcArtifact("m")).ok());
  ServerOptions opts;
  opts.max_wait_us = 50;
  InferenceServer server(registry, opts);
  ASSERT_TRUE(server.Start().ok());
  for (int i = 0; i < 8; ++i) {
    const double a = 0.1 * static_cast<double>(i);
    Result<InferenceResponse> response =
        server.Submit(Request("m", {a, 1.0 - a})).get();
    ASSERT_TRUE(response.ok()) << response.status();
  }
  server.Shutdown();
  EXPECT_EQ(server.stats().completed, 8);
}

// ---- Seeded chaos: the error storm ------------------------------------------

/// One sequential error-storm run: a single client submits `count` distinct
/// requests one at a time (deterministic dispatch order → deterministic
/// Bernoulli draws) against a 20% injected kUnavailable on serve.dispatch.
/// Returns one (ok, attempts) signature per request.
std::vector<std::pair<bool, int>> RunErrorStorm(int count) {
  FaultInjector::Global().DisarmAll();
  EXPECT_TRUE(FaultInjector::Global()
                  .ArmFromSpecString("serve.dispatch:error:0.2:1337")
                  .ok());
  ModelRegistry registry;
  EXPECT_TRUE(registry.Register(TinyVqcArtifact("storm")).ok());
  ServerOptions opts;
  opts.max_wait_us = 0;
  opts.num_dispatchers = 1;
  opts.retry.max_attempts = 4;
  opts.retry.initial_backoff_us = 100;
  opts.retry.max_backoff_us = 500;
  InferenceServer server(registry, opts);
  EXPECT_TRUE(server.Start().ok());
  std::vector<std::pair<bool, int>> signature;
  signature.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double a = 0.01 * static_cast<double>(i);
    Result<InferenceResponse> response =
        server.Submit(Request("storm", {a, 1.0 - a})).get();
    signature.emplace_back(response.ok(),
                           response.ok() ? response.value().attempts : -1);
  }
  server.Shutdown();
  const InferenceServer::Stats stats = server.stats();
  EXPECT_EQ(stats.submitted, stats.completed + stats.cache_hits +
                                 stats.degraded + stats.rejected +
                                 stats.expired + stats.failed)
      << "every chaos request must land in exactly one terminal bucket";
  return signature;
}

TEST_F(FaultTest, ErrorStormEveryRequestTerminatesAndMostSucceed) {
  constexpr int kRequests = 60;
  const std::vector<std::pair<bool, int>> run = RunErrorStorm(kRequests);
  ASSERT_EQ(run.size(), static_cast<size_t>(kRequests))
      << "every request future resolved with a definitive status";
  int ok_count = 0;
  int retried = 0;
  for (const auto& [ok, attempts] : run) {
    if (ok) ++ok_count;
    if (ok && attempts > 1) ++retried;
  }
  EXPECT_GE(ok_count, (kRequests * 95) / 100)
      << "at 20% per-attempt faults and 4 attempts, ≥95% must succeed";
  EXPECT_GT(retried, 0) << "some requests must have needed a retry";
}

TEST_F(FaultTest, ErrorStormIsBitReproducibleAcrossRuns) {
  constexpr int kRequests = 60;
  const std::vector<std::pair<bool, int>> first = RunErrorStorm(kRequests);
  const std::vector<std::pair<bool, int>> second = RunErrorStorm(kRequests);
  EXPECT_EQ(first, second)
      << "same QDB_FAULTS seed + sequential traffic → identical outcomes";
}

// ---- QDB_FAULTS chaos profiles (scripts/chaos.sh) ---------------------------

/// Driven by scripts/chaos.sh with QDB_FAULTS set to one of the seeded
/// profiles (error-storm, latency-spike, torn-write). Skips when the
/// variable is unset so a plain ctest run stays deterministic. The
/// invariants are profile-agnostic: saves never leave a half-readable
/// artifact, every serve request terminates with a definitive Status, the
/// terminal buckets account for every admission, and re-arming the same
/// spec replays the run bit for bit.
TEST_F(FaultTest, ChaosProfileFromEnvEveryRequestTerminates) {
  const char* profile = std::getenv("QDB_FAULTS");
  if (profile == nullptr || profile[0] == '\0') {
    GTEST_SKIP() << "QDB_FAULTS not set; run via scripts/chaos.sh";
  }

  auto run_profile = [&] {
    FaultInjector::Global().DisarmAll();
    EXPECT_TRUE(FaultInjector::Global().ArmFromEnv().ok()) << profile;
    EXPECT_TRUE(FaultInjector::Global().enabled())
        << "a chaos profile must arm at least one point";

    // Crash-safe persistence under the profile: a save either completes
    // (and round-trips) or fails without materializing the destination.
    const std::string path = TempPath("chaos_profile.qdbm");
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
    const ModelArtifact artifact = TinyVqcArtifact("chaos");
    int saves_ok = 0;
    for (int i = 0; i < 8; ++i) {
      if (artifact.SaveToFile(path).ok()) {
        ++saves_ok;
        Result<ModelArtifact> back = ModelArtifact::LoadFromFile(path);
        EXPECT_TRUE(back.ok()) << back.status();
      } else {
        std::remove(path.c_str());  // Start the next save from a clean slate.
        EXPECT_EQ(ModelArtifact::LoadFromFile(path).status().code(),
                  StatusCode::kNotFound)
            << "a failed save must never leave a readable destination";
      }
    }

    // Serving under the profile: sequential traffic, so the outcome
    // signature is a pure function of the armed seeds.
    ModelRegistry registry;
    EXPECT_TRUE(registry.Register(TinyVqcArtifact("chaos-serve")).ok());
    ServerOptions opts;
    opts.max_wait_us = 0;
    opts.num_dispatchers = 1;
    opts.retry.initial_backoff_us = 100;
    opts.retry.max_backoff_us = 500;
    InferenceServer server(registry, opts);
    EXPECT_TRUE(server.Start().ok());
    std::vector<std::pair<bool, int>> signature;
    for (int i = 0; i < 32; ++i) {
      const double a = 0.03 * static_cast<double>(i);
      Result<InferenceResponse> response =
          server.Submit(Request("chaos-serve", {a, 1.0 - a})).get();
      signature.emplace_back(response.ok(),
                             response.ok() ? response.value().attempts : -1);
    }
    server.Shutdown();
    const InferenceServer::Stats stats = server.stats();
    EXPECT_EQ(stats.submitted, 32);
    EXPECT_EQ(stats.submitted, stats.completed + stats.cache_hits +
                                   stats.degraded + stats.rejected +
                                   stats.expired + stats.failed)
        << "every request must land in exactly one terminal bucket";
    return std::make_pair(saves_ok, signature);
  };

  const auto first = run_profile();
  const auto second = run_profile();
  EXPECT_EQ(first, second)
      << "the same QDB_FAULTS seeds must replay bit for bit";
}

// ---- Metrics export ---------------------------------------------------------

TEST_F(FaultTest, ResilienceHistogramsAppearInJsonExport) {
  // Touch both histograms: a retried call and a breaker open→close cycle.
  RetryPolicy policy;
  policy.sleep_us = [](long) {};
  int calls = 0;
  EXPECT_TRUE(Retry(policy, [&calls](int) {
                return ++calls < 2 ? Status::Unavailable("x") : Status::OK();
              }).ok());
  CircuitBreakerOptions options = FastBreaker();
  options.open_duration_us = 1000;
  options.probe_interval_us = 0;
  CircuitBreaker breaker("export", options);
  breaker.RecordFailure();
  breaker.RecordFailure();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  ASSERT_TRUE(breaker.Allow());
  breaker.RecordSuccess();

  const std::string json = obs::MetricsRegistry::Global().ExportJson();
  EXPECT_NE(json.find("\"fault.retry.attempts\""), std::string::npos);
  EXPECT_NE(json.find("\"fault.breaker.open_duration_us\""),
            std::string::npos);
  EXPECT_NE(json.find("\"fault.breaker.state.export\""), std::string::npos);
  EXPECT_NE(json.find("\"fault.breaker.opened\""), std::string::npos);
}

}  // namespace
}  // namespace fault
}  // namespace qdb
