# Empty dependencies file for parallel_tempering_test.
# This may be replaced when dependencies are built.
