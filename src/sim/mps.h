/// \file mps.h
/// \brief Matrix-product-state simulator: the tensor-network technique the
/// QML literature borrows from many-body physics. Simulates circuits whose
/// entanglement stays bounded — chain-like circuits on far more qubits
/// than the 2^n state vector allows — with controllable truncation.

#ifndef QDB_SIM_MPS_H_
#define QDB_SIM_MPS_H_

#include <array>
#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// \brief An n-qubit state as a chain of site tensors A_k[s] (χ_l × χ_r
/// matrices per physical index s ∈ {0, 1}).
///
/// Two-qubit gates on adjacent sites contract the pair, apply the 4×4
/// matrix, and split back with a truncated SVD (bond ≤ max_bond);
/// non-adjacent operands are routed with adjacent swaps. With
/// max_bond ≥ 2^{n/2} the representation is exact; smaller bonds trade
/// fidelity for memory/time, with the discarded weight tracked.
class MpsState {
 public:
  /// |0…0⟩ with every bond dimension 1.
  MpsState(int num_qubits, int max_bond = 64, double svd_tol = 1e-12);

  int num_qubits() const { return static_cast<int>(tensors_.size()); }
  int max_bond() const { return max_bond_; }

  /// Accumulated discarded squared singular-value weight (0 = exact).
  double truncation_weight() const { return truncation_weight_; }

  /// Largest current bond dimension.
  int MaxBondDimension() const;

  /// Applies a 2×2 unitary to one site (never grows bonds).
  void Apply1Q(int site, const Matrix& u);

  /// Applies a 4×4 unitary to sites (site, site+1), with `site` the high
  /// bit of the matrix index.
  Status Apply2QAdjacent(int site, const Matrix& u);

  /// Applies any 1- or 2-qubit gate (non-adjacent operands are swap-routed
  /// there and back). Gates on ≥3 qubits return Unimplemented.
  Status ApplyGate(const Gate& gate, const DVector& angles);

  /// ⟨index|ψ⟩ by contracting the chain (O(n·χ²)).
  Complex Amplitude(uint64_t index) const;

  /// Full amplitude vector (n ≤ 20 enforced; for tests and diagnostics).
  Result<CVector> ToAmplitudes() const;

  /// ⟨ψ|ψ⟩ — drifts below 1 exactly by the truncated weight.
  double NormSquared() const;

 private:
  void SwapAdjacent(int site);

  int max_bond_;
  double svd_tol_;
  double truncation_weight_ = 0.0;
  /// tensors_[k][s]: χ_{k} × χ_{k+1} matrix.
  std::vector<std::array<Matrix, 2>> tensors_;
};

/// \brief Runs circuits on MpsState, mirroring StateVectorSimulator.
class MpsSimulator {
 public:
  struct Options {
    int max_bond = 64;
    double svd_tol = 1e-12;
  };

  MpsSimulator() : options_(Options{}) {}
  explicit MpsSimulator(Options options) : options_(options) {}

  /// Runs `circuit` from |0…0⟩ with `params` bound.
  Result<MpsState> Run(const Circuit& circuit,
                       const DVector& params = {}) const;

 private:
  Options options_;
};

}  // namespace qdb

#endif  // QDB_SIM_MPS_H_
