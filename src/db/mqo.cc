#include "db/mqo.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace qdb {

double MqoInstance::SelectionCost(const std::vector<int>& selection) const {
  QDB_CHECK_EQ(selection.size(), plan_costs.size());
  double total = 0.0;
  for (int q = 0; q < num_queries(); ++q) {
    QDB_CHECK_GE(selection[q], 0);
    QDB_CHECK_LT(selection[q], static_cast<int>(plan_costs[q].size()));
    total += plan_costs[q][selection[q]];
  }
  for (const auto& s : sharings) {
    if (selection[s.query1] == s.plan1 && selection[s.query2] == s.plan2) {
      total -= s.saving;
    }
  }
  return total;
}

MqoInstance RandomMqoInstance(int num_queries, int plans_per_query,
                              double sharing_probability, Rng& rng) {
  QDB_CHECK_GE(num_queries, 1);
  QDB_CHECK_GE(plans_per_query, 1);
  MqoInstance instance;
  instance.plan_costs.resize(num_queries);
  for (auto& costs : instance.plan_costs) {
    costs.resize(plans_per_query);
    for (auto& c : costs) c = rng.Uniform(10.0, 100.0);
  }
  for (int q1 = 0; q1 < num_queries; ++q1) {
    for (int q2 = q1 + 1; q2 < num_queries; ++q2) {
      for (int p1 = 0; p1 < plans_per_query; ++p1) {
        for (int p2 = 0; p2 < plans_per_query; ++p2) {
          if (rng.Bernoulli(sharing_probability)) {
            instance.sharings.push_back(
                {q1, p1, q2, p2, rng.Uniform(5.0, 40.0)});
          }
        }
      }
    }
  }
  return instance;
}

int MqoQubo::VarIndex(int query, int plan) const {
  QDB_CHECK_GE(query, 0);
  QDB_CHECK_LT(query, static_cast<int>(plans_per_query_.size()));
  QDB_CHECK_GE(plan, 0);
  QDB_CHECK_LT(plan, plans_per_query_[query]);
  int base = 0;
  for (int q = 0; q < query; ++q) base += plans_per_query_[q];
  return base + plan;
}

Result<MqoQubo> MqoQubo::Create(const MqoInstance& instance,
                                double penalty_weight) {
  if (instance.num_queries() == 0) {
    return Status::InvalidArgument("MQO instance has no queries");
  }
  std::vector<int> plans_per_query;
  int total_vars = 0;
  for (const auto& costs : instance.plan_costs) {
    if (costs.empty()) {
      return Status::InvalidArgument("every query needs at least one plan");
    }
    plans_per_query.push_back(static_cast<int>(costs.size()));
    total_vars += static_cast<int>(costs.size());
  }
  // One-hot violations for query q can gain at most its maximum plan cost
  // plus every saving its plans participate in; the penalty only needs to
  // beat the worst query, not the global sum — a tight weight keeps the
  // annealing landscape well scaled.
  DVector query_sensitivity(instance.num_queries(), 0.0);
  for (int q = 0; q < instance.num_queries(); ++q) {
    for (double c : instance.plan_costs[q]) {
      query_sensitivity[q] = std::max(query_sensitivity[q], c);
    }
  }
  for (const auto& s : instance.sharings) {
    if (s.query1 >= 0 && s.query1 < instance.num_queries()) {
      query_sensitivity[s.query1] += s.saving;
    }
    if (s.query2 >= 0 && s.query2 < instance.num_queries()) {
      query_sensitivity[s.query2] += s.saving;
    }
  }
  double max_sensitivity = 0.0;
  for (double v : query_sensitivity) {
    max_sensitivity = std::max(max_sensitivity, v);
  }
  const double penalty =
      penalty_weight > 0.0 ? penalty_weight : max_sensitivity + 1.0;

  Qubo qubo(total_vars);
  MqoQubo mqo(instance, Qubo(total_vars), plans_per_query);

  // Plan costs (linear) and sharing savings (negative quadratic).
  for (int q = 0; q < instance.num_queries(); ++q) {
    for (int p = 0; p < plans_per_query[q]; ++p) {
      qubo.AddLinear(mqo.VarIndex(q, p), instance.plan_costs[q][p]);
    }
  }
  for (const auto& s : instance.sharings) {
    if (s.query1 == s.query2) {
      return Status::InvalidArgument("sharing must involve distinct queries");
    }
    qubo.AddQuadratic(mqo.VarIndex(s.query1, s.plan1),
                      mqo.VarIndex(s.query2, s.plan2), -s.saving);
  }
  // One-hot per query.
  for (int q = 0; q < instance.num_queries(); ++q) {
    qubo.AddOffset(penalty);
    for (int p = 0; p < plans_per_query[q]; ++p) {
      qubo.AddLinear(mqo.VarIndex(q, p), -penalty);
      for (int p2 = p + 1; p2 < plans_per_query[q]; ++p2) {
        qubo.AddQuadratic(mqo.VarIndex(q, p), mqo.VarIndex(q, p2),
                          2.0 * penalty);
      }
    }
  }
  mqo.qubo_ = std::move(qubo);
  return mqo;
}

std::vector<int> MqoQubo::Decode(const std::vector<uint8_t>& bits) const {
  QDB_CHECK_EQ(static_cast<int>(bits.size()), qubo_.num_vars());
  std::vector<int> selection(plans_per_query_.size(), -1);
  int base = 0;
  for (size_t q = 0; q < plans_per_query_.size(); ++q) {
    int chosen = -1;
    bool conflict = false;
    for (int p = 0; p < plans_per_query_[q]; ++p) {
      if (bits[base + p]) {
        if (chosen >= 0) conflict = true;
        chosen = p;
      }
    }
    if (chosen < 0 || conflict) {
      // Repair: cheapest plan for this query.
      chosen = 0;
      for (int p = 1; p < plans_per_query_[q]; ++p) {
        if (instance_.plan_costs[q][p] < instance_.plan_costs[q][chosen]) {
          chosen = p;
        }
      }
    }
    selection[q] = chosen;
    base += plans_per_query_[q];
  }
  return selection;
}

Result<double> MqoExhaustiveCost(const MqoInstance& instance) {
  double combinations = 1.0;
  for (const auto& costs : instance.plan_costs) {
    combinations *= static_cast<double>(costs.size());
    if (combinations > 2e6) {
      return Status::InvalidArgument(
          "too many plan combinations for exhaustive search");
    }
  }
  const int q = instance.num_queries();
  std::vector<int> selection(q, 0);
  double best = std::numeric_limits<double>::infinity();
  while (true) {
    best = std::min(best, instance.SelectionCost(selection));
    int idx = q - 1;
    while (idx >= 0) {
      if (++selection[idx] <
          static_cast<int>(instance.plan_costs[idx].size())) {
        break;
      }
      selection[idx] = 0;
      --idx;
    }
    if (idx < 0) break;
  }
  return best;
}

double MqoCheapestPlanCost(const MqoInstance& instance) {
  const int q = instance.num_queries();
  std::vector<int> selection(q);
  for (int i = 0; i < q; ++i) {
    int best = 0;
    for (int p = 1; p < static_cast<int>(instance.plan_costs[i].size()); ++p) {
      if (instance.plan_costs[i][p] < instance.plan_costs[i][best]) best = p;
    }
    selection[i] = best;
  }
  return instance.SelectionCost(selection);
}

double MqoGreedyCost(const MqoInstance& instance) {
  const int q = instance.num_queries();
  std::vector<int> selection(q);
  for (int i = 0; i < q; ++i) {
    int best = 0;
    for (int p = 1; p < static_cast<int>(instance.plan_costs[i].size()); ++p) {
      if (instance.plan_costs[i][p] < instance.plan_costs[i][best]) best = p;
    }
    selection[i] = best;
  }
  double current = instance.SelectionCost(selection);
  bool improved = true;
  while (improved) {
    improved = false;
    for (int i = 0; i < q; ++i) {
      const int original = selection[i];
      for (int p = 0; p < static_cast<int>(instance.plan_costs[i].size());
           ++p) {
        if (p == original) continue;
        selection[i] = p;
        const double cost = instance.SelectionCost(selection);
        if (cost < current - 1e-12) {
          current = cost;
          improved = true;
        } else {
          selection[i] = original;
        }
        if (selection[i] != original) break;  // Accepted; rescan from here.
      }
    }
  }
  return current;
}

}  // namespace qdb
