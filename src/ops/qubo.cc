#include "ops/qubo.h"

#include <cmath>
#include <sstream>

#include "common/strings.h"
#include "ops/ising.h"

namespace qdb {

Qubo::Qubo(int num_vars)
    : linear_(static_cast<size_t>(num_vars), 0.0),
      adjacency_(static_cast<size_t>(num_vars)) {
  QDB_CHECK_GT(num_vars, 0);
}

void Qubo::AddLinear(int i, double value) {
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_vars());
  linear_[i] += value;
}

void Qubo::AddQuadratic(int i, int j, double value) {
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_vars());
  QDB_CHECK_GE(j, 0);
  QDB_CHECK_LT(j, num_vars());
  if (i == j) {
    // x² = x for binary variables.
    AddLinear(i, value);
    return;
  }
  if (i > j) std::swap(i, j);
  quadratic_[{i, j}] += value;
  // Keep the adjacency index consistent: update in place if present.
  auto update = [value](std::vector<std::pair<int, double>>& list, int other) {
    for (auto& [n, w] : list) {
      if (n == other) {
        w += value;
        return true;
      }
    }
    return false;
  };
  if (!update(adjacency_[i], j)) adjacency_[i].push_back({j, value});
  if (!update(adjacency_[j], i)) adjacency_[j].push_back({i, value});
}

void Qubo::AddOffset(double value) { offset_ += value; }

double Qubo::linear(int i) const {
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_vars());
  return linear_[i];
}

double Qubo::Energy(const std::vector<uint8_t>& bits) const {
  QDB_CHECK_EQ(static_cast<int>(bits.size()), num_vars());
  double e = offset_;
  for (int i = 0; i < num_vars(); ++i) {
    if (bits[i]) e += linear_[i];
  }
  for (const auto& [ij, v] : quadratic_) {
    if (bits[ij.first] && bits[ij.second]) e += v;
  }
  return e;
}

double Qubo::FlipDelta(const std::vector<uint8_t>& bits, int i) const {
  QDB_CHECK_EQ(static_cast<int>(bits.size()), num_vars());
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_vars());
  // Flipping x_i toggles its linear term and every quadratic term whose
  // partner bit is set. sign = +1 when turning on, −1 when turning off.
  const double sign = bits[i] ? -1.0 : 1.0;
  double delta = sign * linear_[i];
  for (const auto& [j, w] : adjacency_[i]) {
    if (bits[j]) delta += sign * w;
  }
  return delta;
}

const std::vector<std::pair<int, double>>& Qubo::Neighbors(int i) const {
  QDB_CHECK_GE(i, 0);
  QDB_CHECK_LT(i, num_vars());
  return adjacency_[i];
}

IsingModel Qubo::ToIsing() const {
  // Substitute x_i = (1 + s_i) / 2.
  IsingModel ising(num_vars());
  ising.AddOffset(offset_);
  for (int i = 0; i < num_vars(); ++i) {
    if (linear_[i] != 0.0) {
      ising.AddField(i, linear_[i] / 2.0);
      ising.AddOffset(linear_[i] / 2.0);
    }
  }
  for (const auto& [ij, v] : quadratic_) {
    if (v == 0.0) continue;
    ising.AddCoupling(ij.first, ij.second, v / 4.0);
    ising.AddField(ij.first, v / 4.0);
    ising.AddField(ij.second, v / 4.0);
    ising.AddOffset(v / 4.0);
  }
  return ising;
}

std::string Qubo::ToString() const {
  std::ostringstream os;
  os << "QUBO(" << num_vars() << " vars, offset " << offset_ << ")\n";
  for (int i = 0; i < num_vars(); ++i) {
    if (linear_[i] != 0.0) os << "  " << linear_[i] << " x" << i << "\n";
  }
  for (const auto& [ij, v] : quadratic_) {
    if (v != 0.0)
      os << "  " << v << " x" << ij.first << " x" << ij.second << "\n";
  }
  return os.str();
}

}  // namespace qdb
