// Tests for Grover search.

#include <gtest/gtest.h>

#include <cmath>

#include "algo/grover.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

TEST(GroverTest, OptimalIterationCounts) {
  EXPECT_EQ(OptimalGroverIterations(2, 1), 1);   // ⌊π/4·2⌋ = 1.
  EXPECT_EQ(OptimalGroverIterations(4, 1), 3);   // ⌊π/4·4⌋ = 3.
  EXPECT_EQ(OptimalGroverIterations(8, 1), 12);  // ⌊π/4·16⌋ = 12.
  EXPECT_EQ(OptimalGroverIterations(4, 4), 1);   // ⌊π/4·2⌋ = 1.
}

TEST(GroverTest, CircuitValidation) {
  EXPECT_FALSE(GroverCircuit(0, {0}, 1).ok());
  EXPECT_FALSE(GroverCircuit(3, {}, 1).ok());
  EXPECT_FALSE(GroverCircuit(3, {8}, 1).ok());   // Index out of range.
  EXPECT_FALSE(GroverCircuit(3, {0}, -1).ok());
  EXPECT_TRUE(GroverCircuit(3, {5}, 2).ok());
}

TEST(GroverTest, ZeroIterationsIsUniform) {
  auto c = GroverCircuit(3, {5}, 0);
  ASSERT_TRUE(c.ok());
  StateVectorSimulator sim;
  auto state = sim.Run(c.value());
  ASSERT_TRUE(state.ok());
  for (uint64_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(state.value().Probability(i), 0.125, 1e-12);
  }
}

class GroverSuccessTest : public ::testing::TestWithParam<int> {};

TEST_P(GroverSuccessTest, OptimalIterationsAmplifyMarkedState) {
  const int n = GetParam();
  const uint64_t marked = (uint64_t{1} << n) - 2;  // An arbitrary index.
  const int iters = OptimalGroverIterations(n);
  auto p = GroverSuccessProbability(n, {marked}, iters);
  ASSERT_TRUE(p.ok());
  // Theory: success ≥ 1 − 1/N at the optimal count; allow slack for the
  // floor in the iteration count.
  EXPECT_GT(p.value(), 0.85) << "n=" << n;
}

TEST_P(GroverSuccessTest, SuccessFollowsSineSquaredLaw) {
  const int n = GetParam();
  const uint64_t dim = uint64_t{1} << n;
  const double theta = std::asin(1.0 / std::sqrt(static_cast<double>(dim)));
  for (int k : {0, 1, 2}) {
    auto p = GroverSuccessProbability(n, {3}, k);
    ASSERT_TRUE(p.ok());
    const double expected = std::pow(std::sin((2 * k + 1) * theta), 2);
    EXPECT_NEAR(p.value(), expected, 1e-9) << "n=" << n << " k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Widths, GroverSuccessTest,
                         ::testing::Values(3, 4, 5, 6, 7));

TEST(GroverTest, MultipleMarkedStates) {
  const int n = 4;
  const std::vector<uint64_t> marked = {2, 9, 13};
  const int iters = OptimalGroverIterations(n, 3);
  auto p = GroverSuccessProbability(n, marked, iters);
  ASSERT_TRUE(p.ok());
  EXPECT_GT(p.value(), 0.8);
}

TEST(GroverTest, OvershootingDecreasesSuccess) {
  const int n = 5;
  const int optimal = OptimalGroverIterations(n);
  auto at_optimal = GroverSuccessProbability(n, {7}, optimal);
  auto overshot = GroverSuccessProbability(n, {7}, 2 * optimal);
  ASSERT_TRUE(at_optimal.ok());
  ASSERT_TRUE(overshot.ok());
  EXPECT_GT(at_optimal.value(), overshot.value());
}

TEST(GroverTest, EndToEndSearchFindsKey) {
  Rng rng(3);
  int found = 0;
  const int trials = 20;
  for (int t = 0; t < trials; ++t) {
    auto result = GroverSearch(5, {19}, rng);
    ASSERT_TRUE(result.ok());
    found += result.value().found;
  }
  EXPECT_GE(found, 17);  // ~99.9% per-trial success at n=5.
}

TEST(GroverTest, SingleQubitDegenerateCase) {
  // N = 2: θ = π/4, so one iteration gives sin²(3π/4) = 1/2 — Grover
  // cannot exceed coin-flip odds on a 1-qubit database.
  auto p = GroverSuccessProbability(1, {1}, 1);
  ASSERT_TRUE(p.ok());
  EXPECT_NEAR(p.value(), 0.5, 1e-9);
}

}  // namespace
}  // namespace qdb
