// Scans the transverse-field Ising model across its phase transition with
// VQE, validating against exact diagonalization — the "simulating quantum
// systems" workload of the tutorial's foundations, and a showcase of the
// model-Hamiltonian library, adjoint-gradient training, and the MPS
// simulator for wide chains.

#include <cstdio>

#include "ops/model_hamiltonians.h"
#include "sim/mps.h"
#include "variational/ansatz.h"
#include "variational/vqe.h"

int main() {
  using namespace qdb;

  const int n = 4;
  std::printf("TFIM chain, %d sites: H = -J Σ ZZ - h Σ X (J = 1)\n", n);
  std::printf("%8s %14s %14s %10s\n", "h", "VQE energy", "exact", "error");

  for (double h : {0.2, 0.6, 1.0, 1.4, 2.0}) {
    PauliSum hamiltonian =
        TransverseFieldIsing(n, 1.0, h).ValueOrDie();
    const double exact = ExactGroundStateEnergy(hamiltonian).ValueOrDie();

    Circuit ansatz = EfficientSU2Ansatz(n, 2);
    VqeOptions options;
    options.adam.max_iterations = 300;
    options.adam.learning_rate = 0.1;
    options.seed = 13;
    VqeResult result = RunVqe(ansatz, hamiltonian, options).ValueOrDie();
    std::printf("%8.2f %14.6f %14.6f %10.2e\n", h, result.energy, exact,
                result.energy - exact);
  }

  // The MPS simulator handles the same physics at widths no state vector
  // can touch: prepare a 64-site paramagnetic product ansatz and check its
  // norm and entanglement stay controlled.
  const int wide = 64;
  Circuit wide_circuit(wide);
  for (int q = 0; q < wide; ++q) wide_circuit.RY(q, 1.2);
  for (int q = 0; q + 1 < wide; ++q) wide_circuit.RZZ(q, q + 1, 0.4);
  MpsSimulator mps_sim({/*max_bond=*/16, 1e-12});
  MpsState mps = mps_sim.Run(wide_circuit).ValueOrDie();
  std::printf(
      "\nMPS: %d-site entangled chain simulated exactly "
      "(max bond %d, truncation %.1e, norm %.6f)\n",
      wide, mps.MaxBondDimension(), mps.truncation_weight(),
      mps.NormSquared());
  return 0;
}
