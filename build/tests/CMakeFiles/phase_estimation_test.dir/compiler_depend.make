# Empty compiler generated dependencies file for phase_estimation_test.
# This may be replaced when dependencies are built.
