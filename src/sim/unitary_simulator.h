/// \file unitary_simulator.h
/// \brief Materializes the full unitary matrix of a circuit (small n only).
///
/// Used by tests (pass equivalence, gate identities) and by algorithm
/// analysis; never on simulator hot paths.

#ifndef QDB_SIM_UNITARY_SIMULATOR_H_
#define QDB_SIM_UNITARY_SIMULATOR_H_

#include "circuit/circuit.h"
#include "common/result.h"
#include "linalg/matrix.h"

namespace qdb {

/// \brief Builds the 2^n x 2^n unitary of a circuit by propagating each
/// computational basis state through the state-vector simulator.
///
/// \param circuit the circuit (n ≤ 12 enforced: 16M complex entries).
/// \param params bound values for symbolic parameters.
Result<Matrix> CircuitUnitary(const Circuit& circuit,
                              const DVector& params = {});

}  // namespace qdb

#endif  // QDB_SIM_UNITARY_SIMULATOR_H_
