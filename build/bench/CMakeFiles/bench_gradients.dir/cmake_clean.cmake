file(REMOVE_RECURSE
  "CMakeFiles/bench_gradients.dir/bench_gradients.cc.o"
  "CMakeFiles/bench_gradients.dir/bench_gradients.cc.o.d"
  "bench_gradients"
  "bench_gradients.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_gradients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
