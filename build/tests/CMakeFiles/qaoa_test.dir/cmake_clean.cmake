file(REMOVE_RECURSE
  "CMakeFiles/qaoa_test.dir/qaoa_test.cc.o"
  "CMakeFiles/qaoa_test.dir/qaoa_test.cc.o.d"
  "qaoa_test"
  "qaoa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qaoa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
