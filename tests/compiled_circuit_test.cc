// Interpreted-vs-compiled equivalence for the compiled-circuit engine:
// without fusion the compiled program must replay the interpreter's exact
// kernel sequence (bit-identical amplitudes); with fusion results agree to
// floating-point round-off and stay bit-identical across thread widths.

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "sim/compiled_circuit.h"
#include "sim/state_vector.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

/// Sets the global pool width for one scope, restoring one lane on exit so
/// tests cannot leak parallelism into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { ThreadPool::SetGlobalThreads(n); }
  ~ScopedThreads() { ThreadPool::SetGlobalThreads(1); }
};

/// Runs `circuit` through the per-gate interpreter (compilation disabled).
StateVector RunInterpreted(const Circuit& circuit, const DVector& params = {}) {
  StateVectorSimulator sim;
  sim.set_execution_mode(ExecutionMode::kInterpreted);
  auto result = sim.Run(circuit, params);
  QDB_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

/// Runs `circuit` through a freshly compiled program.
StateVector RunCompiled(const Circuit& circuit, const CompileOptions& options,
                        const DVector& params = {}) {
  const CompiledCircuit program = CompiledCircuit::Compile(circuit, options);
  StateVector state(circuit.num_qubits());
  Status status = program.Execute(state, params);
  QDB_CHECK(status.ok()) << status.ToString();
  return state;
}

void ExpectBitIdentical(const StateVector& a, const StateVector& b) {
  ASSERT_EQ(a.dim(), b.dim());
  for (uint64_t i = 0; i < a.dim(); ++i) {
    ASSERT_EQ(a.amplitude(i), b.amplitude(i)) << "amplitude " << i;
  }
}

void ExpectNear(const StateVector& a, const StateVector& b, double tol) {
  ASSERT_EQ(a.dim(), b.dim());
  for (uint64_t i = 0; i < a.dim(); ++i) {
    ASSERT_NEAR(std::abs(a.amplitude(i) - b.amplitude(i)), 0.0, tol)
        << "amplitude " << i;
  }
}

/// One small circuit per gate type in the IR, prefixed by a dense prelude so
/// every gate acts on a non-trivial superposition.
std::vector<Circuit> PerGateCircuits() {
  std::vector<Circuit> out;
  auto with_prelude = [](int n) {
    Circuit c(n);
    for (int q = 0; q < n; ++q) c.H(q).RY(q, 0.3 * (q + 1));
    return c;
  };
  // Fixed 1Q.
  for (GateType t : {GateType::kI, GateType::kX, GateType::kY, GateType::kZ,
                     GateType::kH, GateType::kS, GateType::kSdg, GateType::kT,
                     GateType::kTdg, GateType::kSX}) {
    Circuit c = with_prelude(2);
    c.Append(Gate{t, {1}, {}});
    out.push_back(std::move(c));
  }
  // Parameterized 1Q (constant angles here; symbolic covered separately).
  out.push_back(with_prelude(2).RX(0, 0.7));
  out.push_back(with_prelude(2).RY(0, -0.4));
  out.push_back(with_prelude(2).RZ(0, 1.1));
  out.push_back(with_prelude(2).P(0, 0.9));
  out.push_back(with_prelude(2).U(0, ParamExpr::Constant(0.3),
                                  ParamExpr::Constant(-0.8),
                                  ParamExpr::Constant(1.2)));
  // Fixed 2Q, both operand orders.
  for (GateType t : {GateType::kCX, GateType::kCY, GateType::kCZ,
                     GateType::kCH, GateType::kSwap}) {
    Circuit c = with_prelude(3);
    c.Append(Gate{t, {0, 2}, {}});
    c.Append(Gate{t, {2, 1}, {}});
    out.push_back(std::move(c));
  }
  // Parameterized 2Q.
  out.push_back(with_prelude(3).CRX(0, 2, 0.6));
  out.push_back(with_prelude(3).CRY(2, 0, -0.5));
  out.push_back(with_prelude(3).CRZ(1, 2, 0.8));
  out.push_back(with_prelude(3).CP(0, 1, -1.3));
  out.push_back(with_prelude(3).RXX(0, 2, 0.4));
  out.push_back(with_prelude(3).RYY(1, 2, -0.9));
  out.push_back(with_prelude(3).RZZ(0, 1, 1.5));
  // 3Q and variadic.
  out.push_back(with_prelude(3).CCX(0, 1, 2));
  out.push_back(with_prelude(3).CSwap(2, 0, 1));
  out.push_back(with_prelude(4).MCX({0, 1, 2}, 3));
  out.push_back(with_prelude(4).MCZ({3, 1}, 0));
  return out;
}

TEST(CompiledCircuitTest, EveryGateTypeBitIdenticalWithoutFusion) {
  for (const Circuit& c : PerGateCircuits()) {
    const StateVector interpreted = RunInterpreted(c);
    const StateVector compiled = RunCompiled(c, CompileOptions{.fuse = false});
    ExpectBitIdentical(interpreted, compiled);
  }
}

TEST(CompiledCircuitTest, EveryGateTypeNearIdenticalWithFusion) {
  for (const Circuit& c : PerGateCircuits()) {
    const StateVector interpreted = RunInterpreted(c);
    const StateVector fused = RunCompiled(c, CompileOptions{.fuse = true});
    ExpectNear(interpreted, fused, 1e-12);
  }
}

/// A random circuit mixing every kernel family, with symbolic parameters
/// when `symbolic` is set.
Circuit RandomMixedCircuit(int num_qubits, int gates, Rng& rng,
                           bool symbolic) {
  Circuit c(num_qubits);
  int next_param = 0;
  auto angle = [&]() -> ParamExpr {
    if (symbolic && rng.UniformInt(uint64_t{2}) == 0) {
      return ParamExpr::Affine(next_param++, rng.Uniform(0.5, 1.5),
                               rng.Uniform(-0.3, 0.3));
    }
    return ParamExpr::Constant(rng.Uniform(-1.5, 1.5));
  };
  for (int g = 0; g < gates; ++g) {
    const int q = static_cast<int>(rng.UniformInt(uint64_t(num_qubits)));
    int q2 = static_cast<int>(rng.UniformInt(uint64_t(num_qubits - 1)));
    if (q2 >= q) ++q2;
    switch (rng.UniformInt(uint64_t{12})) {
      case 0: c.H(q); break;
      case 1: c.X(q); break;
      case 2: c.T(q); break;
      case 3: c.RX(q, angle()); break;
      case 4: c.RY(q, angle()); break;
      case 5: c.RZ(q, angle()); break;
      case 6: c.CX(q, q2); break;
      case 7: c.CZ(q, q2); break;
      case 8: c.Swap(q, q2); break;
      case 9: c.CRY(q, q2, angle()); break;
      case 10: c.RZZ(q, q2, angle()); break;
      default: c.RXX(q, q2, angle()); break;
    }
  }
  return c;
}

TEST(CompiledCircuitTest, RandomCircuitsBitIdenticalWithoutFusion) {
  Rng rng(17);
  for (int n = 2; n <= 10; ++n) {
    const Circuit c = RandomMixedCircuit(n, 12 * n, rng, /*symbolic=*/false);
    ExpectBitIdentical(RunInterpreted(c),
                       RunCompiled(c, CompileOptions{.fuse = false}));
  }
}

TEST(CompiledCircuitTest, RandomCircuitsNearIdenticalWithFusion) {
  Rng rng(29);
  for (int n = 2; n <= 10; ++n) {
    const Circuit c = RandomMixedCircuit(n, 12 * n, rng, /*symbolic=*/false);
    const CompiledCircuit program = CompiledCircuit::Compile(c);
    EXPECT_LT(program.num_ops(), c.size()) << "fusion should shrink " << n;
    StateVector state(n);
    ASSERT_TRUE(program.Execute(state).ok());
    ExpectNear(RunInterpreted(c), state, 1e-12);
  }
}

TEST(CompiledCircuitTest, ParametricRebindingMatchesInterpreter) {
  Rng rng(43);
  const Circuit c = RandomMixedCircuit(6, 60, rng, /*symbolic=*/true);
  ASSERT_GT(c.num_parameters(), 0);
  const CompiledCircuit unfused =
      CompiledCircuit::Compile(c, CompileOptions{.fuse = false});
  const CompiledCircuit fused = CompiledCircuit::Compile(c);
  // One compiled program, many parameter vectors: re-binding must track the
  // interpreter exactly (unfused) / to round-off (fused) on every binding.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    Rng prng(seed);
    const DVector params =
        prng.UniformVector(c.num_parameters(), -2.0, 2.0);
    const StateVector interpreted = RunInterpreted(c, params);
    StateVector exact(6);
    ASSERT_TRUE(unfused.Execute(exact, params).ok());
    ExpectBitIdentical(interpreted, exact);
    StateVector approx(6);
    ASSERT_TRUE(fused.Execute(approx, params).ok());
    ExpectNear(interpreted, approx, 1e-12);
  }
}

TEST(CompiledCircuitTest, WideCircuitBitIdenticalAcrossThreadWidths) {
  // 15 qubits puts every kernel above kParallelAmplitudeThreshold; the
  // compiled program (fused) must preserve the serial-vs-parallel
  // bit-identity guarantee, and compiled-vs-interpreted bit-identity
  // (unfused) must hold at every width.
  const int n = 15;
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.H(q).RY(q, 0.1 * (q + 1));
  for (int q = 0; q + 1 < n; ++q) c.CX(q, q + 1);
  for (int q = 0; q < n; ++q) c.RZ(q, 0.05 * (q + 3));
  c.RZZ(0, 7, 0.4).RXX(1, 8, 0.6).CRZ(4, 10, 0.9);

  ThreadPool::SetGlobalThreads(1);
  const StateVector serial_fused = RunCompiled(c, CompileOptions{.fuse = true});
  ExpectBitIdentical(RunInterpreted(c),
                     RunCompiled(c, CompileOptions{.fuse = false}));

  ScopedThreads threads(4);
  const StateVector parallel_fused =
      RunCompiled(c, CompileOptions{.fuse = true});
  ExpectBitIdentical(serial_fused, parallel_fused);
  ExpectBitIdentical(RunInterpreted(c),
                     RunCompiled(c, CompileOptions{.fuse = false}));
}

TEST(CompiledCircuitTest, SimulatorModesAgree) {
  Rng rng(7);
  const Circuit c = RandomMixedCircuit(5, 40, rng, /*symbolic=*/false);
  StateVectorSimulator interpreted;
  interpreted.set_execution_mode(ExecutionMode::kInterpreted);
  StateVectorSimulator compiled;
  compiled.set_execution_mode(ExecutionMode::kCompiled);
  auto a = interpreted.Run(c);
  auto b = compiled.Run(c);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ExpectNear(a.value(), b.value(), 1e-12);
}

TEST(CompiledCircuitTest, FusionCollapsesKnownPatterns) {
  // A dense 1Q layer + CX ladder folds into a handful of 4x4 sweeps.
  Circuit c(4);
  for (int q = 0; q < 4; ++q) c.H(q).RY(q, 0.2).RZ(q, 0.3);
  c.CX(0, 1).CX(2, 3);
  const CompiledCircuit fused = CompiledCircuit::Compile(c);
  EXPECT_EQ(fused.num_ops(), 2u);  // One dense 4x4 per CX pair.
  EXPECT_EQ(fused.stats().lowered_ops, c.size());

  // Runs of diagonal gates on one operand pair stay one diagonal sweep.
  Circuit d(2);
  d.RZ(0, 0.1).RZ(1, 0.2).CZ(0, 1).RZZ(0, 1, 0.3).T(0).CZ(1, 0);
  const CompiledCircuit diag = CompiledCircuit::Compile(d);
  ASSERT_EQ(diag.num_ops(), 1u);
  EXPECT_EQ(diag.ops()[0].kind, CompiledOpKind::k2QDiag);

  // Parametric gates are barriers: nothing fuses across them.
  Circuit p(1);
  p.H(0).RX(0, ParamExpr::Variable(0)).H(0);
  EXPECT_EQ(CompiledCircuit::Compile(p).num_ops(), 3u);
}

TEST(CompiledCircuitTest, CacheHitsAndStructuralKeys) {
  CompilationCache& cache = CompilationCache::Global();
  cache.Clear();

  Circuit a(3);
  a.H(0).CX(0, 1).RY(2, ParamExpr::Variable(0));
  Circuit same(3);
  same.H(0).CX(0, 1).RY(2, ParamExpr::Variable(0));
  Circuit different(3);
  different.H(0).CX(0, 1).RY(2, ParamExpr::Variable(1));

  auto p1 = cache.GetOrCompile(a);
  auto p2 = cache.GetOrCompile(same);
  EXPECT_EQ(p1.get(), p2.get());  // Structurally identical → one program.
  EXPECT_EQ(cache.size(), 1u);

  auto p3 = cache.GetOrCompile(different);
  EXPECT_NE(p1.get(), p3.get());
  EXPECT_EQ(cache.size(), 2u);

  // Fuse and no-fuse programs are distinct cache entries.
  auto p4 = cache.GetOrCompile(a, CompileOptions{.fuse = false});
  EXPECT_NE(p1.get(), p4.get());
  EXPECT_EQ(cache.size(), 3u);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CompiledCircuitTest, CacheEvictsLeastRecentlyUsed) {
  CompilationCache& cache = CompilationCache::Global();
  cache.Clear();
  cache.set_capacity(2);
  Circuit a(1), b(1), c(1);
  a.H(0).X(0);
  b.H(0).Y(0);
  c.H(0).Z(0);
  auto pa = cache.GetOrCompile(a);
  auto pb = cache.GetOrCompile(b);
  cache.GetOrCompile(a);      // Refresh a; b becomes the LRU entry.
  auto pc = cache.GetOrCompile(c);  // Evicts b.
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.GetOrCompile(a).get(), pa.get());  // Still resident.
  EXPECT_NE(cache.GetOrCompile(b).get(), pb.get());  // Was recompiled.
  cache.set_capacity(256);
  cache.Clear();
}

TEST(CompiledCircuitTest, CacheStatsTrackHitsMissesEvictions) {
  CompilationCache& cache = CompilationCache::Global();
  cache.Clear();
  cache.set_capacity(2);
  Circuit a(1), b(1), c(1);
  a.H(0).X(0);
  b.H(0).Y(0);
  c.H(0).Z(0);
  cache.GetOrCompile(a);  // miss
  cache.GetOrCompile(a);  // hit
  cache.GetOrCompile(b);  // miss
  cache.GetOrCompile(c);  // miss, evicts a
  auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 3);
  EXPECT_EQ(stats.evictions, 1);
  EXPECT_EQ(stats.size, 2u);
  EXPECT_EQ(stats.capacity, 2u);
  // Clear zeroes the tallies along with the entries.
  cache.set_capacity(256);
  cache.Clear();
  stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses + stats.evictions, 0);
  EXPECT_EQ(stats.size, 0u);
}

TEST(CompiledCircuitTest, ConcurrentEvictionStressIsConsistent) {
  // Many threads hammering a tiny cache with overlapping circuit sets:
  // every lookup must return a usable program and the tallies must add up.
  // Run under TSan (scripts/tier1.sh) this doubles as the data-race gate
  // for the LRU bookkeeping.
  CompilationCache& cache = CompilationCache::Global();
  cache.Clear();
  cache.set_capacity(4);
  constexpr int kThreads = 8;
  constexpr int kIterations = 200;
  constexpr int kDistinctCircuits = 12;  // 3x capacity: constant eviction.
  std::vector<Circuit> circuits;
  for (int i = 0; i < kDistinctCircuits; ++i) {
    Circuit c(2);
    c.H(0).CX(0, 1);
    for (int r = 0; r <= i; ++r) c.RY(1, 0.1 * static_cast<double>(r + 1));
    circuits.push_back(std::move(c));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        const auto& circuit = circuits[(t * 7 + i) % kDistinctCircuits];
        auto program = cache.GetOrCompile(circuit);
        if (program == nullptr ||
            program->num_qubits() != circuit.num_qubits()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses, kThreads * kIterations);
  EXPECT_LE(stats.size, 4u);
  EXPECT_GT(stats.evictions, 0);
  cache.set_capacity(256);
  cache.Clear();
}

}  // namespace
}  // namespace qdb
