// E20 — Serving saturation sweep: sharded queues + work-stealing dispatchers
// vs the single-queue, single-dispatcher server, under a growing closed-loop
// client population.
//
// The workload is 32 small VQC models (8 qubits — cheap enough that the
// serving runtime, not the simulator, is the bottleneck) spread evenly
// across shards by construction: model names are *searched* at setup until
// ShardFor places exactly kModels / kShards of them on every shard, so the
// sweep measures sharding, not hash luck. Clients run closed-loop
// (submit → block → next) round-robin over the model set and measure
// per-request latency client-side.
//
// Why sharding pays on a single core: a lone dispatcher serializes the
// batch coalescing window (max_wait_us of idle cv-waiting whenever a batch
// is not full) with execution — every under-full batch costs the whole
// pipeline its window. With N shards and N dispatchers the OS overlaps one
// dispatcher's window sleep with another's batch execution, and an idle
// dispatcher steals a backlogged shard's batch *without* a window at all,
// so the idle time hides behind useful work. The sweep's acceptance bar
// (DESIGN.md / EXPERIMENTS.md E20): aggregate throughput rises with shard
// count at 64+ clients, and p99 at 256 clients for the 8×8 config is at
// least 2x better than 1×1.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/strings.h"
#include "serve/inference_server.h"
#include "serve/model_registry.h"
#include "serve/servable.h"

namespace qdb {
namespace serve {
namespace {

constexpr int kQubits = 8;
constexpr int kModels = 32;
constexpr size_t kPlacementShards = 8;  // The largest swept shard count.

ModelArtifact SmallVqcArtifact(const std::string& name, uint64_t seed) {
  Rng rng(seed);
  ModelArtifact a;
  a.type = ModelType::kVqcClassifier;
  a.name = name;
  a.num_features = kQubits;
  a.encoding = VqcEncoding::kAngle;
  a.ansatz_layers = 2;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 1.0;
  a.params.resize(RealAmplitudesParamCount(kQubits, a.ansatz_layers));
  for (auto& p : a.params) p = rng.Uniform(-0.5, 0.5);
  return a;
}

/// Model names balanced across the largest swept shard count: candidate
/// names are probed through the server's own routing hash until every
/// shard owns exactly kModels / kPlacementShards of them. Smaller shard
/// counts then see a coarser but still deterministic spread.
std::vector<std::string> BalancedModelNames() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    std::vector<int> per_shard(kPlacementShards, 0);
    const int quota = kModels / static_cast<int>(kPlacementShards);
    for (int candidate = 0; static_cast<int>(out.size()) < kModels;
         ++candidate) {
      const std::string name = StrCat("scale-vqc-", candidate);
      const size_t shard = InferenceServer::ShardFor(name, 1,
                                                     kPlacementShards);
      if (per_shard[shard] >= quota) continue;
      ++per_shard[shard];
      out.push_back(name);
    }
    return out;
  }();
  return names;
}

std::vector<DVector> MakeQueries(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<DVector> queries(count, DVector(kQubits));
  for (auto& q : queries) {
    for (auto& v : q) v = rng.Uniform(0.0, M_PI);
  }
  return queries;
}

void BM_ServeSaturation(benchmark::State& state) {
  const int num_shards = static_cast<int>(state.range(0));
  const int num_dispatchers = static_cast<int>(state.range(1));
  const int clients = static_cast<int>(state.range(2));
  // Small client counts get more requests each so every configuration
  // measures at least 64 requests per iteration.
  const int per_client = std::max(8, 64 / clients);
  const int total = clients * per_client;

  const std::vector<std::string> names = BalancedModelNames();
  ModelRegistry registry;
  for (int m = 0; m < kModels; ++m) {
    if (!registry.Register(SmallVqcArtifact(names[m], 100 + m)).ok()) {
      state.SkipWithError("register failed");
      return;
    }
  }

  ServerOptions opts;
  opts.num_shards = num_shards;
  opts.num_dispatchers = num_dispatchers;
  opts.queue_capacity = 4096;
  opts.max_batch_size = 16;
  // A deliberately generous coalescing window: the sweep measures how well
  // each configuration hides it, which is exactly what sharding buys on
  // one core.
  opts.max_wait_us = 1000;
  opts.steal_poll_us = 200;
  opts.result_cache_capacity = 0;  // Measure the runtime, not memoization.
  opts.enable_breaker = false;     // No admission noise in the sweep.
  opts.enable_slo = false;
  InferenceServer server(registry, opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  const std::vector<DVector> queries = MakeQueries(total, 71);
  std::vector<double> latencies_us;
  std::mutex latencies_mu;
  std::atomic<int> ok_count{0};
  long requests_done = 0;

  for (auto _ : state) {
    std::vector<std::thread> threads;
    threads.reserve(clients);
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&, c] {
        std::vector<double> local;
        local.reserve(per_client);
        // Each client picks models at random (deterministic per client):
        // mixed traffic with no lockstep convoys, so batches coalesce only
        // as well as the runtime's windows genuinely allow.
        Rng rng(1000 + c);
        for (int i = 0; i < per_client; ++i) {
          InferenceRequest request;
          request.model = names[rng.UniformInt(0, kModels - 1)];
          request.input = queries[c * per_client + i];
          const auto start = std::chrono::steady_clock::now();
          auto response = server.Submit(std::move(request)).get();
          const auto elapsed = std::chrono::steady_clock::now() - start;
          if (response.ok()) {
            ok_count.fetch_add(1, std::memory_order_relaxed);
            local.push_back(static_cast<double>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    elapsed)
                    .count()));
          }
        }
        std::lock_guard<std::mutex> lock(latencies_mu);
        latencies_us.insert(latencies_us.end(), local.begin(), local.end());
      });
    }
    for (auto& t : threads) t.join();
    requests_done += total;
  }
  const auto stats = server.stats();
  server.Shutdown();

  if (latencies_us.empty() || ok_count.load() != requests_done) {
    state.SkipWithError("requests failed");
    return;
  }
  std::sort(latencies_us.begin(), latencies_us.end());
  const size_t p99_index =
      std::min(latencies_us.size() - 1,
               static_cast<size_t>(
                   0.99 * static_cast<double>(latencies_us.size())));
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests_done), benchmark::Counter::kIsRate);
  state.counters["p50_us"] = latencies_us[latencies_us.size() / 2];
  state.counters["p99_us"] = latencies_us[p99_index];
  state.counters["shards"] = num_shards;
  state.counters["dispatchers"] = num_dispatchers;
  state.counters["clients"] = clients;
  state.counters["steals"] = static_cast<double>(stats.steals);
  state.counters["fifo_violations"] =
      static_cast<double>(stats.fifo_violations);
  if (stats.batches > 0) {
    state.counters["avg_batch"] = static_cast<double>(stats.completed) /
                                  static_cast<double>(stats.batches);
  }
  state.SetLabel(StrCat(num_shards, "s/", num_dispatchers, "d/", clients,
                        "c"));
}

BENCHMARK(BM_ServeSaturation)
    // Client saturation sweep: baseline single-queue server…
    ->Args({1, 1, 1})
    ->Args({1, 1, 4})
    ->Args({1, 1, 16})
    ->Args({1, 1, 64})
    ->Args({1, 1, 256})
    // …vs the full sharded configuration at the same client counts…
    ->Args({8, 8, 1})
    ->Args({8, 8, 4})
    ->Args({8, 8, 16})
    ->Args({8, 8, 64})
    ->Args({8, 8, 256})
    // …and the shard-count axis at a fixed 64-client load.
    ->Args({2, 2, 64})
    ->Args({4, 4, 64})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace serve
}  // namespace qdb

BENCHMARK_MAIN();
