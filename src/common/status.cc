#include "common/status.h"

namespace qdb {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "invalid argument";
    case StatusCode::kOutOfRange:
      return "out of range";
    case StatusCode::kNotFound:
      return "not found";
    case StatusCode::kAlreadyExists:
      return "already exists";
    case StatusCode::kFailedPrecondition:
      return "failed precondition";
    case StatusCode::kNotConverged:
      return "not converged";
    case StatusCode::kUnimplemented:
      return "unimplemented";
    case StatusCode::kInternal:
      return "internal";
    case StatusCode::kUnavailable:
      return "unavailable";
    case StatusCode::kDeadlineExceeded:
      return "deadline exceeded";
    case StatusCode::kResourceExhausted:
      return "resource exhausted";
  }
  return "unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace qdb
