file(REMOVE_RECURSE
  "CMakeFiles/quantum_counting_test.dir/quantum_counting_test.cc.o"
  "CMakeFiles/quantum_counting_test.dir/quantum_counting_test.cc.o.d"
  "quantum_counting_test"
  "quantum_counting_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_counting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
