#include "ops/model_hamiltonians.h"

#include "common/strings.h"

namespace qdb {
namespace {

Status ValidateWidth(int num_qubits) {
  if (num_qubits < 2) {
    return Status::InvalidArgument(
        StrCat("spin chain needs at least 2 sites, got ", num_qubits));
  }
  return Status::OK();
}

PauliString TwoSite(int n, int i, int j, PauliOp op) {
  PauliString p(n);
  p.set_op(i, op);
  p.set_op(j, op);
  return p;
}

}  // namespace

Result<PauliSum> TransverseFieldIsing(int num_qubits, double j, double h,
                                      bool periodic) {
  QDB_RETURN_IF_ERROR(ValidateWidth(num_qubits));
  PauliSum sum(num_qubits);
  const int bonds = periodic ? num_qubits : num_qubits - 1;
  for (int i = 0; i < bonds; ++i) {
    sum.Add(-j, TwoSite(num_qubits, i, (i + 1) % num_qubits, PauliOp::kZ));
  }
  for (int i = 0; i < num_qubits; ++i) {
    sum.Add(-h, PauliString::Single(num_qubits, i, PauliOp::kX));
  }
  return sum;
}

Result<PauliSum> HeisenbergXXZ(int num_qubits, double j_xy, double j_z,
                               bool periodic) {
  QDB_RETURN_IF_ERROR(ValidateWidth(num_qubits));
  PauliSum sum(num_qubits);
  const int bonds = periodic ? num_qubits : num_qubits - 1;
  for (int i = 0; i < bonds; ++i) {
    const int next = (i + 1) % num_qubits;
    sum.Add(j_xy, TwoSite(num_qubits, i, next, PauliOp::kX));
    sum.Add(j_xy, TwoSite(num_qubits, i, next, PauliOp::kY));
    sum.Add(j_z, TwoSite(num_qubits, i, next, PauliOp::kZ));
  }
  return sum;
}

}  // namespace qdb
