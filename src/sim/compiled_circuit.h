/// \file compiled_circuit.h
/// \brief One-time lowering of a Circuit into a flat program of typed kernel
/// ops, with gate fusion and a process-wide compilation cache.
///
/// The interpreter in StateVectorSimulator re-derives the kernel choice and
/// (for constant gates) the gate matrix on every execution. For the
/// repeated-execution workloads qdb cares about — Gram matrices,
/// parameter-shift batches, variational training loops — the circuit
/// structure is fixed and only the bound parameter vector changes, so that
/// per-run work is pure overhead. CompiledCircuit lowers the gate list once:
///
///   lower  — resolve every gate to its specialized kernel (dense/diagonal/
///            controlled 1Q, dense/diagonal 2Q, swap, MCX/MCZ, generic kQ)
///            with constant matrices baked in; parametric gates stay thin
///            angle → payload evaluators;
///   fuse   — merge adjacent constant single-qubit gates into one 2x2,
///            collapse runs of diagonal ops on shared operands into one
///            diagonal sweep, and fold neighboring 1Q/2Q constant gates that
///            share a qubit pair into a single dense 4x4 — each fused block
///            then costs one state sweep instead of several;
///   replay — Execute() walks the flat op vector binding parameters, with
///            no per-gate switch on GateType and no matrix reconstruction
///            for constant gates.
///
/// Determinism: lowering and fusion are sequential compile-time passes whose
/// output depends only on the circuit, so the PR 2 guarantee holds — a
/// compiled program produces bit-identical amplitudes at every QDB_THREADS
/// setting. With fusion disabled, compiled execution issues exactly the
/// kernel calls the interpreter would, with the same matrices in the same
/// order, and is therefore bit-identical to interpreted execution; with
/// fusion enabled the composed matrices differ from the sequential product
/// only by floating-point round-off (~1e-15 per fused pair).

#ifndef QDB_SIM_COMPILED_CIRCUIT_H_
#define QDB_SIM_COMPILED_CIRCUIT_H_

#include <array>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "linalg/matrix.h"
#include "sim/state_vector.h"

namespace qdb {

namespace obs {
class Counter;  // obs/metrics.h
}  // namespace obs

struct CompileOptions {
  /// Run the fusion passes. Disable to get a program that replays the
  /// interpreter's exact kernel sequence (bit-identical results).
  bool fuse = true;
};

/// \brief The kernel class a compiled op dispatches to. Mirrors the
/// specialization ladder of StateVectorSimulator::ApplyGate.
enum class CompiledOpKind : uint8_t {
  kNop,           ///< Fused away; skipped at execution.
  k1QDense,       ///< 2x2 dense on q0.
  k1QDiag,        ///< diag(c0, c1) on q0.
  kControlled1Q,  ///< 2x2 block on target q1 when control q0 is set.
  k2QDiag,        ///< diag(c0..c3) on the (q0, q1) pair.
  k2QDense,       ///< 4x4 dense on (q0, q1); q0 is the high index bit.
  kSwap,          ///< Swap q0 and q1.
  kMCX,           ///< Multi-controlled X: controls in `qubits`, target q0.
  kMCZ,           ///< Multi-controlled Z over `qubits` ∪ {q0}.
  kKQDense,       ///< Generic 2^k dense over `qubits`.
};

/// \brief One lowered op: kernel kind, operands, and either a baked constant
/// payload or the parameter expressions to evaluate it from at replay time.
struct CompiledOp {
  CompiledOpKind kind = CompiledOpKind::kNop;
  GateType src = GateType::kI;  ///< Source gate type (parametric re-lowering).
  int q0 = 0;
  int q1 = 0;
  /// Small constant payload: 2x2 row-major, diagonal pair/quad, or the
  /// controlled 2x2 block, depending on `kind`.
  std::array<Complex, 4> c{};
  Matrix m;                  ///< 4x4 (k2QDense) or 2^k (kKQDense) payload.
  std::vector<int> qubits;   ///< MCX controls / MCZ operands / kQ operands.
  std::vector<ParamExpr> exprs;  ///< Non-empty for parametric ops.
  int fused_gates = 1;       ///< Source gates folded into this op.

  bool parametric() const { return !exprs.empty(); }
};

/// \brief Statistics from one compilation, exported as compile.*/fusion.*
/// metrics and useful in tests and benches.
struct CompileStats {
  size_t source_gates = 0;   ///< Gates in the input circuit (incl. identities).
  size_t lowered_ops = 0;    ///< Ops before fusion (identities drop here).
  size_t emitted_ops = 0;    ///< Ops after fusion.
  size_t fused_1q1q = 0;     ///< Adjacent 1Q pairs merged into one 2x2.
  size_t fused_diag = 0;     ///< Diagonal folds (1Q→2Q diag, 2Q-pair diag).
  size_t fused_1q2q = 0;     ///< 1Q gates folded into a dense 4x4.
  size_t fused_2q2q = 0;     ///< 2Q pairs on one qubit pair merged.
};

/// \brief A circuit lowered to a flat, typed kernel program. Immutable after
/// Compile; safe to share across threads.
class CompiledCircuit {
 public:
  /// Lowers (and by default fuses) `circuit`. Never fails: every GateType in
  /// the IR has a lowering.
  static CompiledCircuit Compile(const Circuit& circuit,
                                 const CompileOptions& options = {});

  /// Replays the program on `state`, binding `params` to the symbolic
  /// parameters. Fails if widths mismatch or too few parameters are bound.
  Status Execute(StateVector& state, const DVector& params = {}) const;

  int num_qubits() const { return num_qubits_; }
  int num_parameters() const { return num_parameters_; }
  size_t num_ops() const { return ops_.size(); }
  const std::vector<CompiledOp>& ops() const { return ops_; }
  const CompileStats& stats() const { return stats_; }

 private:
  CompiledCircuit() = default;

  int num_qubits_ = 0;
  int num_parameters_ = 0;
  std::vector<CompiledOp> ops_;
  CompileStats stats_;
  /// compile.replays{qubits="n"} child, resolved once at Compile so replay
  /// pays one relaxed increment, not a label lookup.
  obs::Counter* replays_by_qubits_ = nullptr;
};

/// \brief Process-wide LRU cache of compiled programs, keyed by the
/// structural fingerprint of the circuit (gate types, operands, and
/// bit-exact parameter expressions) plus the compile options.
///
/// Repeated-execution workloads — RunBatch over one circuit, Gram/Cross
/// matrices, shift-rule gradients, training loops — compile once here and
/// replay. The key is a full structural encoding (not a lossy hash), so two
/// distinct circuits can never collide onto one program.
class CompilationCache {
 public:
  /// Point-in-time cache tallies. Unlike the process-wide compile.cache_*
  /// metrics (which aggregate over the registry's lifetime and survive
  /// ResetAll races in tests), these are owned by the cache instance, read
  /// atomically under its lock, and satisfy hits + misses == lookups and
  /// size == entries at every observation point.
  struct Stats {
    long hits = 0;
    long misses = 0;
    long evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };

  static CompilationCache& Global();

  /// Returns the cached program for `circuit`, compiling on miss. Thread-
  /// safe; concurrent misses on one key compile once (the lock is held
  /// across the compile, which is O(gates) small-matrix work).
  std::shared_ptr<const CompiledCircuit> GetOrCompile(
      const Circuit& circuit, const CompileOptions& options = {});

  /// Drops every cached program and zeroes the hit/miss/eviction tallies
  /// (test hook).
  void Clear();

  size_t size() const;

  /// Consistent snapshot of the instance tallies.
  Stats stats() const;

  /// Maximum resident programs; least-recently-used entries evict beyond
  /// it. Default 256.
  void set_capacity(size_t capacity);

 private:
  explicit CompilationCache(size_t capacity) : capacity_(capacity) {}

  mutable std::mutex mu_;
  size_t capacity_;
  /// Instance tallies behind stats(); guarded by mu_.
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
  /// Most-recently-used key at the front.
  std::list<std::string> lru_;
  struct Entry {
    std::shared_ptr<const CompiledCircuit> program;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace qdb

#endif  // QDB_SIM_COMPILED_CIRCUIT_H_
