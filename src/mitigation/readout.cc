#include "mitigation/readout.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace qdb {

Result<ReadoutMitigator> ReadoutMitigator::Create(int num_qubits, double p01,
                                                  double p10) {
  if (num_qubits < 1 || num_qubits > 16) {
    return Status::InvalidArgument(
        StrCat("num_qubits must be in [1, 16], got ", num_qubits));
  }
  if (p01 < 0.0 || p10 < 0.0 || p01 + p10 >= 1.0) {
    return Status::InvalidArgument(
        StrCat("need p01, p10 >= 0 and p01 + p10 < 1; got ", p01, ", ", p10));
  }
  return ReadoutMitigator(num_qubits, p01, p10);
}

Result<DVector> ReadoutMitigator::MitigateCounts(
    const std::map<uint64_t, int>& counts) const {
  const uint64_t dim = uint64_t{1} << num_qubits_;
  long total = 0;
  DVector probs(dim, 0.0);
  for (const auto& [outcome, count] : counts) {
    if (outcome >= dim) {
      return Status::OutOfRange(StrCat("outcome ", outcome, " >= ", dim));
    }
    if (count < 0) {
      return Status::InvalidArgument("negative count");
    }
    probs[outcome] += count;
    total += count;
  }
  if (total == 0) {
    return Status::InvalidArgument("empty counts");
  }
  for (auto& p : probs) p /= static_cast<double>(total);

  // Per-qubit inverse confusion:
  //   M = [[1−p01, p10], [p01, 1−p10]],  M⁻¹ = 1/det · [[1−p10, −p10],
  //                                                     [−p01, 1−p01]].
  const double det = 1.0 - p01_ - p10_;
  const double inv00 = (1.0 - p10_) / det;
  const double inv01 = -p10_ / det;
  const double inv10 = -p01_ / det;
  const double inv11 = (1.0 - p01_) / det;
  for (int q = 0; q < num_qubits_; ++q) {
    const uint64_t stride = uint64_t{1} << (num_qubits_ - 1 - q);
    for (uint64_t base = 0; base < dim; base += 2 * stride) {
      for (uint64_t offset = 0; offset < stride; ++offset) {
        const uint64_t i0 = base + offset;
        const uint64_t i1 = i0 + stride;
        const double v0 = probs[i0];
        const double v1 = probs[i1];
        probs[i0] = inv00 * v0 + inv01 * v1;
        probs[i1] = inv10 * v0 + inv11 * v1;
      }
    }
  }
  // Clip the quasi-probabilities and renormalize.
  double norm = 0.0;
  for (auto& p : probs) {
    p = std::max(p, 0.0);
    norm += p;
  }
  if (norm <= 0.0) {
    return Status::Internal("mitigation produced an all-zero distribution");
  }
  for (auto& p : probs) p /= norm;
  return probs;
}

Result<double> ReadoutMitigator::MitigatedExpectationZ(
    const std::map<uint64_t, int>& counts, int qubit) const {
  if (qubit < 0 || qubit >= num_qubits_) {
    return Status::OutOfRange(StrCat("qubit ", qubit, " out of range"));
  }
  QDB_ASSIGN_OR_RETURN(DVector probs, MitigateCounts(counts));
  const uint64_t mask = uint64_t{1} << (num_qubits_ - 1 - qubit);
  double expectation = 0.0;
  for (uint64_t i = 0; i < probs.size(); ++i) {
    expectation += (i & mask) ? -probs[i] : probs[i];
  }
  return expectation;
}

}  // namespace qdb
