file(REMOVE_RECURSE
  "CMakeFiles/bench_annealers.dir/bench_annealers.cc.o"
  "CMakeFiles/bench_annealers.dir/bench_annealers.cc.o.d"
  "bench_annealers"
  "bench_annealers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_annealers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
