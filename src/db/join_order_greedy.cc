#include "db/join_order_greedy.h"

#include <limits>

#include "db/cost_model.h"

namespace qdb {

Result<GreedyPlanResult> GreedyLeftDeepPlan(const JoinQueryGraph& graph) {
  const int n = graph.num_relations();
  GreedyPlanResult result;
  // Seed with the smallest base relation.
  int first = 0;
  for (int r = 1; r < n; ++r) {
    if (graph.cardinality(r) < graph.cardinality(first)) first = r;
  }
  result.order.push_back(first);
  uint64_t mask = uint64_t{1} << first;

  while (static_cast<int>(result.order.size()) < n) {
    int best = -1;
    double best_card = std::numeric_limits<double>::infinity();
    for (int r = 0; r < n; ++r) {
      const uint64_t bit = uint64_t{1} << r;
      if (mask & bit) continue;
      const double card = SubsetCardinality(graph, mask | bit);
      if (card < best_card) {
        best_card = card;
        best = r;
      }
    }
    result.order.push_back(best);
    mask |= uint64_t{1} << best;
    result.cost += best_card;
  }
  return result;
}

Result<std::vector<int>> ImproveOrderBySwaps(const JoinQueryGraph& graph,
                                             std::vector<int> order) {
  QDB_ASSIGN_OR_RETURN(double current, CostOfLeftDeepOrder(graph, order));
  const int n = graph.num_relations();
  bool improved = true;
  while (improved) {
    improved = false;
    int best_i = -1, best_j = -1;
    double best_cost = current;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        std::swap(order[i], order[j]);
        QDB_ASSIGN_OR_RETURN(double cost, CostOfLeftDeepOrder(graph, order));
        std::swap(order[i], order[j]);
        if (cost < best_cost * (1.0 - 1e-12)) {
          best_cost = cost;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_i >= 0) {
      std::swap(order[best_i], order[best_j]);
      current = best_cost;
      improved = true;
    }
  }
  return order;
}

Result<double> GreedyOperatorOrderingCost(const JoinQueryGraph& graph) {
  const int n = graph.num_relations();
  std::vector<uint64_t> partials;
  partials.reserve(n);
  for (int r = 0; r < n; ++r) partials.push_back(uint64_t{1} << r);
  double total = 0.0;
  while (partials.size() > 1) {
    size_t best_i = 0, best_j = 1;
    double best_card = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < partials.size(); ++i) {
      for (size_t j = i + 1; j < partials.size(); ++j) {
        const double card =
            SubsetCardinality(graph, partials[i] | partials[j]);
        if (card < best_card) {
          best_card = card;
          best_i = i;
          best_j = j;
        }
      }
    }
    total += best_card;
    partials[best_i] |= partials[best_j];
    partials.erase(partials.begin() + best_j);
  }
  return total;
}

}  // namespace qdb
