/// \file query_graph.h
/// \brief Join query graphs: relations with cardinalities and join edges
/// with selectivities, plus the standard topology generators (chain, star,
/// cycle, clique) used across the join-ordering literature.

#ifndef QDB_DB_QUERY_GRAPH_H_
#define QDB_DB_QUERY_GRAPH_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/rng.h"

namespace qdb {

/// \brief A join query over `num_relations` base relations.
class JoinQueryGraph {
 public:
  struct JoinEdge {
    int a;
    int b;
    double selectivity;  ///< In (0, 1].
  };

  /// Creates a graph with the given base cardinalities (all > 0) and no
  /// join predicates yet.
  static Result<JoinQueryGraph> Create(std::vector<double> cardinalities);

  int num_relations() const { return static_cast<int>(cardinalities_.size()); }
  double cardinality(int relation) const;
  const std::vector<JoinEdge>& edges() const { return edges_; }

  /// Adds a join predicate between two distinct relations.
  Status AddJoin(int a, int b, double selectivity);

  /// Selectivity between two relations (1.0 when no predicate exists).
  double Selectivity(int a, int b) const;

  /// True if a join predicate connects the two relations.
  bool HasEdge(int a, int b) const;

  /// True if the join graph is connected (required by the DP optimizer's
  /// no-cross-product mode).
  bool IsConnected() const;

  /// Relations adjacent to `relation` through join predicates.
  std::vector<int> NeighborsOf(int relation) const;

  std::string ToString() const;

 private:
  explicit JoinQueryGraph(std::vector<double> cardinalities)
      : cardinalities_(std::move(cardinalities)) {}

  std::vector<double> cardinalities_;
  std::vector<JoinEdge> edges_;
};

/// Query-graph topology selector for the generators.
enum class QueryShape { kChain, kStar, kCycle, kClique };

/// \brief Random query of the given shape: cardinalities log-uniform in
/// [100, 100000], selectivities log-uniform in [sel_min, sel_max].
Result<JoinQueryGraph> RandomQuery(QueryShape shape, int num_relations,
                                   Rng& rng, double sel_min = 1e-4,
                                   double sel_max = 0.5);

const char* QueryShapeName(QueryShape shape);

}  // namespace qdb

#endif  // QDB_DB_QUERY_GRAPH_H_
