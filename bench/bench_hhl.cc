// E17 — HHL quantum linear-system solver.
//
// Regenerates the HHL behaviour study: solution fidelity and
// post-selection success probability vs (a) clock precision and (b) the
// condition number κ of A. Expected shape: fidelity → 1 exponentially in
// the clock qubits (phase-grid resolution is the only error source in
// exact simulation); the success probability falls as ~1/κ² — the cost of
// the eigenvalue-conditioned rotation that the amplitude-amplification
// step of the full algorithm would recover.

#include <benchmark/benchmark.h>

#include <cmath>

#include "algo/hhl.h"
#include "common/rng.h"
#include "linalg/random_unitary.h"

namespace qdb {
namespace {

Matrix ConditionedSystem(double kappa, Rng& rng) {
  // Hermitian 4x4 with spectrum spread [1, κ].
  Matrix v = RandomUnitary(4, rng);
  CVector diag = {Complex(1.0, 0), Complex(1.0 + kappa / 3.0, 0),
                  Complex(1.0 + 2.0 * kappa / 3.0, 0), Complex(kappa, 0)};
  Matrix a = v * Matrix::Diagonal(diag) * v.Adjoint();
  return (a + a.Adjoint()) * Complex(0.5, 0.0);
}

void BM_HhlVsClockPrecision(benchmark::State& state) {
  const int clock = static_cast<int>(state.range(0));
  Rng rng(91);
  Matrix a = ConditionedSystem(3.0, rng);
  CVector b = RandomState(4, rng);
  double fidelity = 0.0, success = 0.0;
  for (auto _ : state) {
    HhlOptions opts;
    opts.clock_qubits = clock;
    auto result = HhlSolve(a, b, opts);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    fidelity = result.value().fidelity;
    success = result.value().success_probability;
  }
  state.counters["clock_qubits"] = clock;
  state.counters["fidelity"] = fidelity;
  state.counters["infidelity"] = 1.0 - fidelity;
  state.counters["success_prob"] = success;
}

BENCHMARK(BM_HhlVsClockPrecision)
    ->DenseRange(3, 10)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_HhlVsConditionNumber(benchmark::State& state) {
  // The canonical worst case: b along the top eigenvector, C pinned near
  // λ_min = 1 — the success probability then falls exactly as (C/κ)².
  const double kappa = static_cast<double>(state.range(0));
  Rng rng(93);
  Matrix v = RandomUnitary(4, rng);
  CVector diag = {Complex(1.0, 0), Complex(1.0 + kappa / 3.0, 0),
                  Complex(1.0 + 2.0 * kappa / 3.0, 0), Complex(kappa, 0)};
  Matrix a = v * Matrix::Diagonal(diag) * v.Adjoint();
  a = (a + a.Adjoint()) * Complex(0.5, 0.0);
  CVector b(4);
  for (int i = 0; i < 4; ++i) b[i] = v(i, 3);  // Top eigenvector.
  double fidelity = 0.0, success = 0.0;
  for (auto _ : state) {
    HhlOptions opts;
    opts.clock_qubits = 9;
    opts.c_constant = 0.9;  // λ_min = 1.
    auto result = HhlSolve(a, b, opts);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    fidelity = result.value().fidelity;
    success = result.value().success_probability;
  }
  state.counters["kappa"] = kappa;
  state.counters["fidelity"] = fidelity;
  state.counters["success_prob"] = success;
  state.counters["kappa_sq_x_success"] = kappa * kappa * success;
}

BENCHMARK(BM_HhlVsConditionNumber)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
