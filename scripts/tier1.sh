#!/usr/bin/env bash
# Tier-1 gate: configure + build + full test suite, then rebuild the
# concurrency-sensitive tests under ThreadSanitizer and run them, run the
# storage suites under UndefinedBehaviorSanitizer, replay the seeded chaos
# profiles, run the kill-9 crash-recovery matrix, and gate the serving
# tier's observability overhead. Run from the repo root:
#
#   ./scripts/tier1.sh
#
# Build directories: build/ (regular), build-tsan/ (TSan, library + tests
# only), build-ubsan/ (UBSan, storage tests only). All are incremental
# across invocations.
#
# On a ctest failure, every test binary leaves a full metrics-registry dump
# (QDB_METRICS_OUT) under build/Testing/metrics/ — the path is printed so
# the post-mortem starts from the counters, not from a rerun.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
metrics_dir="$(pwd)/build/Testing/metrics"
rm -rf "${metrics_dir}" && mkdir -p "${metrics_dir}"
if ! (cd build &&
  QDB_METRICS_OUT="${metrics_dir}/" ctest --output-on-failure -j "$(nproc)"); then
  echo >&2
  echo "ctest FAILED — per-process metrics dumps for the post-mortem:" >&2
  echo "  ${metrics_dir}/metrics.<pid>.json" >&2
  ls -l "${metrics_dir}" >&2 || true
  exit 1
fi

echo
echo "== tier 1: concurrency tests under ThreadSanitizer =="
cmake -B build-tsan -S . \
  -DQDB_SANITIZE=thread \
  -DQDB_BUILD_BENCHMARKS=OFF \
  -DQDB_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j --target obs_test --target obs_labels_test \
  --target slo_test --target thread_pool_test \
  --target sim_parallel_test --target simd_equivalence_test \
  --target compiled_circuit_test \
  --target serve_test --target serve_scale_test --target fault_test \
  --target store_test --target journal_test
./build-tsan/tests/obs_test
./build-tsan/tests/obs_labels_test
./build-tsan/tests/slo_test
./build-tsan/tests/thread_pool_test
QDB_THREADS=4 ./build-tsan/tests/sim_parallel_test
QDB_THREADS=4 ./build-tsan/tests/simd_equivalence_test
QDB_THREADS=4 ./build-tsan/tests/compiled_circuit_test
QDB_THREADS=4 ./build-tsan/tests/serve_test
QDB_THREADS=4 ./build-tsan/tests/serve_scale_test
QDB_THREADS=4 ./build-tsan/tests/fault_test
QDB_THREADS=4 ./build-tsan/tests/store_test
QDB_THREADS=4 ./build-tsan/tests/journal_test

echo
echo "== tier 1: storage tier under UndefinedBehaviorSanitizer =="
# The journal parses raw bytes off disk (replay of possibly-torn records);
# UBSan over the storage suites catches misaligned loads, overflow in
# offset arithmetic, and enum smuggling that a crash harness would only hit
# probabilistically.
cmake -B build-ubsan -S . \
  -DQDB_SANITIZE=undefined \
  -DQDB_BUILD_BENCHMARKS=OFF \
  -DQDB_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-ubsan -j --target store_test --target journal_test
UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/store_test
UBSAN_OPTIONS=halt_on_error=1 ./build-ubsan/tests/journal_test

echo
echo "== tier 1: forced-scalar dispatch (QDB_SIMD=0) =="
# The SIMD dispatch contract says amplitudes are bit-identical at every
# level; rerun the kernel-heavy suites with the env override forcing the
# scalar path so the fallback stays exercised on AVX2 machines.
QDB_SIMD=0 ./build/tests/statevector_test
QDB_SIMD=0 ./build/tests/simd_equivalence_test

echo
echo "== tier 1: seeded chaos profiles =="
./scripts/chaos.sh

echo
echo "== tier 1: crash recovery (kill -9 matrix) =="
./scripts/crash_recovery.sh

echo
echo "== tier 1: observability overhead gate =="
# The serving smoke workload (bench_obs E19) runs twice — tracing + labeled
# metrics off, then on — and the traced req_per_s must stay within 10% of
# the untraced baseline. This is the acceptance bar for request-scoped
# tracing: observability that costs double-digit throughput is a regression,
# not a feature. Uses the regular (non-TSan) build; a Debug build still
# catches gross regressions since both modes share the build type.
cmake -B build -S . -DQDB_BUILD_BENCHMARKS=ON >/dev/null
cmake --build build -j --target bench_obs
overhead_json="$(pwd)/build/Testing/bench_obs_gate.json"
./build/bench/bench_obs \
  --benchmark_filter='BM_ServingWithObservability' \
  --benchmark_format=json \
  --benchmark_out="${overhead_json}" \
  --benchmark_out_format=json
python3 - "${overhead_json}" << 'PYEOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
rates = {}
for bench in doc.get("benchmarks", []):
    if bench.get("run_type") == "aggregate":
        continue
    label = bench.get("label")
    rate = bench.get("req_per_s")
    if label in ("obs_off", "obs_on") and isinstance(rate, (int, float)):
        rates[label] = float(rate)
if set(rates) != {"obs_off", "obs_on"}:
    sys.exit("overhead gate: bench_obs did not report both obs_off and "
             "obs_on req_per_s")
overhead = 1.0 - rates["obs_on"] / rates["obs_off"]
print(f"serving throughput: obs_off={rates['obs_off']:.0f} req/s  "
      f"obs_on={rates['obs_on']:.0f} req/s  overhead={overhead:+.1%}")
if overhead > 0.10:
    sys.exit(f"overhead gate FAILED: tracing + labeled metrics cost "
             f"{overhead:.1%} throughput (budget: 10%)")
print("overhead gate PASS (budget: 10%)")
PYEOF

echo
echo "tier 1 PASS"
