# Empty compiler generated dependencies file for pauli_test.
# This may be replaced when dependencies are built.
