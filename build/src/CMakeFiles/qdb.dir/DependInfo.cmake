
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algo/grover.cc" "src/CMakeFiles/qdb.dir/algo/grover.cc.o" "gcc" "src/CMakeFiles/qdb.dir/algo/grover.cc.o.d"
  "/root/repo/src/algo/hhl.cc" "src/CMakeFiles/qdb.dir/algo/hhl.cc.o" "gcc" "src/CMakeFiles/qdb.dir/algo/hhl.cc.o.d"
  "/root/repo/src/algo/phase_estimation.cc" "src/CMakeFiles/qdb.dir/algo/phase_estimation.cc.o" "gcc" "src/CMakeFiles/qdb.dir/algo/phase_estimation.cc.o.d"
  "/root/repo/src/algo/quantum_counting.cc" "src/CMakeFiles/qdb.dir/algo/quantum_counting.cc.o" "gcc" "src/CMakeFiles/qdb.dir/algo/quantum_counting.cc.o.d"
  "/root/repo/src/algo/swap_test.cc" "src/CMakeFiles/qdb.dir/algo/swap_test.cc.o" "gcc" "src/CMakeFiles/qdb.dir/algo/swap_test.cc.o.d"
  "/root/repo/src/anneal/exhaustive.cc" "src/CMakeFiles/qdb.dir/anneal/exhaustive.cc.o" "gcc" "src/CMakeFiles/qdb.dir/anneal/exhaustive.cc.o.d"
  "/root/repo/src/anneal/parallel_tempering.cc" "src/CMakeFiles/qdb.dir/anneal/parallel_tempering.cc.o" "gcc" "src/CMakeFiles/qdb.dir/anneal/parallel_tempering.cc.o.d"
  "/root/repo/src/anneal/quantum_annealing.cc" "src/CMakeFiles/qdb.dir/anneal/quantum_annealing.cc.o" "gcc" "src/CMakeFiles/qdb.dir/anneal/quantum_annealing.cc.o.d"
  "/root/repo/src/anneal/simulated_annealing.cc" "src/CMakeFiles/qdb.dir/anneal/simulated_annealing.cc.o" "gcc" "src/CMakeFiles/qdb.dir/anneal/simulated_annealing.cc.o.d"
  "/root/repo/src/anneal/tabu.cc" "src/CMakeFiles/qdb.dir/anneal/tabu.cc.o" "gcc" "src/CMakeFiles/qdb.dir/anneal/tabu.cc.o.d"
  "/root/repo/src/autodiff/adjoint.cc" "src/CMakeFiles/qdb.dir/autodiff/adjoint.cc.o" "gcc" "src/CMakeFiles/qdb.dir/autodiff/adjoint.cc.o.d"
  "/root/repo/src/autodiff/expectation.cc" "src/CMakeFiles/qdb.dir/autodiff/expectation.cc.o" "gcc" "src/CMakeFiles/qdb.dir/autodiff/expectation.cc.o.d"
  "/root/repo/src/autodiff/parameter_shift.cc" "src/CMakeFiles/qdb.dir/autodiff/parameter_shift.cc.o" "gcc" "src/CMakeFiles/qdb.dir/autodiff/parameter_shift.cc.o.d"
  "/root/repo/src/circuit/circuit.cc" "src/CMakeFiles/qdb.dir/circuit/circuit.cc.o" "gcc" "src/CMakeFiles/qdb.dir/circuit/circuit.cc.o.d"
  "/root/repo/src/circuit/gate.cc" "src/CMakeFiles/qdb.dir/circuit/gate.cc.o" "gcc" "src/CMakeFiles/qdb.dir/circuit/gate.cc.o.d"
  "/root/repo/src/circuit/passes.cc" "src/CMakeFiles/qdb.dir/circuit/passes.cc.o" "gcc" "src/CMakeFiles/qdb.dir/circuit/passes.cc.o.d"
  "/root/repo/src/circuit/qasm.cc" "src/CMakeFiles/qdb.dir/circuit/qasm.cc.o" "gcc" "src/CMakeFiles/qdb.dir/circuit/qasm.cc.o.d"
  "/root/repo/src/classical/dataset.cc" "src/CMakeFiles/qdb.dir/classical/dataset.cc.o" "gcc" "src/CMakeFiles/qdb.dir/classical/dataset.cc.o.d"
  "/root/repo/src/classical/knn.cc" "src/CMakeFiles/qdb.dir/classical/knn.cc.o" "gcc" "src/CMakeFiles/qdb.dir/classical/knn.cc.o.d"
  "/root/repo/src/classical/logistic.cc" "src/CMakeFiles/qdb.dir/classical/logistic.cc.o" "gcc" "src/CMakeFiles/qdb.dir/classical/logistic.cc.o.d"
  "/root/repo/src/classical/metrics.cc" "src/CMakeFiles/qdb.dir/classical/metrics.cc.o" "gcc" "src/CMakeFiles/qdb.dir/classical/metrics.cc.o.d"
  "/root/repo/src/classical/svm.cc" "src/CMakeFiles/qdb.dir/classical/svm.cc.o" "gcc" "src/CMakeFiles/qdb.dir/classical/svm.cc.o.d"
  "/root/repo/src/common/rng.cc" "src/CMakeFiles/qdb.dir/common/rng.cc.o" "gcc" "src/CMakeFiles/qdb.dir/common/rng.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/qdb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/qdb.dir/common/status.cc.o.d"
  "/root/repo/src/common/strings.cc" "src/CMakeFiles/qdb.dir/common/strings.cc.o" "gcc" "src/CMakeFiles/qdb.dir/common/strings.cc.o.d"
  "/root/repo/src/db/cardinality.cc" "src/CMakeFiles/qdb.dir/db/cardinality.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/cardinality.cc.o.d"
  "/root/repo/src/db/catalog.cc" "src/CMakeFiles/qdb.dir/db/catalog.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/catalog.cc.o.d"
  "/root/repo/src/db/cost_model.cc" "src/CMakeFiles/qdb.dir/db/cost_model.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/cost_model.cc.o.d"
  "/root/repo/src/db/index_selection.cc" "src/CMakeFiles/qdb.dir/db/index_selection.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/index_selection.cc.o.d"
  "/root/repo/src/db/join_order_dp.cc" "src/CMakeFiles/qdb.dir/db/join_order_dp.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/join_order_dp.cc.o.d"
  "/root/repo/src/db/join_order_greedy.cc" "src/CMakeFiles/qdb.dir/db/join_order_greedy.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/join_order_greedy.cc.o.d"
  "/root/repo/src/db/join_order_qubo.cc" "src/CMakeFiles/qdb.dir/db/join_order_qubo.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/join_order_qubo.cc.o.d"
  "/root/repo/src/db/mqo.cc" "src/CMakeFiles/qdb.dir/db/mqo.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/mqo.cc.o.d"
  "/root/repo/src/db/query_graph.cc" "src/CMakeFiles/qdb.dir/db/query_graph.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/query_graph.cc.o.d"
  "/root/repo/src/db/transactions.cc" "src/CMakeFiles/qdb.dir/db/transactions.cc.o" "gcc" "src/CMakeFiles/qdb.dir/db/transactions.cc.o.d"
  "/root/repo/src/encoding/encodings.cc" "src/CMakeFiles/qdb.dir/encoding/encodings.cc.o" "gcc" "src/CMakeFiles/qdb.dir/encoding/encodings.cc.o.d"
  "/root/repo/src/kernel/alignment.cc" "src/CMakeFiles/qdb.dir/kernel/alignment.cc.o" "gcc" "src/CMakeFiles/qdb.dir/kernel/alignment.cc.o.d"
  "/root/repo/src/kernel/quantum_kernel.cc" "src/CMakeFiles/qdb.dir/kernel/quantum_kernel.cc.o" "gcc" "src/CMakeFiles/qdb.dir/kernel/quantum_kernel.cc.o.d"
  "/root/repo/src/linalg/eigen.cc" "src/CMakeFiles/qdb.dir/linalg/eigen.cc.o" "gcc" "src/CMakeFiles/qdb.dir/linalg/eigen.cc.o.d"
  "/root/repo/src/linalg/matrix.cc" "src/CMakeFiles/qdb.dir/linalg/matrix.cc.o" "gcc" "src/CMakeFiles/qdb.dir/linalg/matrix.cc.o.d"
  "/root/repo/src/linalg/random_unitary.cc" "src/CMakeFiles/qdb.dir/linalg/random_unitary.cc.o" "gcc" "src/CMakeFiles/qdb.dir/linalg/random_unitary.cc.o.d"
  "/root/repo/src/linalg/svd.cc" "src/CMakeFiles/qdb.dir/linalg/svd.cc.o" "gcc" "src/CMakeFiles/qdb.dir/linalg/svd.cc.o.d"
  "/root/repo/src/linalg/vector_ops.cc" "src/CMakeFiles/qdb.dir/linalg/vector_ops.cc.o" "gcc" "src/CMakeFiles/qdb.dir/linalg/vector_ops.cc.o.d"
  "/root/repo/src/mitigation/readout.cc" "src/CMakeFiles/qdb.dir/mitigation/readout.cc.o" "gcc" "src/CMakeFiles/qdb.dir/mitigation/readout.cc.o.d"
  "/root/repo/src/mitigation/zne.cc" "src/CMakeFiles/qdb.dir/mitigation/zne.cc.o" "gcc" "src/CMakeFiles/qdb.dir/mitigation/zne.cc.o.d"
  "/root/repo/src/ops/graph_hamiltonians.cc" "src/CMakeFiles/qdb.dir/ops/graph_hamiltonians.cc.o" "gcc" "src/CMakeFiles/qdb.dir/ops/graph_hamiltonians.cc.o.d"
  "/root/repo/src/ops/ising.cc" "src/CMakeFiles/qdb.dir/ops/ising.cc.o" "gcc" "src/CMakeFiles/qdb.dir/ops/ising.cc.o.d"
  "/root/repo/src/ops/model_hamiltonians.cc" "src/CMakeFiles/qdb.dir/ops/model_hamiltonians.cc.o" "gcc" "src/CMakeFiles/qdb.dir/ops/model_hamiltonians.cc.o.d"
  "/root/repo/src/ops/pauli.cc" "src/CMakeFiles/qdb.dir/ops/pauli.cc.o" "gcc" "src/CMakeFiles/qdb.dir/ops/pauli.cc.o.d"
  "/root/repo/src/ops/qubo.cc" "src/CMakeFiles/qdb.dir/ops/qubo.cc.o" "gcc" "src/CMakeFiles/qdb.dir/ops/qubo.cc.o.d"
  "/root/repo/src/optimize/adam.cc" "src/CMakeFiles/qdb.dir/optimize/adam.cc.o" "gcc" "src/CMakeFiles/qdb.dir/optimize/adam.cc.o.d"
  "/root/repo/src/optimize/gradient_descent.cc" "src/CMakeFiles/qdb.dir/optimize/gradient_descent.cc.o" "gcc" "src/CMakeFiles/qdb.dir/optimize/gradient_descent.cc.o.d"
  "/root/repo/src/optimize/nelder_mead.cc" "src/CMakeFiles/qdb.dir/optimize/nelder_mead.cc.o" "gcc" "src/CMakeFiles/qdb.dir/optimize/nelder_mead.cc.o.d"
  "/root/repo/src/optimize/spsa.cc" "src/CMakeFiles/qdb.dir/optimize/spsa.cc.o" "gcc" "src/CMakeFiles/qdb.dir/optimize/spsa.cc.o.d"
  "/root/repo/src/sim/density_matrix.cc" "src/CMakeFiles/qdb.dir/sim/density_matrix.cc.o" "gcc" "src/CMakeFiles/qdb.dir/sim/density_matrix.cc.o.d"
  "/root/repo/src/sim/density_simulator.cc" "src/CMakeFiles/qdb.dir/sim/density_simulator.cc.o" "gcc" "src/CMakeFiles/qdb.dir/sim/density_simulator.cc.o.d"
  "/root/repo/src/sim/mps.cc" "src/CMakeFiles/qdb.dir/sim/mps.cc.o" "gcc" "src/CMakeFiles/qdb.dir/sim/mps.cc.o.d"
  "/root/repo/src/sim/noise.cc" "src/CMakeFiles/qdb.dir/sim/noise.cc.o" "gcc" "src/CMakeFiles/qdb.dir/sim/noise.cc.o.d"
  "/root/repo/src/sim/shot_estimator.cc" "src/CMakeFiles/qdb.dir/sim/shot_estimator.cc.o" "gcc" "src/CMakeFiles/qdb.dir/sim/shot_estimator.cc.o.d"
  "/root/repo/src/sim/state_vector.cc" "src/CMakeFiles/qdb.dir/sim/state_vector.cc.o" "gcc" "src/CMakeFiles/qdb.dir/sim/state_vector.cc.o.d"
  "/root/repo/src/sim/statevector_simulator.cc" "src/CMakeFiles/qdb.dir/sim/statevector_simulator.cc.o" "gcc" "src/CMakeFiles/qdb.dir/sim/statevector_simulator.cc.o.d"
  "/root/repo/src/sim/unitary_simulator.cc" "src/CMakeFiles/qdb.dir/sim/unitary_simulator.cc.o" "gcc" "src/CMakeFiles/qdb.dir/sim/unitary_simulator.cc.o.d"
  "/root/repo/src/variational/ansatz.cc" "src/CMakeFiles/qdb.dir/variational/ansatz.cc.o" "gcc" "src/CMakeFiles/qdb.dir/variational/ansatz.cc.o.d"
  "/root/repo/src/variational/qaoa.cc" "src/CMakeFiles/qdb.dir/variational/qaoa.cc.o" "gcc" "src/CMakeFiles/qdb.dir/variational/qaoa.cc.o.d"
  "/root/repo/src/variational/vqc.cc" "src/CMakeFiles/qdb.dir/variational/vqc.cc.o" "gcc" "src/CMakeFiles/qdb.dir/variational/vqc.cc.o.d"
  "/root/repo/src/variational/vqe.cc" "src/CMakeFiles/qdb.dir/variational/vqe.cc.o" "gcc" "src/CMakeFiles/qdb.dir/variational/vqe.cc.o.d"
  "/root/repo/src/variational/vqr.cc" "src/CMakeFiles/qdb.dir/variational/vqr.cc.o" "gcc" "src/CMakeFiles/qdb.dir/variational/vqr.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
