# Empty compiler generated dependencies file for bench_qkernel.
# This may be replaced when dependencies are built.
