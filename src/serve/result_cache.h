/// \file result_cache.h
/// \brief LRU cache of inference results keyed by (model name, version,
/// request kind, bit-exact input fingerprint).
///
/// Simulation is deterministic and served models are immutable once
/// registered, so a cached response is exactly the response the simulator
/// would produce — the cache is a pure latency/throughput win for workloads
/// with repeated queries (e.g. a cardinality model probed with the same
/// predicate templates). Keys hash the raw bytes of the input doubles, so
/// only bit-identical inputs hit.

#ifndef QDB_SERVE_RESULT_CACHE_H_
#define QDB_SERVE_RESULT_CACHE_H_

#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "linalg/types.h"
#include "serve/servable.h"

namespace qdb {
namespace serve {

/// \brief Bounded, thread-safe LRU map from request identity to
/// InferenceValue. Capacity 0 disables caching entirely (every lookup
/// misses, inserts are dropped).
class ResultCache {
 public:
  explicit ResultCache(size_t capacity) : capacity_(capacity) {}

  /// Bit-exact cache key for a request.
  static std::string MakeKey(const std::string& model, int version,
                             RequestKind kind, const DVector& input);

  /// Returns the cached value and refreshes its LRU position, or nullopt.
  std::optional<InferenceValue> Lookup(const std::string& key);

  /// Inserts (or refreshes) a value, evicting the least-recently-used
  /// entry beyond capacity.
  void Insert(const std::string& key, const InferenceValue& value);

  struct Stats {
    long hits = 0;
    long misses = 0;
    long evictions = 0;
    size_t size = 0;
    size_t capacity = 0;
  };
  Stats stats() const;

  void Clear();

 private:
  mutable std::mutex mu_;
  size_t capacity_;
  long hits_ = 0;
  long misses_ = 0;
  long evictions_ = 0;
  /// Most-recently-used key at the front.
  std::list<std::string> lru_;
  struct Entry {
    InferenceValue value;
    std::list<std::string>::iterator lru_pos;
  };
  std::unordered_map<std::string, Entry> entries_;
};

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_RESULT_CACHE_H_
