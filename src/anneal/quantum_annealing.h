/// \file quantum_annealing.h
/// \brief Simulated quantum annealing (SQA): path-integral Monte Carlo over
/// the transverse-field Ising model — the software substitute for D-Wave
/// hardware used throughout the database experiments (E7–E10, E12).
///
/// The quantum system at inverse temperature β with transverse field Γ(t)
/// is Trotterized into P coupled replicas of the classical instance; the
/// replica coupling J⊥(t) = ½·ln coth(βΓ(t)/P) grows as Γ shrinks, freezing
/// the replicas into a common low-energy configuration. Tunneling events
/// correspond to replica-coordinated flips (figure 2A of the survey
/// discussion).

#ifndef QDB_ANNEAL_QUANTUM_ANNEALING_H_
#define QDB_ANNEAL_QUANTUM_ANNEALING_H_

#include "anneal/types.h"
#include "common/result.h"
#include "ops/ising.h"

namespace qdb {

/// \brief SQA schedule and budget.
struct SqaOptions {
  int num_replicas = 16;     ///< Trotter slices P.
  int num_sweeps = 1000;     ///< Sweeps over all replicas per restart.
  int num_restarts = 1;
  double gamma_initial = 3.0;  ///< Transverse field start (× coefficient scale).
  double gamma_final = 0.01;   ///< Transverse field end.
  /// Fixed inverse temperature (× scale⁻¹). The default follows the
  /// Martoňák et al. PIMC convention P·T ≈ 1, i.e. β ≈ num_replicas.
  double beta = 16.0;
  /// Normalize the schedule by max |coefficient| as in SaOptions.
  bool scale_to_coefficients = true;
  /// Attempt one global (all-replica) flip sweep per local sweep — the
  /// move class that mimics coherent multi-slice tunneling.
  bool global_moves = true;
  uint64_t seed = 43;
};

/// \brief Runs SQA and returns the best single-replica configuration seen
/// (evaluated under the classical problem energy).
Result<SolveResult> SimulatedQuantumAnnealing(const IsingModel& model,
                                              const SqaOptions& options = {});

}  // namespace qdb

#endif  // QDB_ANNEAL_QUANTUM_ANNEALING_H_
