#include "serve/model_registry.h"

#include "common/strings.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"

namespace qdb {
namespace serve {

namespace {

obs::Gauge* RegisteredGauge() {
  static obs::Gauge* gauge = obs::GetGauge("serve.registry_models");
  return gauge;
}

}  // namespace

RetryPolicy DefaultArtifactLoadRetry() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 20000;
  // A torn read of a file being rewritten surfaces as kInvalidArgument
  // ("artifact corrupted") or kNotFound (tmp not yet renamed), not just
  // kUnavailable — all three are worth one more look.
  policy.retryable = [](const Status& status) {
    return status.code() == StatusCode::kUnavailable ||
           status.code() == StatusCode::kNotFound ||
           status.code() == StatusCode::kInvalidArgument;
  };
  return policy;
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::Register(
    ModelArtifact artifact) {
  if (artifact.name.empty()) {
    return Status::InvalidArgument("artifact has no name");
  }
  if (artifact.version < 0) {
    return Status::InvalidArgument("artifact version must be >= 0");
  }
  // Resolve the version under the lock, but build the servable outside it:
  // Create() simulates support-vector encodings and compiles circuits,
  // which must not serialize against lookups. The slot is re-checked on
  // insert in case of a racing Register on the same name.
  int version = artifact.version;
  if (version == 0) {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(artifact.name);
    version = it == models_.end() || it->second.empty()
                  ? 1
                  : it->second.rbegin()->first + 1;
  }
  artifact.version = version;
  QDB_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                       ServableModel::Create(std::move(artifact)));
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& versions = models_[servable->name()];
    if (!versions.emplace(version, servable).second) {
      return Status::AlreadyExists(
          StrCat("model '", servable->name(), "' version ", version,
                 " is already registered"));
    }
  }
  RegisteredGauge()->Set(static_cast<double>(size()));
  return servable;
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::Lookup(
    const std::string& name, int version) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = models_.find(name);
  if (it == models_.end() || it->second.empty()) {
    return Status::NotFound(StrCat("no model named '", name, "'"));
  }
  if (version < 0) {
    return it->second.rbegin()->second;
  }
  auto vit = it->second.find(version);
  if (vit == it->second.end()) {
    return Status::NotFound(
        StrCat("model '", name, "' has no version ", version));
  }
  return vit->second;
}

Status ModelRegistry::Evict(const std::string& name, int version) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = models_.find(name);
    if (it == models_.end() || it->second.empty()) {
      return Status::NotFound(StrCat("no model named '", name, "'"));
    }
    if (version < 0) {
      models_.erase(it);
    } else {
      if (it->second.erase(version) == 0) {
        return Status::NotFound(
            StrCat("model '", name, "' has no version ", version));
      }
      if (it->second.empty()) models_.erase(it);
    }
  }
  RegisteredGauge()->Set(static_cast<double>(size()));
  return Status::OK();
}

std::vector<ModelEntry> ModelRegistry::List() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelEntry> out;
  for (const auto& [name, versions] : models_) {
    for (const auto& [version, servable] : versions) {
      ModelEntry entry;
      entry.name = name;
      entry.version = version;
      entry.type = servable->type();
      entry.num_features = servable->num_features();
      out.push_back(std::move(entry));
    }
  }
  return out;
}

size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [name, versions] : models_) n += versions.size();
  return n;
}

Status ModelRegistry::SaveModel(const std::string& name, int version,
                                const std::string& path) const {
  QDB_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                       Lookup(name, version));
  return servable->artifact().SaveToFile(path);
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::LoadModel(
    const std::string& path, bool reassign_version,
    const RetryPolicy& retry) {
  QDB_ASSIGN_OR_RETURN(
      ModelArtifact artifact,
      RetryResult<ModelArtifact>(
          retry, [&path](int) -> Result<ModelArtifact> {
            // Fault point "artifact.load" (scoped by path) sits inside the
            // retry loop, so injected transient errors exercise it.
            QDB_RETURN_IF_ERROR(
                fault::MaybeInject("artifact.load", path));
            return ModelArtifact::LoadFromFile(path);
          }));
  if (reassign_version) artifact.version = 0;
  return Register(std::move(artifact));
}

}  // namespace serve
}  // namespace qdb
