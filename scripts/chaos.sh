#!/usr/bin/env bash
# Chaos gate: replay three seeded QDB_FAULTS profiles through the resilience
# test suite, then (when a TSan build exists) run the fault/retry/breaker
# tests under ThreadSanitizer. Run from the repo root:
#
#   ./scripts/chaos.sh            # uses build/ (and build-tsan/ if present)
#   BUILD_DIR=out ./scripts/chaos.sh
#
# Each profile is a fixed point:kind:probability:seed spec, so a failure here
# reproduces bit for bit with the printed QDB_FAULTS string. The env-driven
# test (FaultTest.ChaosProfileFromEnvEveryRequestTerminates) asserts the
# profile-agnostic invariants: every request terminates with a definitive
# Status, terminal buckets account for every admission, saves never leave a
# half-readable artifact, and the run replays identically when re-armed.
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
TSAN_DIR="${TSAN_DIR:-build-tsan}"
FAULT_TEST="$BUILD_DIR/tests/fault_test"
STORE_TEST="$BUILD_DIR/tests/store_test"

if [[ ! -x "$FAULT_TEST" ]]; then
  echo "chaos: $FAULT_TEST not built (run scripts/tier1.sh or cmake --build $BUILD_DIR)" >&2
  exit 1
fi
if [[ ! -x "$STORE_TEST" ]]; then
  echo "chaos: $STORE_TEST not built (run scripts/tier1.sh or cmake --build $BUILD_DIR)" >&2
  exit 1
fi

declare -A PROFILES=(
  [error-storm]="serve.dispatch:error:0.2:1337"
  [latency-spike]="serve.dispatch:latency:0.3:7:2000"
  [torn-write]="artifact.save:torn_write:0.5:11:0.5"
)

for name in error-storm latency-spike torn-write; do
  spec="${PROFILES[$name]}"
  echo "== chaos: $name  (QDB_FAULTS=$spec) =="
  QDB_FAULTS="$spec" "$FAULT_TEST" \
    --gtest_filter='FaultTest.ChaosProfileFromEnvEveryRequestTerminates'
done

# Storage-tier profile: torn reads of binary artifacts (the load retries,
# then fails closed with kInvalidArgument) plus latency injected into the
# async loader's prefetch path. Every prefetch future must settle with a
# definitive Status and the run must replay bit for bit.
STORE_PROFILE="store.read:torn_write:0.4:23:0.5,store.prefetch:latency:0.25:29:1500"
echo "== chaos: store-read-faults  (QDB_FAULTS=$STORE_PROFILE) =="
QDB_FAULTS="$STORE_PROFILE" "$STORE_TEST" \
  --gtest_filter='StoreChaosTest.PrefetchUnderReadFaultsEveryLoadTerminates'

# The deterministic (programmatically armed) resilience suite, faults unset.
echo "== chaos: seeded resilience suite =="
"$FAULT_TEST"

if [[ -x "$TSAN_DIR/tests/fault_test" ]]; then
  echo "== chaos: fault/retry/breaker under ThreadSanitizer =="
  QDB_THREADS=4 "$TSAN_DIR/tests/fault_test"
else
  echo "== chaos: $TSAN_DIR/tests/fault_test not built; skipping TSan pass =="
fi

echo
echo "chaos PASS"
