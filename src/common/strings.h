/// \file strings.h
/// \brief Small string formatting utilities (no std::format on this
/// toolchain).

#ifndef QDB_COMMON_STRINGS_H_
#define QDB_COMMON_STRINGS_H_

#include <sstream>
#include <string>
#include <vector>

namespace qdb {

/// \brief Concatenates the string representations of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream os;
  (void)(os << ... << args);
  return os.str();
}

/// \brief Joins the string representations of `parts` with `sep`.
template <typename T>
std::string StrJoin(const std::vector<T>& parts, const std::string& sep) {
  std::ostringstream os;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

/// \brief printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// \brief Formats `value` with `digits` significant digits.
std::string ToStringPrecise(double value, int digits = 6);

}  // namespace qdb

#endif  // QDB_COMMON_STRINGS_H_
