#include "algo/swap_test.h"

#include <algorithm>

#include "common/strings.h"
#include "linalg/vector_ops.h"
#include "sim/statevector_simulator.h"

namespace qdb {

Circuit SwapTestCircuit(int register_qubits) {
  QDB_CHECK_GE(register_qubits, 1);
  const int n = register_qubits;
  Circuit c(1 + 2 * n);
  c.H(0);
  for (int q = 0; q < n; ++q) c.CSwap(0, 1 + q, 1 + n + q);
  c.H(0);
  return c;
}

namespace {

Result<StateVector> PrepareJointState(const StateVector& psi,
                                      const StateVector& phi) {
  if (psi.num_qubits() != phi.num_qubits()) {
    return Status::InvalidArgument(
        StrCat("swap test needs equal register widths, got ",
               psi.num_qubits(), " and ", phi.num_qubits()));
  }
  const int n = psi.num_qubits();
  if (1 + 2 * n > 24) {
    return Status::InvalidArgument("register too wide for the swap test");
  }
  // |0⟩_ancilla ⊗ |ψ⟩ ⊗ |φ⟩, then run the swap-test circuit.
  CVector joint = Kron(CVector{Complex(1.0, 0.0), Complex(0.0, 0.0)},
                       Kron(psi.ToAmplitudes(), phi.ToAmplitudes()));
  QDB_ASSIGN_OR_RETURN(StateVector state,
                       StateVector::FromAmplitudes(std::move(joint)));
  StateVectorSimulator sim;
  QDB_RETURN_IF_ERROR(sim.RunInPlace(SwapTestCircuit(n), state));
  return state;
}

}  // namespace

Result<double> SwapTestOverlap(const StateVector& psi, const StateVector& phi) {
  QDB_ASSIGN_OR_RETURN(StateVector state, PrepareJointState(psi, phi));
  const double p1 = state.ProbabilityOfOne(0);
  // P(1) = (1 − |⟨ψ|φ⟩|²) / 2 ⇒ overlap² = 1 − 2·P(1).
  return std::clamp(1.0 - 2.0 * p1, 0.0, 1.0);
}

Result<double> SwapTestOverlapSampled(const StateVector& psi,
                                      const StateVector& phi, int shots,
                                      Rng& rng) {
  if (shots < 1) {
    return Status::InvalidArgument("shots must be >= 1");
  }
  QDB_ASSIGN_OR_RETURN(StateVector state, PrepareJointState(psi, phi));
  const double p1 = state.ProbabilityOfOne(0);
  int ones = 0;
  for (int s = 0; s < shots; ++s) {
    if (rng.Bernoulli(p1)) ++ones;
  }
  const double p1_hat = static_cast<double>(ones) / shots;
  return std::clamp(1.0 - 2.0 * p1_hat, 0.0, 1.0);
}

}  // namespace qdb
