file(REMOVE_RECURSE
  "libqdb.a"
)
