file(REMOVE_RECURSE
  "CMakeFiles/hhl_test.dir/hhl_test.cc.o"
  "CMakeFiles/hhl_test.dir/hhl_test.cc.o.d"
  "hhl_test"
  "hhl_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hhl_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
