/// \file solver_metrics.h
/// \brief Shared metrics hook for the Ising/QUBO solvers: publishes a
/// finished SolveResult's totals to the process metrics registry under
/// `anneal.<solver>.*`. Solvers tally locally in the hot loop and call this
/// once at the end, so instrumentation adds nothing per sweep.

#ifndef QDB_ANNEAL_SOLVER_METRICS_H_
#define QDB_ANNEAL_SOLVER_METRICS_H_

#include "anneal/types.h"

namespace qdb {

/// Publishes sweeps / accepted / rejected counters and the best-energy
/// gauge for `solver` (e.g. "sa", "sqa", "tabu", "pt").
void RecordSolveMetrics(const char* solver, const SolveResult& result);

}  // namespace qdb

#endif  // QDB_ANNEAL_SOLVER_METRICS_H_
