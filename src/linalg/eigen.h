/// \file eigen.h
/// \brief Hermitian eigendecomposition via the cyclic Jacobi method.
///
/// Used for exact ground states in VQE validation, spectral checks of
/// kernel matrices (positive semidefiniteness), and density-matrix
/// diagnostics. Intended for small-to-medium matrices (n ≲ a few hundred);
/// the simulators never call into this on hot paths.

#ifndef QDB_LINALG_EIGEN_H_
#define QDB_LINALG_EIGEN_H_

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// \brief Result of a Hermitian eigendecomposition A = V diag(λ) V†.
struct EigenDecomposition {
  /// Eigenvalues in ascending order (real, since A is Hermitian).
  DVector eigenvalues;
  /// Unitary matrix whose columns are the corresponding eigenvectors.
  Matrix eigenvectors;
};

/// \brief Diagonalizes a Hermitian matrix with cyclic Jacobi rotations.
///
/// \param a the Hermitian input matrix (validated within `tol`).
/// \param tol convergence threshold on the off-diagonal Frobenius norm.
/// \param max_sweeps maximum number of full cyclic sweeps.
/// \return eigenvalues (ascending) and eigenvectors, or InvalidArgument if
///   `a` is not Hermitian, or NotConverged if max_sweeps is exhausted.
Result<EigenDecomposition> HermitianEigen(const Matrix& a,
                                          double tol = 1e-12,
                                          int max_sweeps = 100);

/// \brief Smallest eigenvalue of a Hermitian matrix (convenience wrapper).
Result<double> MinEigenvalue(const Matrix& a);

/// \brief Returns true if the Hermitian matrix is positive semidefinite
/// within `tol` (all eigenvalues ≥ -tol).
Result<bool> IsPositiveSemidefinite(const Matrix& a, double tol = 1e-8);

}  // namespace qdb

#endif  // QDB_LINALG_EIGEN_H_
