// Property tests: the state-vector simulator's specialized kernels agree
// with the dense unitary built by Kronecker products, for random circuits
// over the whole gate set; Pauli expectations agree with dense matrices.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/random_unitary.h"
#include "ops/pauli.h"
#include "sim/statevector_simulator.h"
#include "sim/unitary_simulator.h"

namespace qdb {
namespace {

/// Dense reference: embeds `gate_matrix` acting on `qubits` of an n-qubit
/// register into the full 2^n unitary by permuting each basis vector.
Matrix EmbedGate(int num_qubits, const std::vector<int>& qubits,
                 const Matrix& gate_matrix) {
  const uint64_t dim = uint64_t{1} << num_qubits;
  const int k = static_cast<int>(qubits.size());
  Matrix full(dim, dim);
  for (uint64_t col = 0; col < dim; ++col) {
    // Extract the sub-index of the operand qubits (qubits[0] = MSB).
    uint64_t sub = 0;
    for (int j = 0; j < k; ++j) {
      const int bit = num_qubits - 1 - qubits[j];
      sub = (sub << 1) | ((col >> bit) & 1);
    }
    for (uint64_t sub_out = 0; sub_out < (uint64_t{1} << k); ++sub_out) {
      const Complex v = gate_matrix(sub_out, sub);
      if (v == Complex(0, 0)) continue;
      uint64_t row = col;
      for (int j = 0; j < k; ++j) {
        const int bit = num_qubits - 1 - qubits[j];
        const uint64_t bit_val = (sub_out >> (k - 1 - j)) & 1;
        row = (row & ~(uint64_t{1} << bit)) | (bit_val << bit);
      }
      full(row, col) += v;
    }
  }
  return full;
}

struct GateCase {
  GateType type;
  int arity;
  int params;
};

const GateCase kAllFixedArityGates[] = {
    {GateType::kI, 1, 0},     {GateType::kX, 1, 0},
    {GateType::kY, 1, 0},     {GateType::kZ, 1, 0},
    {GateType::kH, 1, 0},     {GateType::kS, 1, 0},
    {GateType::kSdg, 1, 0},   {GateType::kT, 1, 0},
    {GateType::kTdg, 1, 0},   {GateType::kSX, 1, 0},
    {GateType::kRX, 1, 1},    {GateType::kRY, 1, 1},
    {GateType::kRZ, 1, 1},    {GateType::kPhase, 1, 1},
    {GateType::kU, 1, 3},     {GateType::kCX, 2, 0},
    {GateType::kCY, 2, 0},    {GateType::kCZ, 2, 0},
    {GateType::kCH, 2, 0},    {GateType::kSwap, 2, 0},
    {GateType::kCRX, 2, 1},   {GateType::kCRY, 2, 1},
    {GateType::kCRZ, 2, 1},   {GateType::kCPhase, 2, 1},
    {GateType::kRXX, 2, 1},   {GateType::kRYY, 2, 1},
    {GateType::kRZZ, 2, 1},   {GateType::kCCX, 3, 0},
    {GateType::kCSwap, 3, 0},
};

class PerGateEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PerGateEquivalenceTest, KernelMatchesDenseEmbedding) {
  const GateCase& gc = kAllFixedArityGates[GetParam()];
  const int n = 4;
  Rng rng(500 + GetParam());
  // Random distinct operand qubits, random angles, random initial state.
  std::vector<int> qubits;
  while (static_cast<int>(qubits.size()) < gc.arity) {
    int q = static_cast<int>(rng.UniformInt(uint64_t(n)));
    bool dup = false;
    for (int e : qubits) dup |= (e == q);
    if (!dup) qubits.push_back(q);
  }
  DVector angles;
  for (int p = 0; p < gc.params; ++p) angles.push_back(rng.Uniform(-3.0, 3.0));

  CVector init = RandomState(uint64_t{1} << n, rng);
  auto psi = StateVector::FromAmplitudes(init);
  ASSERT_TRUE(psi.ok());
  StateVector state = psi.value();

  Gate gate{gc.type, qubits, {}};
  for (double a : angles) gate.params.push_back(ParamExpr::Constant(a));
  StateVectorSimulator sim;
  ASSERT_TRUE(sim.ApplyGate(gate, angles, state).ok());

  Matrix full = EmbedGate(n, qubits, GateMatrix(gc.type, angles));
  CVector expected = full.Apply(init);
  for (uint64_t i = 0; i < state.dim(); ++i) {
    ASSERT_NEAR(std::abs(state.amplitude(i) - expected[i]), 0.0, 1e-10)
        << GateTypeName(gc.type) << " on qubits index " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, PerGateEquivalenceTest,
    ::testing::Range(0, static_cast<int>(std::size(kAllFixedArityGates))));

class RandomCircuitEquivalenceTest : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(RandomCircuitEquivalenceTest, CircuitUnitaryIsUnitary) {
  Rng rng(GetParam());
  Circuit c(4);
  for (int g = 0; g < 30; ++g) {
    const GateCase& gc =
        kAllFixedArityGates[rng.UniformInt(std::size(kAllFixedArityGates))];
    std::vector<int> qubits;
    while (static_cast<int>(qubits.size()) < gc.arity) {
      int q = static_cast<int>(rng.UniformInt(uint64_t{4}));
      bool dup = false;
      for (int e : qubits) dup |= (e == q);
      if (!dup) qubits.push_back(q);
    }
    Gate gate{gc.type, qubits, {}};
    for (int p = 0; p < gc.params; ++p) {
      gate.params.push_back(ParamExpr::Constant(rng.Uniform(-3.0, 3.0)));
    }
    c.Append(gate);
  }
  auto u = CircuitUnitary(c);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u.value().IsUnitary(1e-9));
}

TEST_P(RandomCircuitEquivalenceTest, PauliExpectationMatchesDense) {
  Rng rng(1000 + GetParam());
  const int n = 3;
  CVector amps = RandomState(uint64_t{1} << n, rng);
  auto psi = StateVector::FromAmplitudes(amps);
  ASSERT_TRUE(psi.ok());

  // Random Pauli string.
  PauliString pauli(n);
  for (int q = 0; q < n; ++q) {
    pauli.set_op(q, static_cast<PauliOp>(rng.UniformInt(uint64_t{4})));
  }
  const double fast = Expectation(psi.value(), pauli);
  // Dense reference ⟨ψ|P|ψ⟩.
  CVector p_psi = pauli.ToMatrix().Apply(amps);
  Complex dense(0, 0);
  for (size_t i = 0; i < amps.size(); ++i) {
    dense += std::conj(amps[i]) * p_psi[i];
  }
  EXPECT_NEAR(fast, dense.real(), 1e-10) << pauli.ToString();
  EXPECT_NEAR(dense.imag(), 0.0, 1e-10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCircuitEquivalenceTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11,
                                           12));

TEST(SimulatorTest, ParameterBindingErrors) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(2));
  StateVectorSimulator sim;
  EXPECT_FALSE(sim.Run(c, {0.1}).ok());      // Too few parameters.
  EXPECT_TRUE(sim.Run(c, {0.1, 0.2, 0.3}).ok());
}

TEST(SimulatorTest, WidthMismatchError) {
  Circuit c(2);
  c.H(0);
  StateVector s(3);
  StateVectorSimulator sim;
  EXPECT_FALSE(sim.RunInPlace(c, s).ok());
}

TEST(UnitarySimulatorTest, GhzCircuit) {
  Circuit c(3);
  c.H(0).CX(0, 1).CX(1, 2);
  auto u = CircuitUnitary(c);
  ASSERT_TRUE(u.ok());
  // First column is the GHZ state.
  EXPECT_NEAR(u.value()(0, 0).real(), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(u.value()(7, 0).real(), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(UnitarySimulatorTest, RejectsWideCircuits) {
  Circuit c(13);
  c.H(0);
  EXPECT_FALSE(CircuitUnitary(c).ok());
}

}  // namespace
}  // namespace qdb
