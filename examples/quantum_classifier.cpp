// Quantum machine learning for classification: a variational quantum
// classifier and a quantum-kernel SVM on the moons dataset, against a
// classical logistic-regression baseline (the E2/E3 story in one program).
//
// Observability: run with QDB_TRACE=1 (or pass --trace-out) to capture a
// Chrome trace-event timeline of the whole training run —
//
//   QDB_TRACE=1 ./quantum_classifier --trace-out trace.json
//
// then load trace.json in chrome://tracing or https://ui.perfetto.dev.

#include <cmath>
#include <cstdio>
#include <cstring>

#include "classical/logistic.h"
#include "classical/metrics.h"
#include "classical/svm.h"
#include "common/timer.h"
#include "kernel/quantum_kernel.h"
#include "obs/obs.h"
#include "variational/vqc.h"

namespace {

// Returns the value of `--trace-out <path>` / `--trace-out=<path>`, or
// nullptr when the flag is absent.
const char* ParseTraceOut(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--trace-out") == 0 && i + 1 < argc) {
      return argv[i + 1];
    }
    if (std::strncmp(argv[i], "--trace-out=", 12) == 0) {
      return argv[i] + 12;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qdb;

  obs::InitTracingFromEnv();
  const char* trace_out = ParseTraceOut(argc, argv);
  if (trace_out != nullptr) obs::EnableTracing();

  Rng rng(11);
  Dataset all = MakeMoons(48, 0.12, rng);
  auto [train, test] = TrainTestSplit(all, 0.25, rng);
  MinMaxScale(train, test, 0.0, M_PI);
  MinMaxScale(train, train, 0.0, M_PI);
  std::printf("moons: %zu train / %zu test samples, 2 features\n\n",
              train.size(), test.size());

  auto report = [&](const char* name, auto&& predict) {
    std::vector<int> train_preds, test_preds;
    for (const auto& x : train.features) train_preds.push_back(predict(x));
    for (const auto& x : test.features) test_preds.push_back(predict(x));
    std::printf("%-22s train %.2f   test %.2f\n", name,
                Accuracy(train.labels, train_preds),
                Accuracy(test.labels, test_preds));
  };

  Timer timer;

  // Classical linear baseline.
  LogisticRegression logistic = LogisticRegression::Train(train).ValueOrDie();
  report("logistic regression",
         [&](const DVector& x) { return logistic.Predict(x); });
  std::printf("  (%.1f ms)\n", timer.LapMillis());

  // Variational quantum classifier with data re-uploading.
  VqcOptions vqc_options;
  vqc_options.encoding = VqcEncoding::kReuploading;
  vqc_options.ansatz_layers = 3;
  vqc_options.adam.max_iterations = 100;
  vqc_options.adam.learning_rate = 0.15;
  VqcClassifier vqc = VqcClassifier::Train(train, vqc_options).ValueOrDie();
  report("VQC (re-uploading)",
         [&](const DVector& x) { return vqc.Predict(x).ValueOrDie(); });
  std::printf("  (%.1f ms, %ld circuit evaluations)\n", timer.LapMillis(),
              vqc.circuit_evaluations());
  const DVector& loss = vqc.loss_history();
  const DVector& gnorm = vqc.gradient_norm_history();
  if (!loss.empty()) {
    std::printf("  loss curve: %.3f -> %.3f over %zu iterations", loss.front(),
                loss.back(), loss.size());
    if (!gnorm.empty()) {
      std::printf("  (final grad norm %.2e)", gnorm.back());
    }
    std::printf("\n");
  }

  // Quantum-kernel SVM: fidelity kernel of the ZZ feature map.
  FidelityQuantumKernel kernel = MakeZZFeatureMapKernel(2);
  Matrix gram = kernel.GramMatrix(train.features).ValueOrDie();
  SvmOptions svm_options;
  svm_options.kernel = SvmKernel::kPrecomputed;
  svm_options.c = 20.0;
  Svm svm = Svm::Train(train, svm_options, &gram).ValueOrDie();
  Matrix cross = kernel.CrossMatrix(test.features, train.features).ValueOrDie();

  std::vector<int> test_preds;
  for (size_t i = 0; i < test.size(); ++i) {
    DVector row(train.size());
    for (size_t j = 0; j < train.size(); ++j) row[j] = cross(i, j).real();
    test_preds.push_back(svm.PredictFromKernelRow(row));
  }
  std::printf("%-22s test  %.2f  (%d support vectors, %.1f ms)\n",
              "quantum-kernel SVM", Accuracy(test.labels, test_preds),
              svm.NumSupportVectors(), timer.LapMillis());

  if (trace_out != nullptr) {
    obs::TraceLog& log = obs::TraceLog::Global();
    Status s = log.WriteChromeTrace(trace_out);
    if (!s.ok()) {
      std::fprintf(stderr, "trace write failed: %s\n", s.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu trace events to %s (%zu dropped)\n", log.size(),
                trace_out, log.dropped());
    std::printf("metrics:\n%s", obs::SummaryText().c_str());
  }
  return 0;
}
