/// \file shot_estimator.h
/// \brief Shot-based (sampled) expectation estimation — the hardware-
/// realistic readout path: each Pauli term is measured in its own rotated
/// basis with a finite number of shots, so estimates carry statistical
/// noise of order 1/√shots.

#ifndef QDB_SIM_SHOT_ESTIMATOR_H_
#define QDB_SIM_SHOT_ESTIMATOR_H_

#include "circuit/circuit.h"
#include "common/result.h"
#include "common/rng.h"
#include "ops/pauli.h"
#include "sim/state_vector.h"

namespace qdb {

/// \brief Outcome of a sampled estimation.
struct ShotEstimate {
  double value = 0.0;           ///< The estimate of ⟨H⟩.
  double standard_error = 0.0;  ///< Propagated per-term standard errors.
  long total_shots = 0;         ///< Shots consumed across all terms.
};

/// \brief Appends the basis-change gates mapping `pauli`'s measurement onto
/// the computational basis (H for X factors, S†·H for Y factors).
void AppendMeasurementBasisChange(Circuit& circuit, const PauliString& pauli);

/// \brief Estimates ⟨ψ|P|ψ⟩ for one Pauli string with `shots` samples:
/// rotates into the Z basis, samples bitstrings, averages the ±1
/// eigenvalues over the string's support.
Result<double> EstimatePauliExpectation(const StateVector& state,
                                        const PauliString& pauli, int shots,
                                        Rng& rng);

/// \brief Estimates ⟨ψ|H|ψ⟩ for a Pauli sum, spending `shots_per_term` on
/// each non-identity term (identity terms are exact). The standard error
/// combines the per-term sample variances with the coefficients.
Result<ShotEstimate> EstimateExpectation(const StateVector& state,
                                         const PauliSum& observable,
                                         int shots_per_term, Rng& rng);

/// \brief Partitions term indices into qubit-wise-commuting (QWC) groups by
/// greedy first-fit: two strings share a group iff on every qubit their
/// operators are equal or one is the identity, so one rotated basis
/// measures the whole group. Identity-only terms are excluded.
std::vector<std::vector<size_t>> GroupQubitWiseCommuting(
    const PauliSum& observable);

/// \brief Like EstimateExpectation but spends `shots_per_group` per QWC
/// group: every member term is evaluated from the same samples. Cuts the
/// measurement budget by the grouping factor (per-term standard errors
/// ignore the within-group covariances, as is conventional).
Result<ShotEstimate> EstimateExpectationGrouped(const StateVector& state,
                                                const PauliSum& observable,
                                                int shots_per_group, Rng& rng);

}  // namespace qdb

#endif  // QDB_SIM_SHOT_ESTIMATOR_H_
