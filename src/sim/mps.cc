#include "sim/mps.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "linalg/svd.h"

namespace qdb {

MpsState::MpsState(int num_qubits, int max_bond, double svd_tol)
    : max_bond_(max_bond), svd_tol_(svd_tol) {
  QDB_CHECK_GT(num_qubits, 0);
  QDB_CHECK_GT(max_bond, 0);
  tensors_.resize(num_qubits);
  for (auto& site : tensors_) {
    site[0] = Matrix(1, 1);
    site[0](0, 0) = Complex(1.0, 0.0);  // |0⟩ component.
    site[1] = Matrix(1, 1);             // |1⟩ component: zero.
  }
}

int MpsState::MaxBondDimension() const {
  int best = 1;
  for (const auto& site : tensors_) {
    best = std::max(best, static_cast<int>(site[0].cols()));
  }
  return best;
}

void MpsState::Apply1Q(int site, const Matrix& u) {
  QDB_CHECK_GE(site, 0);
  QDB_CHECK_LT(site, num_qubits());
  QDB_CHECK_EQ(u.rows(), 2u);
  // A'[s] = Σ_t U(s, t) A[t].
  Matrix a0 = tensors_[site][0] * u(0, 0) + tensors_[site][1] * u(0, 1);
  Matrix a1 = tensors_[site][0] * u(1, 0) + tensors_[site][1] * u(1, 1);
  tensors_[site][0] = std::move(a0);
  tensors_[site][1] = std::move(a1);
}

Status MpsState::Apply2QAdjacent(int site, const Matrix& u) {
  if (site < 0 || site + 1 >= num_qubits()) {
    return Status::OutOfRange(StrCat("adjacent pair (", site, ", ", site + 1,
                                     ") out of range"));
  }
  if (u.rows() != 4 || u.cols() != 4) {
    return Status::InvalidArgument("two-qubit gate matrix must be 4x4");
  }
  const auto& left = tensors_[site];
  const auto& right = tensors_[site + 1];
  const size_t a = left[0].rows();
  const size_t b = right[0].cols();

  // Θ[s1][s2] = A_k[s1] · A_{k+1}[s2]  (a × b each).
  Matrix theta[2][2];
  for (int s1 = 0; s1 < 2; ++s1) {
    for (int s2 = 0; s2 < 2; ++s2) theta[s1][s2] = left[s1] * right[s2];
  }
  // Gate application: Θ'[s] = Σ_t U(s, t) Θ[t], s = (s1, s2) with s1 high.
  Matrix transformed[2][2];
  for (int s1 = 0; s1 < 2; ++s1) {
    for (int s2 = 0; s2 < 2; ++s2) {
      Matrix acc(a, b);
      for (int t1 = 0; t1 < 2; ++t1) {
        for (int t2 = 0; t2 < 2; ++t2) {
          const Complex coeff = u(2 * s1 + s2, 2 * t1 + t2);
          if (coeff != Complex(0.0, 0.0)) acc += theta[t1][t2] * coeff;
        }
      }
      transformed[s1][s2] = std::move(acc);
    }
  }
  // Reshape to (2a) × (2b) and split with a truncated SVD.
  Matrix merged(2 * a, 2 * b);
  for (int s1 = 0; s1 < 2; ++s1) {
    for (int s2 = 0; s2 < 2; ++s2) {
      for (size_t i = 0; i < a; ++i) {
        for (size_t j = 0; j < b; ++j) {
          merged(s1 * a + i, s2 * b + j) = transformed[s1][s2](i, j);
        }
      }
    }
  }
  double discarded = 0.0;
  QDB_ASSIGN_OR_RETURN(
      SvdResult svd,
      TruncatedSvd(merged, static_cast<size_t>(max_bond_), &discarded,
                   svd_tol_));
  truncation_weight_ += discarded;
  const size_t r = std::max<size_t>(svd.rank(), 1);

  // Left site keeps U; σ·V† folds into the right site.
  for (int s1 = 0; s1 < 2; ++s1) {
    Matrix t(a, r);
    for (size_t i = 0; i < a; ++i) {
      for (size_t c = 0; c < svd.rank(); ++c) t(i, c) = svd.u(s1 * a + i, c);
    }
    tensors_[site][s1] = std::move(t);
  }
  for (int s2 = 0; s2 < 2; ++s2) {
    Matrix t(r, b);
    for (size_t c = 0; c < svd.rank(); ++c) {
      for (size_t j = 0; j < b; ++j) {
        t(c, j) = svd.singular_values[c] * std::conj(svd.v(s2 * b + j, c));
      }
    }
    tensors_[site + 1][s2] = std::move(t);
  }
  return Status::OK();
}

void MpsState::SwapAdjacent(int site) {
  Status s = Apply2QAdjacent(site, GateMatrix(GateType::kSwap, {}));
  QDB_CHECK(s.ok()) << s.ToString();
}

Status MpsState::ApplyGate(const Gate& gate, const DVector& angles) {
  if (gate.type == GateType::kI) return Status::OK();
  if (gate.qubits.size() == 1) {
    Apply1Q(gate.qubits[0], GateMatrix(gate.type, angles));
    return Status::OK();
  }
  if (gate.qubits.size() != 2) {
    return Status::Unimplemented(
        StrCat("MPS simulator does not support ", gate.qubits.size(),
               "-qubit gate '", GateTypeName(gate.type), "'"));
  }
  Matrix u = GateMatrix(gate.type, angles);
  int high = gate.qubits[0];
  int low = gate.qubits[1];
  if (high > low) {
    // Reverse the operand order by conjugating with SWAP: the routed pair
    // will be (low, high) with `low` as the high matrix bit.
    const Matrix swap = GateMatrix(GateType::kSwap, {});
    u = swap * u * swap;
    std::swap(high, low);
  }
  // Route `low` leftward until adjacent to `high`, apply, route back.
  int pos = low;
  while (pos > high + 1) {
    SwapAdjacent(pos - 1);
    --pos;
  }
  QDB_RETURN_IF_ERROR(Apply2QAdjacent(high, u));
  while (pos < low) {
    SwapAdjacent(pos);
    ++pos;
  }
  return Status::OK();
}

Complex MpsState::Amplitude(uint64_t index) const {
  const int n = num_qubits();
  QDB_CHECK_LT(index, n >= 64 ? ~uint64_t{0} : (uint64_t{1} << n));
  // Row vector contraction left to right.
  Matrix v(1, 1);
  v(0, 0) = Complex(1.0, 0.0);
  for (int k = 0; k < n; ++k) {
    const int bit = (index >> (n - 1 - k)) & 1;
    v = v * tensors_[k][bit];
  }
  return v(0, 0);
}

Result<CVector> MpsState::ToAmplitudes() const {
  if (num_qubits() > 20) {
    return Status::InvalidArgument(
        "ToAmplitudes limited to 20 qubits; use Amplitude()");
  }
  const uint64_t dim = uint64_t{1} << num_qubits();
  CVector out(dim);
  for (uint64_t i = 0; i < dim; ++i) out[i] = Amplitude(i);
  return out;
}

double MpsState::NormSquared() const {
  // E_k = Σ_s A_k[s]† ⊗-contracted transfer; track as a χ×χ matrix.
  Matrix env(1, 1);
  env(0, 0) = Complex(1.0, 0.0);
  for (const auto& site : tensors_) {
    const size_t r = site[0].cols();
    Matrix next(r, r);
    for (int s = 0; s < 2; ++s) {
      next += site[s].Adjoint() * env * site[s];
    }
    env = std::move(next);
  }
  return env(0, 0).real();
}

Result<MpsState> MpsSimulator::Run(const Circuit& circuit,
                                   const DVector& params) const {
  if (static_cast<int>(params.size()) < circuit.num_parameters()) {
    return Status::InvalidArgument("too few parameters bound");
  }
  MpsState state(circuit.num_qubits(), options_.max_bond, options_.svd_tol);
  for (size_t i = 0; i < circuit.gates().size(); ++i) {
    DVector angles = circuit.EvaluateAngles(i, params);
    QDB_RETURN_IF_ERROR(state.ApplyGate(circuit.gates()[i], angles));
  }
  return state;
}

}  // namespace qdb
