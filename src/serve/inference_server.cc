#include "serve/inference_server.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "common/rng.h"
#include "common/strings.h"
#include "fault/fault_injector.h"
#include "obs/labels.h"
#include "obs/obs.h"
#include "serve/model_artifact.h"
#include "store/async_loader.h"

namespace qdb {
namespace serve {

namespace {

/// serve.* metric handles, resolved once. The labeled families sit beside
/// the unlabeled aggregates: aggregates stay cheap and name-stable for
/// existing dashboards, families carry the per-model / per-shard /
/// per-tenant / per-outcome cut.
struct ServeMetrics {
  obs::Gauge* queue_depth = obs::GetGauge("serve.queue_depth");
  obs::Counter* requests = obs::GetCounter("serve.requests");
  obs::Counter* rejected = obs::GetCounter("serve.rejected");
  obs::Counter* quota_rejected = obs::GetCounter("serve.quota_rejected");
  obs::Counter* expired = obs::GetCounter("serve.deadline_expired");
  obs::Counter* failed = obs::GetCounter("serve.failed");
  obs::Counter* retries = obs::GetCounter("serve.retries");
  obs::Counter* cache_hits = obs::GetCounter("serve.cache_hits");
  obs::Counter* cache_misses = obs::GetCounter("serve.cache_misses");
  obs::Counter* stale_hits = obs::GetCounter("serve.degraded.stale_hits");
  obs::Counter* window_shrinks =
      obs::GetCounter("serve.degraded.batch_window_shrinks");
  obs::Counter* batches = obs::GetCounter("serve.batches");
  obs::Counter* steals = obs::GetCounter("serve.batch_steals");
  obs::Counter* fifo_violations = obs::GetCounter("serve.fifo_violations");
  obs::Histogram* batch_size = obs::GetHistogram(
      "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  obs::Histogram* queue_wait_us = obs::GetHistogram("serve.queue_wait_us");
  obs::Histogram* dispatch_attempts = obs::GetHistogram(
      "serve.dispatch.attempts", {1, 2, 3, 4, 6, 8, 12, 16});
  obs::CounterFamily* requests_by =
      obs::MetricsRegistry::Global().GetCounterFamily(
          "serve.requests", {"model", "kind", "outcome"});
  obs::HistogramFamily* latency_by =
      obs::MetricsRegistry::Global().GetHistogramFamily(
          "serve.latency_us", {"model", "outcome"});
  obs::GaugeFamily* shard_depth_by =
      obs::MetricsRegistry::Global().GetGaugeFamily("serve.shard.depth",
                                                    {"shard"});
  obs::CounterFamily* quota_rejected_by =
      obs::MetricsRegistry::Global().GetCounterFamily("serve.quota.rejected",
                                                      {"tenant"});
  obs::GaugeFamily* quota_tokens_by =
      obs::MetricsRegistry::Global().GetGaugeFamily("serve.quota.tokens",
                                                    {"tenant"});
};

ServeMetrics& Metrics() {
  static ServeMetrics metrics;
  return metrics;
}

/// Trace-event name for a terminal outcome — events store string-literal
/// pointers, so the label is mapped back to a literal here.
const char* OutcomeEventName(const char* outcome) {
  if (std::strcmp(outcome, "ok") == 0) return "serve.outcome.ok";
  if (std::strcmp(outcome, "cache_hit") == 0) return "serve.outcome.cache_hit";
  if (std::strcmp(outcome, "degraded") == 0) return "serve.outcome.degraded";
  if (std::strcmp(outcome, "rejected") == 0) return "serve.outcome.rejected";
  if (std::strcmp(outcome, "quota_rejected") == 0) {
    return "serve.outcome.quota_rejected";
  }
  if (std::strcmp(outcome, "expired") == 0) return "serve.outcome.expired";
  if (std::strcmp(outcome, "failed") == 0) return "serve.outcome.failed";
  return "serve.outcome.other";
}

std::future<Result<InferenceResponse>> ImmediateResult(
    Result<InferenceResponse> result) {
  std::promise<Result<InferenceResponse>> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

long MicrosBetween(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

InferenceServer::InferenceServer(ModelRegistry& registry,
                                 const ServerOptions& options)
    : registry_(registry),
      options_(options),
      result_cache_(options.result_cache_capacity) {
  const int num_shards = std::max(options_.num_shards, 1);
  shards_.reserve(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  if (options_.enable_quotas) {
    quotas_ = std::make_unique<TenantQuotaManager>(options_.quota);
  }
  if (options_.enable_slo) {
    slo_ = std::make_unique<obs::SloTracker>(options_.slo,
                                             options_.slo_windows_s);
  }
}

size_t InferenceServer::ShardFor(const std::string& model, int version,
                                 size_t num_shards) {
  if (num_shards <= 1) return 0;
  // Same key construction as the breaker map and the result cache: one
  // (model, version) stream hashes to one shard, so its requests always
  // share a queue and stay coalescible.
  return static_cast<size_t>(Fnv1a64(StrCat(model, ":", version))) %
         num_shards;
}

void InferenceServer::PublishDepth(size_t shard_index) const {
  const Shard& shard = *shards_[shard_index];
  Metrics()
      .shard_depth_by->With(StrCat(shard_index))
      ->Set(static_cast<double>(shard.depth.load(std::memory_order_relaxed)));
  size_t total = 0;
  for (const auto& s : shards_) {
    total += s->depth.load(std::memory_order_relaxed);
  }
  Metrics().queue_depth->Set(static_cast<double>(total));
}

void InferenceServer::RecordTerminal(const char* outcome,
                                     const std::string& model,
                                     RequestKind kind,
                                     const obs::RequestContext& ctx,
                                     int64_t submit_trace_us, long latency_us,
                                     bool ok) {
  ServeMetrics& metrics = Metrics();
  metrics.requests_by->With(model, RequestKindName(kind), outcome)
      ->Increment();
  metrics.latency_by->With(model, outcome)
      ->Observe(static_cast<double>(latency_us));
  if (slo_ != nullptr) {
    slo_->Record(model, latency_us, ok, obs::TraceNowMicros());
  }
  if (ctx.valid()) {
    const int64_t now_us = obs::TraceNowMicros();
    // Instant outcome marker under the root, then the root span itself —
    // closed here because resolution, not Submit's return, ends a request.
    obs::RecordSpan(OutcomeEventName(outcome), "serve", now_us, 0,
                    ctx.trace_id, obs::NewSpanId(), ctx.span_id);
    obs::RecordSpan("serve.request", "serve", submit_trace_us,
                    now_us - submit_trace_us, ctx.trace_id, ctx.span_id, 0);
  }
}

InferenceServer::~InferenceServer() { Shutdown(); }

Status InferenceServer::Start() {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (shut_down_ || stopping_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("server has been shut down");
  }
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  started_ = true;
  const int n = options_.num_dispatchers > 0 ? options_.num_dispatchers : 1;
  const size_t num_shards = shards_.size();
  dispatchers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Dispatcher i camps on shard i % num_shards; shards beyond the
    // dispatcher count are served by work-stealing.
    dispatchers_.emplace_back(
        [this, home = static_cast<size_t>(i) % num_shards] {
          DispatcherLoop(home);
        });
  }
  return Status::OK();
}

void InferenceServer::Shutdown() {
  std::vector<std::thread> dispatchers;
  std::thread warmup;
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (shut_down_) return;
    stopping_.store(true, std::memory_order_relaxed);
    dispatchers.swap(dispatchers_);
    warmup.swap(warmup_thread_);
  }
  // The warmup loop checks stopping_ between prefetches and every accepted
  // loader job settles its future, so this join is bounded by one job.
  if (warmup.joinable()) warmup.join();
  // Close admission shard by shard. Writing `accepting` under each shard's
  // lock keeps Submit's check-and-push atomic against the flag flip, and
  // notifying under the lock guarantees no dispatcher blocks on a cv wait
  // it entered just before stopping_ was visible.
  for (size_t i = 0; i < shards_.size(); ++i) {
    {
      std::lock_guard<std::mutex> lock(shards_[i]->mu);
      shards_[i]->accepting = false;
    }
    shards_[i]->cv.notify_all();
  }
  shutdown_cv_.notify_all();  // Cut retry backoff sleeps short.
  for (auto& t : dispatchers) t.join();
  // Anything still queued was admitted but never started (or a dispatcher
  // never existed): fail it rather than leaving futures hanging.
  std::deque<Pending> orphans;
  for (size_t i = 0; i < shards_.size(); ++i) {
    std::lock_guard<std::mutex> lock(shards_[i]->mu);
    while (!shards_[i]->queue.empty()) {
      orphans.push_back(std::move(shards_[i]->queue.front()));
      shards_[i]->queue.pop_front();
    }
    shards_[i]->depth.store(0, std::memory_order_relaxed);
  }
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    shut_down_ = true;
  }
  if (!orphans.empty()) {
    Metrics().rejected->Increment(static_cast<long>(orphans.size()));
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.rejected += static_cast<long>(orphans.size());
  }
  for (auto& pending : orphans) {
    RecordTerminal("rejected", pending.servable->name(), pending.kind,
                   pending.ctx, pending.submit_trace_us,
                   MicrosBetween(pending.admitted, Clock::now()), false);
    pending.promise.set_value(
        Status::Unavailable("server shut down before the request executed"));
  }
  for (size_t i = 0; i < shards_.size(); ++i) PublishDepth(i);
}

Status InferenceServer::StartWarmup(store::AsyncModelLoader& loader) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (shut_down_ || stopping_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("server has been shut down");
  }
  if (!started_) {
    return Status::FailedPrecondition("start the server before warming up");
  }
  if (warmup_thread_.joinable()) {
    return Status::FailedPrecondition("warmup is already running");
  }
  const std::vector<std::pair<std::string, int>> warm =
      registry_.RecoveredWarmSet();
  if (warm.empty()) return Status::OK();
  const double fraction =
      std::min(1.0, std::max(0.0, options_.warm_ready_fraction));
  const size_t needed = static_cast<size_t>(
      std::ceil(fraction * static_cast<double>(warm.size())));
  warm_target_.store(warm.size(), std::memory_order_relaxed);
  warm_ready_.store(0, std::memory_order_relaxed);
  warm_failed_.store(0, std::memory_order_relaxed);
  warming_.store(true, std::memory_order_relaxed);
  warm_admitting_.store(needed == 0, std::memory_order_relaxed);
  warmup_thread_ = std::thread([this, &loader, warm, needed] {
    for (const auto& [name, version] : warm) {
      if (stopping_.load(std::memory_order_relaxed)) break;
      // Warm() absorbs the cold-start reload on the loader's worker; the
      // .get() here only paces the warmup loop, it blocks no request.
      Result<store::AsyncModelLoader::Servable> resident =
          loader.Warm(name, version).get();
      if (resident.ok()) {
        warm_ready_.fetch_add(1, std::memory_order_relaxed);
      } else {
        warm_failed_.fetch_add(1, std::memory_order_relaxed);
      }
      if (warm_ready_.load(std::memory_order_relaxed) >= needed) {
        warm_admitting_.store(true, std::memory_order_relaxed);
      }
    }
    // Done (or aborted by shutdown): open admission unconditionally.
    // Models that failed to warm will cold-start on their first request.
    warm_admitting_.store(true, std::memory_order_relaxed);
    warming_.store(false, std::memory_order_relaxed);
  });
  return Status::OK();
}

InferenceServer::WarmupStatus InferenceServer::warmup_status() const {
  WarmupStatus status;
  status.active = warming_.load(std::memory_order_relaxed);
  status.admitting = warm_admitting_.load(std::memory_order_relaxed);
  status.target = warm_target_.load(std::memory_order_relaxed);
  status.ready = warm_ready_.load(std::memory_order_relaxed);
  status.failed = warm_failed_.load(std::memory_order_relaxed);
  return status;
}

std::future<Result<InferenceResponse>> InferenceServer::Submit(
    InferenceRequest request) {
  // Mint the request's trace identity before any span opens, and install it
  // as this thread's ambient context: every span below — admission, cache,
  // breaker, and (via the queue) batch execution — joins this trace.
  obs::RequestContext ctx;
  int64_t submit_trace_us = 0;
  if (obs::TracingEnabled()) {
    ctx = obs::RequestContext::NewRoot();
    submit_trace_us = obs::TraceNowMicros();
  }
  obs::ContextGuard context_guard(ctx);
  QDB_TRACE_SCOPE("InferenceServer::Submit", "serve");
  const Clock::time_point submit_time = Clock::now();
  Metrics().requests->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }
  const auto elapsed_us = [submit_time] {
    return MicrosBetween(submit_time, Clock::now());
  };

  // Warm-restart gate: while the warm set is still below the readiness
  // fraction, every request sheds — serving a half-warmed registry would
  // cold-start the hottest models on the request path, exactly what the
  // warmup exists to prevent. Checked before quotas so a warming server
  // does not burn tenants' tokens on requests it cannot serve.
  if (warming_.load(std::memory_order_relaxed) &&
      !warm_admitting_.load(std::memory_order_relaxed)) {
    Metrics().rejected->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
    }
    RecordTerminal("rejected", request.model, request.kind, ctx,
                   submit_trace_us, elapsed_us(), false);
    return ImmediateResult(Status::Unavailable(
        StrCat("server is warming up: ",
               warm_ready_.load(std::memory_order_relaxed), " of ",
               warm_target_.load(std::memory_order_relaxed),
               " warm-set models resident; retry shortly")));
  }

  // Tenant quota is the first admission rung — before the registry, the
  // cache, and the breakers. An over-budget tenant therefore cannot trip a
  // model's breaker, consume a half-open probe slot, or occupy shard
  // capacity; it is shed at the door with a retryable-after-refill code.
  // The token is spent even if a later rung rejects the request: quotas
  // meter admission attempts, not successes.
  if (quotas_ != nullptr && !quotas_->TryAcquire(request.tenant)) {
    Metrics().quota_rejected->Increment();
    Metrics().quota_rejected_by->With(request.tenant)->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.quota_rejected;
    }
    RecordTerminal("quota_rejected", request.model, request.kind, ctx,
                   submit_trace_us, elapsed_us(), false);
    return ImmediateResult(Status::ResourceExhausted(
        StrCat("tenant '", request.tenant,
               "' is out of quota tokens; retry after refill")));
  }

  // Resolve the model next: unknown names and malformed inputs should
  // fail loudly, not occupy queue space.
  Result<std::shared_ptr<const ServableModel>> servable =
      registry_.Lookup(request.model, request.version);
  if (!servable.ok()) {
    Metrics().rejected->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
    }
    RecordTerminal("rejected", request.model, request.kind, ctx,
                   submit_trace_us, elapsed_us(), false);
    return ImmediateResult(servable.status());
  }
  if (Status valid = servable.value()->ValidateInput(request.kind,
                                                     request.input);
      !valid.ok()) {
    Metrics().rejected->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
    }
    RecordTerminal("rejected", request.model, request.kind, ctx,
                   submit_trace_us, elapsed_us(), false);
    return ImmediateResult(std::move(valid));
  }

  // Fresh cache hits resolve before the breaker sees the request: a cached
  // answer needs no execution, so it must neither consume a half-open
  // probe slot nor be shed while the model is open.
  std::string cache_key;
  if (options_.result_cache_capacity > 0) {
    cache_key = ResultCache::MakeKey(servable.value()->name(),
                                     servable.value()->version(),
                                     request.kind, request.input);
    if (std::optional<InferenceValue> hit =
            result_cache_.Lookup(cache_key, options_.result_cache_ttl_us)) {
      Metrics().cache_hits->Increment();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.cache_hits;
      }
      InferenceResponse response;
      response.result = std::move(*hit);
      response.model_version = servable.value()->version();
      response.from_cache = true;
      response.trace.trace_id = ctx.trace_id;
      response.trace.total_us = elapsed_us();
      RecordTerminal("cache_hit", request.model, request.kind, ctx,
                     submit_trace_us, response.trace.total_us, true);
      return ImmediateResult(std::move(response));
    }
    Metrics().cache_misses->Increment();
  }

  Pending pending;
  pending.servable = std::move(servable).value();
  pending.kind = request.kind;
  pending.input = std::move(request.input);
  pending.cache_key = std::move(cache_key);
  pending.admitted = submit_time;
  pending.deadline =
      request.timeout_us > 0
          ? pending.admitted + std::chrono::microseconds(request.timeout_us)
          : Clock::time_point::max();
  pending.ctx = ctx;
  pending.submit_trace_us = submit_trace_us;
  std::future<Result<InferenceResponse>> future =
      pending.promise.get_future();

  // Breaker-open load shedding, with the first rung of the degradation
  // ladder: a slightly stale cached answer beats an error while the model
  // recovers.
  if (options_.enable_breaker &&
      !BreakerFor(*pending.servable)->Allow()) {
    if (TryServeStale(pending)) return future;
    Metrics().rejected->Increment();
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      ++stats_.rejected;
    }
    RecordTerminal("rejected", pending.servable->name(), pending.kind, ctx,
                   submit_trace_us, elapsed_us(), false);
    pending.promise.set_value(Status::Unavailable(
        StrCat("circuit breaker open for model '", pending.servable->name(),
               "' v", pending.servable->version(),
               "; shedding load while it recovers")));
    return future;
  }

  // Route to the (model, version) home shard. The resolved version is used
  // (not the request's, which may be -1 = latest) so aliases of the same
  // servable coalesce on the same queue.
  const size_t shard_index =
      ShardFor(pending.servable->name(), pending.servable->version(),
               shards_.size());
  Shard& shard = *shards_[shard_index];
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (!shard.accepting) {
      Metrics().rejected->Increment();
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.rejected;
      }
      RecordTerminal("rejected", pending.servable->name(), pending.kind, ctx,
                     submit_trace_us, elapsed_us(), false);
      pending.promise.set_value(
          Status::Unavailable("server is shutting down"));
      return future;
    }
    if (shard.queue.size() >= per_shard_capacity()) {
      // Queue-pressure degradation: prefer a stale cached answer to a
      // hard rejection when this shard's backlog is already saturated.
      if (TryServeStale(pending)) return future;
      Metrics().rejected->Increment();
      {
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.rejected;
      }
      RecordTerminal("rejected", pending.servable->name(), pending.kind, ctx,
                     submit_trace_us, elapsed_us(), false);
      pending.promise.set_value(Status::Unavailable(
          StrCat("request queue shard ", shard_index, " is full (",
                 per_shard_capacity(), " pending); retry with backoff")));
      return future;
    }
    pending.seq = ++shard.enqueue_seq;
    shard.queue.push_back(std::move(pending));
    shard.depth.store(shard.queue.size(), std::memory_order_relaxed);
  }
  PublishDepth(shard_index);
  shard.cv.notify_one();
  return future;
}

size_t InferenceServer::queue_depth() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->depth.load(std::memory_order_relaxed);
  }
  return total;
}

size_t InferenceServer::max_shard_depth() const {
  size_t deepest = 0;
  for (const auto& shard : shards_) {
    deepest =
        std::max(deepest, shard->depth.load(std::memory_order_relaxed));
  }
  return deepest;
}

std::vector<size_t> InferenceServer::shard_depths() const {
  std::vector<size_t> depths;
  depths.reserve(shards_.size());
  for (const auto& shard : shards_) {
    depths.push_back(shard->depth.load(std::memory_order_relaxed));
  }
  return depths;
}

InferenceServer::Stats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

const fault::CircuitBreaker* InferenceServer::breaker(
    const std::string& model, int version) const {
  std::lock_guard<std::mutex> lock(breakers_mu_);
  auto it = breakers_.find(StrCat(model, ":", version));
  return it == breakers_.end() ? nullptr : it->second.get();
}

std::string InferenceServer::Statusz() const {
  std::string out = "=== qdb inference server ===\n";
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    out += StrCat("state: started=", started_ ? 1 : 0, " accepting=",
                  (started_ && !stopping_.load(std::memory_order_relaxed) &&
                   !shut_down_)
                      ? 1
                      : 0,
                  " stopping=",
                  stopping_.load(std::memory_order_relaxed) ? 1 : 0,
                  " shut_down=", shut_down_ ? 1 : 0, "\n");
    out += StrCat("queue: ", queue_depth(), " / ", options_.queue_capacity,
                  " (shards=", shards_.size(),
                  " dispatchers=", dispatchers_.size(),
                  " max_shard_depth=", max_shard_depth(), ")\n");
  }
  for (size_t i = 0; i < shards_.size(); ++i) {
    out += StrCat("  shard ", i, ": ",
                  shards_[i]->depth.load(std::memory_order_relaxed), " / ",
                  per_shard_capacity(), "\n");
  }
  if (const WarmupStatus warm = warmup_status(); warm.target > 0) {
    out += StrCat("warmup: ", warm.ready, "/", warm.target,
                  " resident failed=", warm.failed,
                  " admitting=", warm.admitting ? 1 : 0,
                  " active=", warm.active ? 1 : 0, "\n");
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    out += StrCat("requests: submitted=", stats_.submitted,
                  " completed=", stats_.completed,
                  " cache_hits=", stats_.cache_hits,
                  " degraded=", stats_.degraded,
                  " rejected=", stats_.rejected,
                  " quota_rejected=", stats_.quota_rejected,
                  " expired=", stats_.expired, " failed=", stats_.failed,
                  " batches=", stats_.batches, " steals=", stats_.steals,
                  " fifo_violations=", stats_.fifo_violations, "\n");
  }
  if (quotas_ != nullptr) {
    const std::vector<TenantQuotaManager::TenantState> tenants =
        quotas_->Snapshot();
    out += StrCat("tenants: ", tenants.size(), "\n");
    for (const auto& t : tenants) {
      if (t.metered) {
        // Publishing the token gauge here (not on the Submit hot path)
        // mirrors how SLO burn gauges refresh on Report.
        Metrics().quota_tokens_by->With(t.tenant)->Set(t.tokens);
        out += StrCat("  ", t.tenant, ": tokens=", t.tokens, "/", t.burst,
                      " rate=", t.rate_per_s, "/s admitted=", t.admitted,
                      " rejected=", t.rejected, "\n");
      } else {
        out += StrCat("  ", t.tenant, ": unmetered admitted=", t.admitted,
                      "\n");
      }
    }
  }
  const ResultCache::Stats cache = result_cache_.stats();
  out += StrCat("cache: size=", cache.size, "/", cache.capacity,
                " hits=", cache.hits, " misses=", cache.misses,
                " stale_hits=", cache.stale_hits,
                " evictions=", cache.evictions, "\n");
  {
    // Storage tier: the registry's byte budget and residency counters,
    // plus cold-start latency quantiles from the reload path.
    const StoreStatus store = registry_.store_status();
    out += StrCat("store: budget_bytes=", store.budget_bytes,
                  store.budget_bytes == 0 ? " (unlimited)" : "",
                  " resident_bytes=", store.resident_bytes,
                  " models=", store.resident_models, "/",
                  store.registered_models,
                  " evicted=", store.evicted_models,
                  " slices=", store.num_slices,
                  " evictions=", store.evictions,
                  " reloads=", store.reloads, "\n");
    const obs::Histogram* cold = obs::GetHistogram("store.cold_start_us");
    if (cold->TotalCount() > 0) {
      out += StrCat("  cold_start_us: count=", cold->TotalCount(),
                    " p50=", cold->ApproxQuantile(0.5),
                    " p99=", cold->ApproxQuantile(0.99),
                    cold->OverflowCount() > 0 ? " (clamped)" : "", "\n");
    }
  }
  {
    std::lock_guard<std::mutex> lock(breakers_mu_);
    out += StrCat("breakers: ", breakers_.size(), "\n");
    for (const auto& [name, breaker] : breakers_) {
      const fault::CircuitBreaker::Stats bs = breaker->stats();
      out += StrCat("  ", name, ": ", BreakerStateName(breaker->state()),
                    " (opened=", bs.opened, " shed=", bs.shed,
                    " allowed=", bs.allowed, ")\n");
    }
  }
  {
    // Armed fault points with per-point trigger counts: a chaos run is
    // auditable from the same page as everything it perturbs — "the system
    // survived" means nothing without "and the faults actually fired".
    const std::vector<fault::FaultInjector::ArmedPointStatus> armed =
        fault::FaultInjector::Global().SnapshotArmed();
    out += StrCat("faults: ", armed.size(), " armed\n");
    for (const auto& point : armed) {
      out += StrCat("  ", point.point,
                    ": kind=", fault::FaultKindName(point.spec.kind),
                    " p=", point.spec.probability,
                    " evaluations=", point.evaluations,
                    " fired=", point.fired);
      if (!point.spec.target.empty()) {
        out += StrCat(" target=", point.spec.target);
      }
      out += "\n";
    }
  }
  if (slo_ != nullptr) {
    out += "slo:\n";
    for (const obs::SloModelStatus& model :
         slo_->Report(obs::TraceNowMicros())) {
      out += StrCat("  ", model.model,
                    " (availability=", model.objective.availability,
                    model.breached ? ") BREACHED\n" : ") ok\n");
      for (const obs::SloWindowStatus& w : model.windows) {
        out += StrCat("    ", w.window_s, "s: total=", w.total,
                      " error_rate=", w.error_rate,
                      " burn_rate=", w.burn_rate, "\n");
      }
    }
  }
  // Slowest recent request traces, from the ring buffer: grep these ids in
  // the Chrome-trace export to see the full span tree.
  std::vector<obs::TraceEvent> roots;
  for (const obs::TraceEvent& e : obs::TraceLog::Global().Snapshot()) {
    if (e.name != nullptr && std::strcmp(e.name, "serve.request") == 0) {
      roots.push_back(e);
    }
  }
  std::sort(roots.begin(), roots.end(),
            [](const obs::TraceEvent& a, const obs::TraceEvent& b) {
              return a.duration_us > b.duration_us;
            });
  if (!roots.empty()) {
    out += "slowest recent requests:\n";
    for (size_t i = 0; i < roots.size() && i < 5; ++i) {
      out += StrFormat("  trace=%016llx %lldus\n",
                       static_cast<unsigned long long>(roots[i].trace_id),
                       static_cast<long long>(roots[i].duration_us));
    }
  }
  // Latency quantiles; a "(clamped: ...)" marker means samples overflowed
  // the histogram's last bound, so high quantiles are lower bounds, not
  // estimates.
  out += "latency:\n";
  for (const char* name : {"serve.queue_wait_us", "serve.batch_size"}) {
    const obs::Histogram* h = obs::GetHistogram(name);
    if (h == nullptr || h->TotalCount() == 0) continue;
    out += StrCat("  ", name, ": p50=", h->ApproxQuantile(0.50),
                  " p90=", h->ApproxQuantile(0.90),
                  " p99=", h->ApproxQuantile(0.99));
    if (h->OverflowCount() > 0) {
      out += StrCat(" (clamped: ", h->OverflowCount(),
                    " samples above last bound ", h->bounds().back(), ")");
    }
    out += "\n";
  }
  return out;
}

Status InferenceServer::Healthz() const {
  {
    std::lock_guard<std::mutex> lock(state_mu_);
    if (shut_down_ || stopping_.load(std::memory_order_relaxed)) {
      return Status::Unavailable("server is shut down or draining");
    }
    if (!started_) {
      return Status::FailedPrecondition("server not started");
    }
  }
  // The warm-restart state is distinct from both "down" and "degraded":
  // the server is healthy and working, but intentionally not admitting
  // until the recovered warm set is resident. Orchestrators should treat
  // it as "starting", not "failing".
  if (warming_.load(std::memory_order_relaxed) &&
      !warm_admitting_.load(std::memory_order_relaxed)) {
    return Status::Unavailable(
        StrCat("warming: ", warm_ready_.load(std::memory_order_relaxed),
               " of ", warm_target_.load(std::memory_order_relaxed),
               " warm-set models resident"));
  }
  // Health keys off the *deepest* shard, not the total: one saturated shard
  // rejects its models' requests even while the aggregate depth — an
  // average across healthy shards — still looks fine.
  const size_t cap = per_shard_capacity();
  for (size_t i = 0; i < shards_.size(); ++i) {
    if (shards_[i]->depth.load(std::memory_order_relaxed) >= cap) {
      return Status::Unavailable(StrCat("queue shard ", i, " at capacity (",
                                        cap, " of ",
                                        options_.queue_capacity,
                                        " total)"));
    }
  }
  if (slo_ != nullptr) {
    for (const obs::SloModelStatus& model :
         slo_->Report(obs::TraceNowMicros())) {
      if (model.breached) {
        return Status::Unavailable(
            StrCat("SLO breached for model '", model.model,
                   "': error budget burning in every window"));
      }
    }
  }
  return Status::OK();
}

fault::CircuitBreaker* InferenceServer::BreakerFor(
    const ServableModel& servable) {
  const std::string key = StrCat(servable.name(), ":", servable.version());
  std::lock_guard<std::mutex> lock(breakers_mu_);
  std::unique_ptr<fault::CircuitBreaker>& slot = breakers_[key];
  if (slot == nullptr) {
    slot = std::make_unique<fault::CircuitBreaker>(key, options_.breaker);
  }
  return slot.get();
}

bool InferenceServer::TryServeStale(Pending& pending) {
  if (pending.cache_key.empty()) return false;
  // The degradation decision itself is a span: when a request resolves
  // stale, its trace shows *why* (this rung ran) and *when*.
  obs::ContextGuard context_guard(pending.ctx);
  QDB_TRACE_SCOPE("serve.degraded.try_stale", "serve");
  std::optional<InferenceValue> hit =
      result_cache_.LookupStale(pending.cache_key, options_.max_stale_age_us);
  if (!hit.has_value()) return false;
  Metrics().stale_hits->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.degraded;
  }
  const long latency_us = MicrosBetween(pending.admitted, Clock::now());
  RecordTerminal("degraded", pending.servable->name(), pending.kind,
                 pending.ctx, pending.submit_trace_us, latency_us, true);
  InferenceResponse response;
  response.result = std::move(*hit);
  response.model_version = pending.servable->version();
  response.from_cache = true;
  response.degraded = true;
  response.trace.trace_id = pending.ctx.trace_id;
  response.trace.total_us = latency_us;
  pending.promise.set_value(std::move(response));
  return true;
}

void InferenceServer::DispatcherLoop(size_t home_shard) {
  while (true) {
    std::vector<Pending> batch = NextBatch(home_shard);
    if (batch.empty()) return;  // Drained and stopping.
    ExecuteBatch(std::move(batch));
  }
}

std::vector<InferenceServer::Pending> InferenceServer::PopBatchLocked(
    size_t shard_index, std::unique_lock<std::mutex>& lock,
    bool allow_window) {
  Shard& shard = *shards_[shard_index];
  // Pick the first leader whose stream is not mid-window on another
  // dispatcher: popping a later same-stream request while its earlier
  // siblings sit in an open batch would dispatch the stream out of order.
  auto leader_it = shard.queue.begin();
  for (; leader_it != shard.queue.end(); ++leader_it) {
    if (shard.open_streams.count(
            {static_cast<const void*>(leader_it->servable.get()),
             static_cast<int>(leader_it->kind)}) == 0) {
      break;
    }
  }
  if (leader_it == shard.queue.end()) return {};
  std::vector<Pending> batch;
  batch.push_back(std::move(*leader_it));
  shard.queue.erase(leader_it);
  const ServableModel* leader = batch.front().servable.get();
  const RequestKind kind = batch.front().kind;
  const std::pair<const void*, int> stream_key = {
      static_cast<const void*>(leader), static_cast<int>(kind)};
  shard.open_streams.insert(stream_key);

  const auto coalesce_pass = [&] {
    for (auto it = shard.queue.begin();
         it != shard.queue.end() && batch.size() < options_.max_batch_size;) {
      if (it->servable.get() == leader && it->kind == kind) {
        batch.push_back(std::move(*it));
        it = shard.queue.erase(it);
      } else {
        ++it;
      }
    }
  };

  if (allow_window) {
    // Under shard pressure, shrink the coalescing window: clearing backlog
    // fast matters more than filling each batch to the brim.
    long wait_us = options_.max_wait_us;
    if (options_.pressure_watermark > 0 &&
        static_cast<double>(shard.queue.size()) >=
            options_.pressure_watermark *
                static_cast<double>(per_shard_capacity())) {
      wait_us /= 4;
      Metrics().window_shrinks->Increment();
    }
    const Clock::time_point close =
        Clock::now() + std::chrono::microseconds(wait_us);

    // Coalesce until the batch is full or the window closes. Each pass
    // pulls every compatible request currently queued; between passes we
    // sleep on the shard cv so new submissions extend the batch without
    // busy-waiting.
    while (batch.size() < options_.max_batch_size) {
      coalesce_pass();
      if (batch.size() >= options_.max_batch_size ||
          stopping_.load(std::memory_order_relaxed)) {
        break;
      }
      if (shard.cv.wait_until(lock, close) == std::cv_status::timeout) {
        // Window closed; take any stragglers that arrived with the timeout.
        coalesce_pass();
        break;
      }
    }
  } else {
    // Stolen (or drain-time) batches close immediately: a thief only
    // exists because this shard is backlogged while it sat idle, so
    // clearing queued work beats waiting for stragglers.
    coalesce_pass();
  }

  // The batch is final: the stream closes (later arrivals are again fair
  // game for any popper — they carry higher seqs, so dispatch order holds).
  shard.open_streams.erase(stream_key);

  // FIFO dispatch audit: within one (servable, kind) stream, batch members
  // must leave the shard in admission order. Coalescing scans front to
  // back, streams never migrate shards, and open streams are skipped by
  // concurrent poppers, so seq numbers popped here must be strictly
  // increasing per stream — home pop or steal alike.
  uint64_t& last = shard.last_dispatched[stream_key];
  long violations = 0;
  for (const Pending& member : batch) {
    if (member.seq <= last) {
      ++violations;
    } else {
      last = member.seq;
    }
  }
  if (violations > 0) {
    Metrics().fifo_violations->Increment(violations);
    std::lock_guard<std::mutex> stats_lock(stats_mu_);
    stats_.fifo_violations += violations;
  }

  shard.depth.store(shard.queue.size(), std::memory_order_relaxed);
  if (!shard.queue.empty()) shard.cv.notify_one();  // Work left for peers.
  return batch;
}

std::vector<InferenceServer::Pending> InferenceServer::NextBatch(
    size_t home_shard) {
  Shard& home = *shards_[home_shard];
  const long poll_us = options_.steal_poll_us > 0 ? options_.steal_poll_us
                                                  : options_.max_wait_us;
  // Fault point "serve.queue_wait" injects at most one spurious wakeup per
  // NextBatch call (bounded so an always-on fault cannot livelock): the
  // outer loop must tolerate waking with nothing to do.
  bool woke_spuriously = false;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(home.mu);
      const auto wake = [&] {
        if (stopping_.load(std::memory_order_relaxed) ||
            !home.queue.empty()) {
          return true;
        }
        if (!woke_spuriously && fault::SpuriousWake("serve.queue_wait")) {
          woke_spuriously = true;
          return true;
        }
        return false;
      };
      if (shards_.size() == 1) {
        // Nothing to steal from: idle exactly like the pre-sharding server
        // (indefinite wait, no periodic timeout churn — wakeups that cost
        // real CPU when dispatchers share cores with clients).
        home.cv.wait(lock, wake);
      } else {
        home.cv.wait_for(lock, std::chrono::microseconds(poll_us), wake);
      }
      if (!home.queue.empty()) {
        // Home work coalesces with the normal window: the dispatcher owns
        // this shard and can afford to wait for stragglers.
        std::vector<Pending> batch = PopBatchLocked(
            home_shard, lock, /*allow_window=*/true);
        if (!batch.empty()) {
          lock.unlock();
          PublishDepth(home_shard);
          return batch;
        }
        // Every queued stream is mid-window on a peer. The wait predicate
        // above is already true (queue non-empty), so looping would spin
        // on this lock until the peer's window closes — instead sleep
        // until that batch finalizes (it notifies when work remains) or
        // the poll interval elapses, then re-evaluate.
        if (!stopping_.load(std::memory_order_relaxed)) {
          home.cv.wait_for(lock, std::chrono::microseconds(poll_us));
          continue;
        }
      }
    }

    // Home is empty: scan the other shards for stealable work. A steal
    // takes the victim's whole front batch (leader plus everything
    // coalescible, front to back) so same-stream ordering is untouched.
    const bool stopping = stopping_.load(std::memory_order_relaxed);
    for (size_t offset = 1; offset < shards_.size() + (stopping ? 1 : 0);
         ++offset) {
      // When draining we must also re-check the home shard (offset lands
      // on it last): a Submit may have raced in after the wait above.
      const size_t victim_index = (home_shard + offset) % shards_.size();
      Shard& victim = *shards_[victim_index];
      // Polling thieves skip a busy victim lock rather than pile onto it;
      // the drain path must not skip work, so it blocks.
      std::unique_lock<std::mutex> lock(victim.mu, std::defer_lock);
      if (stopping) {
        lock.lock();
      } else if (!lock.try_lock()) {
        continue;
      }
      if (victim.queue.empty()) continue;
      std::vector<Pending> batch = PopBatchLocked(
          victim_index, lock, /*allow_window=*/false);
      if (batch.empty()) continue;  // Every queued stream is mid-window.
      lock.unlock();
      PublishDepth(victim_index);
      if (victim_index != home_shard) {
        Metrics().steals->Increment();
        std::lock_guard<std::mutex> stats_lock(stats_mu_);
        ++stats_.steals;
      }
      return batch;
    }
    if (stopping) return {};  // Every shard drained; exit.
  }
}

void InferenceServer::CancelExpired(std::vector<Pending>& live,
                                    Clock::time_point cutoff,
                                    const char* why) {
  const Clock::time_point now = Clock::now();
  std::vector<Pending> kept;
  std::vector<Pending> dead;
  kept.reserve(live.size());
  for (auto& pending : live) {
    if (pending.deadline < cutoff) {
      dead.push_back(std::move(pending));
    } else {
      kept.push_back(std::move(pending));
    }
  }
  // Stats before promises: a client woken by .get() must already see its
  // request in a terminal bucket.
  if (!dead.empty()) {
    Metrics().expired->Increment(static_cast<long>(dead.size()));
    {
      std::lock_guard<std::mutex> lock(stats_mu_);
      stats_.expired += static_cast<long>(dead.size());
    }
    for (auto& pending : dead) {
      RecordTerminal("expired", pending.servable->name(), pending.kind,
                     pending.ctx, pending.submit_trace_us,
                     MicrosBetween(pending.admitted, now), false);
      pending.promise.set_value(Status::DeadlineExceeded(StrCat(
          "request deadline expired ", why, " after ",
          MicrosBetween(pending.admitted, now),
          "us; it was cancelled before (further) execution")));
    }
  }
  live.swap(kept);
}

void InferenceServer::ExecuteBatch(std::vector<Pending> batch) {
  std::vector<Pending> live = std::move(batch);
  const std::shared_ptr<const ServableModel> servable = live.front().servable;
  const RequestKind kind = live.front().kind;
  // The batch executes inside the leader's trace; every coalesced member is
  // attached below with a link event carrying its own trace id, so one
  // batch fans a causal edge into N request trees.
  obs::ContextGuard context_guard(live.front().ctx);
  QDB_TRACE_SCOPE("InferenceServer::ExecuteBatch", "serve");
  fault::CircuitBreaker* breaker =
      options_.enable_breaker ? BreakerFor(*servable) : nullptr;
  const int max_attempts = std::max(options_.retry.max_attempts, 1);
  Rng jitter_rng(options_.retry_jitter_seed +
                 batch_seq_.fetch_add(1, std::memory_order_relaxed));
  Backoff backoff(options_.retry, jitter_rng.Split());

  // Cancel expired requests before any simulation happens.
  const Clock::time_point dispatch_time = Clock::now();
  CancelExpired(live, dispatch_time, "in queue");
  if (live.empty()) return;

  Metrics().batches->Increment();
  Metrics().batch_size->Observe(static_cast<double>(live.size()));
  for (const auto& pending : live) {
    Metrics().queue_wait_us->Observe(static_cast<double>(
        MicrosBetween(pending.admitted, dispatch_time)));
  }
  if (obs::TracingEnabled()) {
    const int64_t now_us = obs::TraceNowMicros();
    const obs::RequestContext batch_ctx = obs::CurrentContext();
    for (const auto& pending : live) {
      if (!pending.ctx.valid()) continue;
      // Each member's queue wait, closed at dispatch, in its own trace…
      obs::RecordSpan("serve.queue_wait", "serve", pending.submit_trace_us,
                      now_us - pending.submit_trace_us, pending.ctx.trace_id,
                      obs::NewSpanId(), pending.ctx.span_id);
      // …and the cross-trace edge: batch span → member trace.
      obs::RecordSpan("serve.batch.member", "serve", now_us, 0,
                      batch_ctx.trace_id, obs::NewSpanId(), batch_ctx.span_id,
                      pending.ctx.trace_id);
    }
  }

  int attempt = 0;
  long exec_us_total = 0;
  Status last;
  while (true) {
    ++attempt;
    std::vector<DVector> inputs;
    inputs.reserve(live.size());
    for (const auto& pending : live) inputs.push_back(pending.input);

    // Fault point "serve.dispatch" (scoped by model name) fires once per
    // attempt, so injected transient errors exercise the retry loop and a
    // target filter poisons one servable while others stay healthy.
    const Clock::time_point attempt_start = Clock::now();
    Result<std::vector<InferenceValue>> results = [&] {
      QDB_TRACE_SCOPE("serve.attempt", "serve");
      Status injected =
          fault::MaybeInject("serve.dispatch", servable->name());
      return injected.ok()
                 ? servable->RunBatch(kind, inputs)
                 : Result<std::vector<InferenceValue>>(std::move(injected));
    }();
    const long attempt_us = MicrosBetween(attempt_start, Clock::now());
    exec_us_total += attempt_us;
    if (breaker != nullptr) {
      if (results.ok()) {
        breaker->RecordSuccess(attempt_us);
      } else {
        breaker->RecordFailure();
      }
    }

    if (results.ok()) {
      Metrics().dispatch_attempts->Observe(static_cast<double>(attempt));
      // Stats before promises: a client woken by .get() must already see
      // its request in a terminal bucket.
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        stats_.completed += static_cast<long>(live.size());
        ++stats_.batches;
      }
      const Clock::time_point resolved_time = Clock::now();
      for (size_t i = 0; i < live.size(); ++i) {
        if (!live[i].cache_key.empty()) {
          result_cache_.Insert(live[i].cache_key, results.value()[i]);
        }
        InferenceResponse response;
        response.result = std::move(results.value()[i]);
        response.model_version = live[i].servable->version();
        response.attempts = attempt;
        response.batch_size = live.size();
        response.queue_wait_us =
            MicrosBetween(live[i].admitted, dispatch_time);
        response.trace.trace_id = live[i].ctx.trace_id;
        response.trace.queue_wait_us = response.queue_wait_us;
        response.trace.exec_us = exec_us_total;
        response.trace.retry_backoff_us = live[i].retry_backoff_us;
        response.trace.attempts = attempt;
        response.trace.total_us =
            MicrosBetween(live[i].admitted, resolved_time);
        RecordTerminal("ok", servable->name(), kind, live[i].ctx,
                       live[i].submit_trace_us, response.trace.total_us,
                       true);
        live[i].promise.set_value(std::move(response));
      }
      return;
    }

    last = results.status();
    if (!options_.retry.IsRetryable(last) || attempt >= max_attempts) break;

    const long delay_us = backoff.NextDelayUs();
    Metrics().retries->Increment();
    // Deadline-aware backoff: a request whose deadline falls inside the
    // sleep can never see a useful attempt — resolve it now, before the
    // simulator wastes another pass on it.
    CancelExpired(live,
                  Clock::now() + std::chrono::microseconds(delay_us),
                  "during the retry backoff");
    if (live.empty()) {
      Metrics().dispatch_attempts->Observe(static_cast<double>(attempt));
      return;
    }
    const int64_t backoff_start_us = obs::TraceNowMicros();
    {
      // Interruptible sleep on the dedicated shutdown cv: Shutdown cuts it
      // short (the remaining attempts then run back to back, keeping the
      // drain bounded), and shard-cv notifies meant to hand work to idle
      // dispatchers are never consumed by a retrying one.
      std::unique_lock<std::mutex> lock(backoff_mu_);
      if (!stopping_.load(std::memory_order_relaxed)) {
        shutdown_cv_.wait_for(lock, std::chrono::microseconds(delay_us),
                              [this] {
                                return stopping_.load(
                                    std::memory_order_relaxed);
                              });
      }
    }
    if (obs::TracingEnabled()) {
      const obs::RequestContext batch_ctx = obs::CurrentContext();
      obs::RecordSpan("serve.retry_backoff", "serve", backoff_start_us,
                      obs::TraceNowMicros() - backoff_start_us,
                      batch_ctx.trace_id, obs::NewSpanId(),
                      batch_ctx.span_id);
    }
    for (auto& pending : live) pending.retry_backoff_us += delay_us;
    CancelExpired(live, Clock::now(), "between retries");
    if (live.empty()) {
      Metrics().dispatch_attempts->Observe(static_cast<double>(attempt));
      return;
    }
  }

  Metrics().dispatch_attempts->Observe(static_cast<double>(attempt));
  Metrics().failed->Increment(static_cast<long>(live.size()));
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.failed += static_cast<long>(live.size());
  }
  const Clock::time_point failed_time = Clock::now();
  for (auto& pending : live) {
    RecordTerminal("failed", servable->name(), kind, pending.ctx,
                   pending.submit_trace_us,
                   MicrosBetween(pending.admitted, failed_time), false);
    pending.promise.set_value(last);
  }
}

}  // namespace serve
}  // namespace qdb
