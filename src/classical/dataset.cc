#include "classical/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "common/check.h"

namespace qdb {

Dataset MakeMoons(int samples, double noise, Rng& rng) {
  QDB_CHECK_GE(samples, 2);
  Dataset data;
  for (int i = 0; i < samples; ++i) {
    const bool upper = i % 2 == 0;
    const double t = rng.Uniform(0.0, M_PI);
    double x, y;
    if (upper) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0 - std::cos(t);
      y = 0.5 - std::sin(t);
    }
    x += rng.Normal(0.0, noise);
    y += rng.Normal(0.0, noise);
    data.features.push_back({x, y});
    data.labels.push_back(upper ? 1 : -1);
  }
  return data;
}

Dataset MakeCircles(int samples, double noise, double factor, Rng& rng) {
  QDB_CHECK_GE(samples, 2);
  QDB_CHECK_GT(factor, 0.0);
  QDB_CHECK_LT(factor, 1.0);
  Dataset data;
  for (int i = 0; i < samples; ++i) {
    const bool outer = i % 2 == 0;
    const double r = outer ? 1.0 : factor;
    const double t = rng.Uniform(0.0, 2.0 * M_PI);
    const double x = r * std::cos(t) + rng.Normal(0.0, noise);
    const double y = r * std::sin(t) + rng.Normal(0.0, noise);
    data.features.push_back({x, y});
    data.labels.push_back(outer ? 1 : -1);
  }
  return data;
}

Dataset MakeXor(int samples, double noise, Rng& rng) {
  QDB_CHECK_GE(samples, 4);
  Dataset data;
  for (int i = 0; i < samples; ++i) {
    const int quadrant = i % 4;
    const double cx = (quadrant & 1) ? 1.0 : -1.0;
    const double cy = (quadrant & 2) ? 1.0 : -1.0;
    const double x = cx + rng.Normal(0.0, noise);
    const double y = cy + rng.Normal(0.0, noise);
    data.features.push_back({x, y});
    data.labels.push_back(cx * cy > 0 ? 1 : -1);
  }
  return data;
}

Dataset MakeBlobs(int samples, int num_features, double separation,
                  double stddev, Rng& rng) {
  QDB_CHECK_GE(samples, 2);
  QDB_CHECK_GE(num_features, 1);
  Dataset data;
  for (int i = 0; i < samples; ++i) {
    const bool positive = i % 2 == 0;
    const double center = (positive ? 1.0 : -1.0) * separation / 2.0;
    DVector x(num_features);
    for (auto& v : x) v = center + rng.Normal(0.0, stddev);
    data.features.push_back(std::move(x));
    data.labels.push_back(positive ? 1 : -1);
  }
  return data;
}

std::pair<Dataset, Dataset> TrainTestSplit(const Dataset& data,
                                           double test_fraction, Rng& rng) {
  QDB_CHECK_GE(test_fraction, 0.0);
  QDB_CHECK_LE(test_fraction, 1.0);
  std::vector<size_t> order(data.size());
  std::iota(order.begin(), order.end(), 0);
  rng.Shuffle(order);
  const size_t test_count = static_cast<size_t>(
      std::ceil(test_fraction * static_cast<double>(data.size())));
  Dataset train, test;
  for (size_t k = 0; k < order.size(); ++k) {
    Dataset& dst = k < test_count ? test : train;
    dst.features.push_back(data.features[order[k]]);
    dst.labels.push_back(data.labels[order[k]]);
  }
  return {std::move(train), std::move(test)};
}

void MinMaxScale(const Dataset& reference, Dataset& data, double lo,
                 double hi) {
  QDB_CHECK(!reference.features.empty());
  QDB_CHECK_LT(lo, hi);
  const int d = reference.num_features();
  DVector mins(d, std::numeric_limits<double>::infinity());
  DVector maxs(d, -std::numeric_limits<double>::infinity());
  for (const auto& row : reference.features) {
    for (int j = 0; j < d; ++j) {
      mins[j] = std::min(mins[j], row[j]);
      maxs[j] = std::max(maxs[j], row[j]);
    }
  }
  for (auto& row : data.features) {
    QDB_CHECK_EQ(static_cast<int>(row.size()), d);
    for (int j = 0; j < d; ++j) {
      const double range = maxs[j] - mins[j];
      row[j] = range > 0.0 ? lo + (hi - lo) * (row[j] - mins[j]) / range : lo;
    }
  }
}

}  // namespace qdb
