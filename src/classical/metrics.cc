#include "classical/metrics.h"

#include "common/check.h"

namespace qdb {

double Accuracy(const std::vector<int>& labels,
                const std::vector<int>& predictions) {
  QDB_CHECK_EQ(labels.size(), predictions.size());
  QDB_CHECK(!labels.empty());
  int correct = 0;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == predictions[i]) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(labels.size());
}

ConfusionMatrix Confusion(const std::vector<int>& labels,
                          const std::vector<int>& predictions) {
  QDB_CHECK_EQ(labels.size(), predictions.size());
  ConfusionMatrix cm;
  for (size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == 1) {
      predictions[i] == 1 ? ++cm.true_positive : ++cm.false_negative;
    } else {
      predictions[i] == 1 ? ++cm.false_positive : ++cm.true_negative;
    }
  }
  return cm;
}

double ConfusionMatrix::Precision() const {
  const int denom = true_positive + false_positive;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / denom;
}

double ConfusionMatrix::Recall() const {
  const int denom = true_positive + false_negative;
  return denom == 0 ? 0.0 : static_cast<double>(true_positive) / denom;
}

double ConfusionMatrix::F1() const {
  const double p = Precision();
  const double r = Recall();
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double MeanSquaredError(const std::vector<int>& labels, const DVector& scores) {
  QDB_CHECK_EQ(labels.size(), scores.size());
  QDB_CHECK(!labels.empty());
  double acc = 0.0;
  for (size_t i = 0; i < labels.size(); ++i) {
    const double diff = scores[i] - labels[i];
    acc += diff * diff;
  }
  return acc / static_cast<double>(labels.size());
}

}  // namespace qdb
