// Tests for adjoint (reverse-mode) gradients: must agree with the
// parameter-shift rule everywhere both are defined.

#include <gtest/gtest.h>

#include <cmath>

#include "autodiff/adjoint.h"
#include "autodiff/parameter_shift.h"
#include "common/rng.h"
#include "variational/ansatz.h"

namespace qdb {
namespace {

TEST(AdjointTest, ValueMatchesDirectExpectation) {
  Circuit c(2);
  c.H(0).CRY(0, 1, ParamExpr::Variable(0)).RZZ(0, 1, ParamExpr::Variable(1));
  PauliSum obs(2);
  obs.Add(0.7, "ZI").Add(-0.3, "XX");
  const DVector params = {0.8, -0.5};
  auto adjoint = AdjointGradient(c, obs, params);
  ASSERT_TRUE(adjoint.ok()) << adjoint.status();
  ExpectationFunction f(c, obs);
  EXPECT_NEAR(adjoint.value().value, f.Evaluate(params).ValueOrDie(), 1e-12);
}

TEST(AdjointTest, SingleRotationAnalytic) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));
  PauliSum obs(1);
  obs.Add(1.0, "Z");
  for (double theta : {0.0, 0.4, 1.3, 2.9, -1.1}) {
    auto adjoint = AdjointGradient(c, obs, {theta});
    ASSERT_TRUE(adjoint.ok());
    EXPECT_NEAR(adjoint.value().value, std::cos(theta), 1e-12);
    EXPECT_NEAR(adjoint.value().gradient[0], -std::sin(theta), 1e-12);
  }
}

class AdjointAgreementTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdjointAgreementTest, MatchesParameterShiftOnRandomAnsatz) {
  Rng rng(GetParam());
  Circuit ansatz = EfficientSU2Ansatz(3, 2, Entanglement::kCircular);
  PauliSum obs(3);
  obs.Add(0.8, "ZII").Add(-0.5, "IXY").Add(0.3, "ZZZ").Add(1.0, "III");
  DVector params = rng.UniformVector(ansatz.num_parameters(), -M_PI, M_PI);

  auto adjoint = AdjointGradient(ansatz, obs, params);
  ASSERT_TRUE(adjoint.ok());
  ExpectationFunction f(ansatz, obs);
  auto shift = ParameterShiftGradient(f, params);
  ASSERT_TRUE(shift.ok());
  for (size_t k = 0; k < params.size(); ++k) {
    EXPECT_NEAR(adjoint.value().gradient[k], shift.value()[k], 1e-10)
        << "k=" << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdjointAgreementTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(AdjointTest, AllSupportedGateFamilies) {
  // One circuit touching every differentiable gate class, checked against
  // parameter shift.
  Circuit c(3);
  c.H(0).H(1).H(2);
  c.RX(0, ParamExpr::Variable(0));
  c.RY(1, ParamExpr::Variable(1));
  c.RZ(2, ParamExpr::Variable(2));
  c.P(0, ParamExpr::Variable(3));
  c.CP(0, 1, ParamExpr::Variable(4));
  c.CRX(1, 2, ParamExpr::Variable(5));
  c.CRY(2, 0, ParamExpr::Variable(6));
  c.CRZ(0, 2, ParamExpr::Variable(7));
  c.RXX(0, 1, ParamExpr::Variable(8));
  c.RYY(1, 2, ParamExpr::Variable(9));
  c.RZZ(0, 2, ParamExpr::Variable(10));
  PauliSum obs(3);
  obs.Add(1.0, "ZXY").Add(0.5, "XZI").Add(-0.25, "IIZ");
  Rng rng(9);
  DVector params = rng.UniformVector(11, -2.0, 2.0);

  auto adjoint = AdjointGradient(c, obs, params);
  ASSERT_TRUE(adjoint.ok()) << adjoint.status();
  ExpectationFunction f(c, obs);
  auto shift = ParameterShiftGradient(f, params);
  ASSERT_TRUE(shift.ok());
  for (size_t k = 0; k < params.size(); ++k) {
    EXPECT_NEAR(adjoint.value().gradient[k], shift.value()[k], 1e-10)
        << "k=" << k;
  }
}

TEST(AdjointTest, ChainRuleThroughAffineParams) {
  // E = cos(2θ + 0.3) via RX(2θ + 0.3): dE/dθ = −2 sin(2θ + 0.3).
  Circuit c(1);
  c.RX(0, ParamExpr::Affine(0, 2.0, 0.3));
  PauliSum obs(1);
  obs.Add(1.0, "Z");
  const double theta = 0.7;
  auto adjoint = AdjointGradient(c, obs, {theta});
  ASSERT_TRUE(adjoint.ok());
  EXPECT_NEAR(adjoint.value().gradient[0], -2.0 * std::sin(2 * theta + 0.3),
              1e-12);
}

TEST(AdjointTest, SharedParameterAccumulates) {
  Circuit c(2);
  c.RY(0, ParamExpr::Variable(0)).RY(1, ParamExpr::Variable(0)).CX(0, 1);
  PauliSum obs(2);
  obs.Add(1.0, "IZ");
  Rng rng(5);
  const DVector params = {0.9};
  auto adjoint = AdjointGradient(c, obs, params);
  ASSERT_TRUE(adjoint.ok());
  ExpectationFunction f(c, obs);
  auto shift = ParameterShiftGradient(f, params);
  ASSERT_TRUE(shift.ok());
  EXPECT_NEAR(adjoint.value().gradient[0], shift.value()[0], 1e-10);
}

TEST(AdjointTest, QaoaStyleMultiUseParameters) {
  // γ appears in several RZZ gates with different multipliers (like a
  // weighted-QAOA layer): chain rule across occurrences.
  Circuit c(3);
  for (int q = 0; q < 3; ++q) c.H(q);
  c.RZZ(0, 1, ParamExpr::Affine(0, 1.4, 0.0));
  c.RZZ(1, 2, ParamExpr::Affine(0, -0.6, 0.0));
  c.RX(0, ParamExpr::Affine(1, 2.0, 0.0));
  c.RX(1, ParamExpr::Affine(1, 2.0, 0.0));
  c.RX(2, ParamExpr::Affine(1, 2.0, 0.0));
  PauliSum obs(3);
  obs.Add(1.4, "ZZI").Add(-0.6, "IZZ");
  const DVector params = {0.37, 0.81};
  auto adjoint = AdjointGradient(c, obs, params);
  ASSERT_TRUE(adjoint.ok());
  ExpectationFunction f(c, obs);
  auto shift = ParameterShiftGradient(f, params);
  ASSERT_TRUE(shift.ok());
  EXPECT_NEAR(adjoint.value().gradient[0], shift.value()[0], 1e-10);
  EXPECT_NEAR(adjoint.value().gradient[1], shift.value()[1], 1e-10);
}

TEST(AdjointTest, SymbolicUGateUnimplemented) {
  Circuit c(1);
  c.U(0, ParamExpr::Variable(0), ParamExpr::Constant(0.0),
      ParamExpr::Constant(0.0));
  PauliSum obs(1);
  obs.Add(1.0, "Z");
  auto adjoint = AdjointGradient(c, obs, {0.5});
  ASSERT_FALSE(adjoint.ok());
  EXPECT_EQ(adjoint.status().code(), StatusCode::kUnimplemented);
}

TEST(AdjointTest, ConstantUGateIsFine) {
  // A bound kU gate has no gradient slots and must rewind correctly.
  Circuit c(1);
  c.U(0, ParamExpr::Constant(0.4), ParamExpr::Constant(1.1),
      ParamExpr::Constant(-0.6));
  c.RX(0, ParamExpr::Variable(0));
  PauliSum obs(1);
  obs.Add(1.0, "Z");
  auto adjoint = AdjointGradient(c, obs, {0.8});
  ASSERT_TRUE(adjoint.ok()) << adjoint.status();
  ExpectationFunction f(c, obs);
  auto shift = ParameterShiftGradient(f, {0.8});
  ASSERT_TRUE(shift.ok());
  EXPECT_NEAR(adjoint.value().gradient[0], shift.value()[0], 1e-10);
}

TEST(AdjointTest, Validation) {
  Circuit c(2);
  c.RX(0, ParamExpr::Variable(0));
  PauliSum narrow(1);
  narrow.Add(1.0, "Z");
  EXPECT_FALSE(AdjointGradient(c, narrow, {0.1}).ok());
  PauliSum obs(2);
  obs.Add(1.0, "ZI");
  EXPECT_FALSE(AdjointGradient(c, obs, {}).ok());
}

}  // namespace
}  // namespace qdb
