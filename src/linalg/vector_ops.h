/// \file vector_ops.h
/// \brief Free functions on complex/real vectors: inner products, norms,
/// normalization, Kronecker products, and state fidelity.

#ifndef QDB_LINALG_VECTOR_OPS_H_
#define QDB_LINALG_VECTOR_OPS_H_

#include "linalg/types.h"

namespace qdb {

/// Hermitian inner product ⟨a|b⟩ = Σ conj(a_i) b_i; sizes must match.
Complex InnerProduct(const CVector& a, const CVector& b);

/// Euclidean (L2) norm of a complex vector.
double Norm(const CVector& v);

/// Euclidean (L2) norm of a real vector.
double Norm(const DVector& v);

/// Normalizes `v` in place to unit L2 norm; no-op on the zero vector.
void Normalize(CVector& v);

/// Kronecker (tensor) product a ⊗ b.
CVector Kron(const CVector& a, const CVector& b);

/// State fidelity |⟨a|b⟩|² of two (assumed normalized) pure states.
double Fidelity(const CVector& a, const CVector& b);

/// Real dot product; sizes must match.
double Dot(const DVector& a, const DVector& b);

/// Returns a + b element-wise; sizes must match.
DVector Add(const DVector& a, const DVector& b);

/// Returns a - b element-wise; sizes must match.
DVector Sub(const DVector& a, const DVector& b);

/// Returns s * v.
DVector Scale(double s, const DVector& v);

/// Max |a_i - b_i|; sizes must match.
double MaxAbsDiff(const DVector& a, const DVector& b);

}  // namespace qdb

#endif  // QDB_LINALG_VECTOR_OPS_H_
