// Tests for the crash-recovery layer: the registry journal's append/replay
// round trip, snapshot compaction (including a crash injected into the
// window between snapshot and journal reset), the byte-level torn-tail fuzz
// — every truncation offset and every byte flip of the last record must
// recover the longest valid prefix, never crash, and never resurrect the
// damaged record — and the journaled ModelRegistry's warm restart: durable
// entries come back as page-outs, never-promoted entries are dropped (no
// phantoms), and the server's warmup gate ends with every warm-set model
// resident.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/strings.h"
#include "fault/fault_injector.h"
#include "serve/inference_server.h"
#include "serve/model_artifact.h"
#include "serve/model_registry.h"
#include "store/async_loader.h"
#include "store/registry_journal.h"
#include "variational/ansatz.h"

namespace qdb {
namespace store {
namespace {

std::string FreshDir(const std::string& name) {
  const std::string dir = testing::TempDir() + "/" + name;
  std::string cmd = "rm -rf '" + dir + "'";
  (void)std::system(cmd.c_str());
  return dir;  // RegistryJournal::Open / mkdir creates it.
}

size_t FileSize(const std::string& path) {
  struct stat st {};
  EXPECT_EQ(::stat(path.c_str(), &st), 0) << path;
  return static_cast<size_t>(st.st_size);
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

JournalRecord PromoteRecord(const std::string& name, int version) {
  JournalRecord record;
  record.event = JournalEvent::kPromote;
  record.name = name;
  record.version = version;
  record.model_type = 0;
  record.num_features = 2;
  record.artifact_path = "/tmp/" + name + ".model";
  record.file_name = name;
  record.file_version = version;
  return record;
}

std::vector<std::pair<std::string, int>> Keys(
    const std::vector<ManifestEntry>& manifest) {
  std::vector<std::pair<std::string, int>> keys;
  for (const auto& entry : manifest) keys.push_back({entry.name, entry.version});
  return keys;
}

serve::ModelArtifact TinyVqcArtifact(const std::string& name) {
  serve::ModelArtifact a;
  a.type = serve::ModelType::kVqcClassifier;
  a.name = name;
  a.num_features = 2;
  a.encoding = VqcEncoding::kAngle;
  a.ansatz_layers = 1;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 0.8;
  const int count = RealAmplitudesParamCount(a.num_features, a.ansatz_layers);
  for (int i = 0; i < count; ++i) {
    a.params.push_back(0.3 + 0.17 * static_cast<double>(i));
  }
  return a;
}

class JournalTest : public ::testing::Test {
 protected:
  void TearDown() override { fault::FaultInjector::Global().DisarmAll(); }
};

TEST_F(JournalTest, AppendReplayRoundTrip) {
  const std::string dir = FreshDir("journal_roundtrip");
  {
    auto journal = RegistryJournal::Open(dir);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    ASSERT_TRUE(journal.value()->Append(PromoteRecord("alpha", 1)).ok());
    ASSERT_TRUE(journal.value()->Append(PromoteRecord("alpha", 2)).ok());
    ASSERT_TRUE(journal.value()->Append(PromoteRecord("beta", 1)).ok());
    JournalRecord pin;
    pin.event = JournalEvent::kPin;
    pin.name = "beta";
    pin.version = 1;
    ASSERT_TRUE(journal.value()->Append(pin).ok());
    JournalRecord evict;
    evict.event = JournalEvent::kEvictToDisk;
    evict.name = "alpha";
    evict.version = 1;
    ASSERT_TRUE(journal.value()->Append(evict).ok());
  }
  auto reopened = RegistryJournal::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& stats = reopened.value()->recovery_stats();
  EXPECT_EQ(stats.replayed_records, 5);
  EXPECT_EQ(stats.stale_records, 0);
  EXPECT_FALSE(stats.tail_truncated);

  const auto manifest = reopened.value()->Manifest();
  ASSERT_EQ(manifest.size(), 3u);
  EXPECT_EQ(manifest[0].name, "alpha");
  EXPECT_EQ(manifest[0].version, 1);
  EXPECT_FALSE(manifest[0].hot);  // evict-to-disk cleared the hint.
  EXPECT_EQ(manifest[1].version, 2);
  EXPECT_TRUE(manifest[1].hot);
  EXPECT_EQ(manifest[2].name, "beta");
  EXPECT_TRUE(manifest[2].pinned);
  EXPECT_EQ(manifest[2].artifact_path, "/tmp/beta.model");
  EXPECT_EQ(manifest[2].file_version, 1);
  // Sequences continue after the replayed ones — monotone across restarts.
  EXPECT_EQ(reopened.value()->stats().next_sequence, 6u);
}

TEST_F(JournalTest, RemoveOneVersionAndAllVersions) {
  const std::string dir = FreshDir("journal_remove");
  auto journal = RegistryJournal::Open(dir);
  ASSERT_TRUE(journal.ok());
  for (int v = 1; v <= 3; ++v) {
    ASSERT_TRUE(journal.value()->Append(PromoteRecord("multi", v)).ok());
  }
  ASSERT_TRUE(journal.value()->Append(PromoteRecord("other", 1)).ok());

  JournalRecord remove_one;
  remove_one.event = JournalEvent::kRemove;
  remove_one.name = "multi";
  remove_one.version = 2;
  ASSERT_TRUE(journal.value()->Append(remove_one).ok());
  EXPECT_EQ(Keys(journal.value()->Manifest()),
            (std::vector<std::pair<std::string, int>>{
                {"multi", 1}, {"multi", 3}, {"other", 1}}));

  JournalRecord remove_all;
  remove_all.event = JournalEvent::kRemove;
  remove_all.name = "multi";
  remove_all.version = -1;
  ASSERT_TRUE(journal.value()->Append(remove_all).ok());
  EXPECT_EQ(Keys(journal.value()->Manifest()),
            (std::vector<std::pair<std::string, int>>{{"other", 1}}));

  // And the removal is durable, not just in-memory.
  auto reopened = RegistryJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(Keys(reopened.value()->Manifest()),
            (std::vector<std::pair<std::string, int>>{{"other", 1}}));
}

// Satellite: every truncation offset of the last record must replay to the
// longest valid prefix — never a crash, never a resurrected damaged record,
// and the torn bytes must be physically gone afterwards so later appends
// cannot bury them.
TEST_F(JournalTest, TornTailFuzzEveryTruncationOffset) {
  const std::string build_dir = FreshDir("journal_fuzz_build");
  constexpr int kRecords = 4;
  std::vector<size_t> size_after_append;
  {
    JournalOptions options;
    options.compact_every = 0;  // Pure journal: no snapshot in the fuzz set.
    auto journal = RegistryJournal::Open(build_dir, options);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(
          journal.value()->Append(PromoteRecord(StrCat("fuzz-", i), 1)).ok());
      size_after_append.push_back(
          FileSize(journal.value()->journal_path()));
    }
  }
  const std::string bytes = ReadAll(build_dir + "/journal.log");
  ASSERT_EQ(bytes.size(), size_after_append.back());
  const size_t last_start = size_after_append[kRecords - 2];

  // Expected manifests: all records, and all but the damaged last one.
  std::vector<std::pair<std::string, int>> full_keys, prefix_keys;
  for (int i = 0; i < kRecords; ++i) full_keys.push_back({StrCat("fuzz-", i), 1});
  prefix_keys.assign(full_keys.begin(), full_keys.end() - 1);

  const std::string fuzz_dir = FreshDir("journal_fuzz_run");
  ASSERT_EQ(::mkdir(fuzz_dir.c_str(), 0755), 0);
  const std::string fuzz_log = fuzz_dir + "/journal.log";
  for (size_t cut = last_start; cut <= bytes.size(); ++cut) {
    WriteAll(fuzz_log, bytes.substr(0, cut));
    JournalOptions options;
    options.compact_every = 0;
    auto journal = RegistryJournal::Open(fuzz_dir, options);
    ASSERT_TRUE(journal.ok())
        << "cut=" << cut << ": " << journal.status().ToString();
    const auto& stats = journal.value()->recovery_stats();
    if (cut == bytes.size()) {
      EXPECT_EQ(Keys(journal.value()->Manifest()), full_keys);
      EXPECT_FALSE(stats.tail_truncated);
    } else {
      EXPECT_EQ(Keys(journal.value()->Manifest()), prefix_keys)
          << "cut=" << cut;
      EXPECT_EQ(stats.tail_truncated, cut != last_start) << "cut=" << cut;
      // The damaged bytes are gone: the file ends at the last valid record.
      EXPECT_EQ(FileSize(fuzz_log), last_start) << "cut=" << cut;
      // And the journal is still writable right where the tail was cut.
      ASSERT_TRUE(journal.value()->Append(PromoteRecord("patch", 7)).ok());
      auto again = RegistryJournal::Open(fuzz_dir, options);
      ASSERT_TRUE(again.ok());
      auto expected = prefix_keys;
      expected.push_back({"patch", 7});
      EXPECT_EQ(Keys(again.value()->Manifest()), expected) << "cut=" << cut;
    }
  }
}

TEST_F(JournalTest, TornTailFuzzEveryByteFlipOfLastRecord) {
  const std::string build_dir = FreshDir("journal_flip_build");
  constexpr int kRecords = 3;
  std::vector<size_t> size_after_append;
  {
    JournalOptions options;
    options.compact_every = 0;
    auto journal = RegistryJournal::Open(build_dir, options);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < kRecords; ++i) {
      ASSERT_TRUE(
          journal.value()->Append(PromoteRecord(StrCat("flip-", i), 1)).ok());
      size_after_append.push_back(
          FileSize(journal.value()->journal_path()));
    }
  }
  const std::string bytes = ReadAll(build_dir + "/journal.log");
  const size_t last_start = size_after_append[kRecords - 2];
  std::vector<std::pair<std::string, int>> prefix_keys;
  for (int i = 0; i < kRecords - 1; ++i) {
    prefix_keys.push_back({StrCat("flip-", i), 1});
  }

  const std::string flip_dir = FreshDir("journal_flip_run");
  ASSERT_EQ(::mkdir(flip_dir.c_str(), 0755), 0);
  for (size_t pos = last_start; pos < bytes.size(); ++pos) {
    std::string damaged = bytes;
    damaged[pos] = static_cast<char>(damaged[pos] ^ 0xFF);
    WriteAll(flip_dir + "/journal.log", damaged);
    JournalOptions options;
    options.compact_every = 0;
    auto journal = RegistryJournal::Open(flip_dir, options);
    ASSERT_TRUE(journal.ok())
        << "pos=" << pos << ": " << journal.status().ToString();
    // The flipped record fails its checksum (or decodes to garbage): it is
    // crash debris, dropped, and only the intact prefix survives.
    EXPECT_EQ(Keys(journal.value()->Manifest()), prefix_keys) << "pos=" << pos;
    EXPECT_TRUE(journal.value()->recovery_stats().tail_truncated)
        << "pos=" << pos;
    EXPECT_EQ(FileSize(flip_dir + "/journal.log"), last_start)
        << "pos=" << pos;
  }
}

TEST_F(JournalTest, ForeignFileRefusesToBeWiped) {
  const std::string dir = FreshDir("journal_foreign");
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  WriteAll(dir + "/journal.log",
           "this is sixteen+ bytes of somebody else's data, not a journal");
  auto journal = RegistryJournal::Open(dir);
  ASSERT_FALSE(journal.ok());
  EXPECT_EQ(journal.status().code(), StatusCode::kInvalidArgument);
  // The file was not touched.
  EXPECT_NE(ReadAll(dir + "/journal.log").substr(0, 8), "QDBJRNL1");
}

TEST_F(JournalTest, CompactionFoldsJournalIntoSnapshot) {
  const std::string dir = FreshDir("journal_compact");
  JournalOptions options;
  options.compact_every = 0;
  {
    auto journal = RegistryJournal::Open(dir, options);
    ASSERT_TRUE(journal.ok());
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(
          journal.value()->Append(PromoteRecord(StrCat("c-", i), 1)).ok());
    }
    ASSERT_TRUE(journal.value()->Compact().ok());
    // Post-compaction appends land in the fresh journal.
    ASSERT_TRUE(journal.value()->Append(PromoteRecord("late", 1)).ok());
  }
  auto reopened = RegistryJournal::Open(dir, options);
  ASSERT_TRUE(reopened.ok());
  const auto& stats = reopened.value()->recovery_stats();
  EXPECT_EQ(stats.snapshot_sequence, 5u);
  EXPECT_EQ(stats.snapshot_entries, 5);
  EXPECT_EQ(stats.replayed_records, 1);  // Just "late".
  EXPECT_EQ(stats.stale_records, 0);
  EXPECT_EQ(reopened.value()->Manifest().size(), 6u);
}

// A crash in the window between the snapshot rename and the journal reset
// leaves BOTH a covering snapshot and the full old journal. Replay must
// skip every journal record as stale — applying them twice would resurrect
// removed models.
TEST_F(JournalTest, CrashBetweenSnapshotAndResetReplaysNothingTwice) {
  const std::string dir = FreshDir("journal_compact_crash");
  JournalOptions options;
  options.compact_every = 0;
  {
    auto journal = RegistryJournal::Open(dir, options);
    ASSERT_TRUE(journal.ok());
    for (int v = 1; v <= 3; ++v) {
      ASSERT_TRUE(journal.value()->Append(PromoteRecord("win", v)).ok());
    }
    JournalRecord remove;
    remove.event = JournalEvent::kRemove;
    remove.name = "win";
    remove.version = 2;
    ASSERT_TRUE(journal.value()->Append(remove).ok());

    // Fail the compaction exactly in the crash window: snapshot durable,
    // old journal (4 records) left in place.
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kError;
    spec.probability = 1.0;
    fault::FaultInjector::Global().Arm("store.journal.compact", spec);
    EXPECT_FALSE(journal.value()->Compact().ok());
    fault::FaultInjector::Global().DisarmAll();
  }
  ASSERT_GT(FileSize(dir + "/manifest.snapshot"), 0u);
  ASSERT_GT(FileSize(dir + "/journal.log"), 16u);  // Old records present.

  auto reopened = RegistryJournal::Open(dir, options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const auto& stats = reopened.value()->recovery_stats();
  EXPECT_EQ(stats.snapshot_sequence, 4u);
  EXPECT_EQ(stats.replayed_records, 0);
  EXPECT_EQ(stats.stale_records, 4);
  EXPECT_EQ(Keys(reopened.value()->Manifest()),
            (std::vector<std::pair<std::string, int>>{{"win", 1}, {"win", 3}}));
}

TEST_F(JournalTest, TornAppendPoisonsUntilReopen) {
  const std::string dir = FreshDir("journal_poison");
  auto journal = RegistryJournal::Open(dir);
  ASSERT_TRUE(journal.ok());
  ASSERT_TRUE(journal.value()->Append(PromoteRecord("ok", 1)).ok());

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kTornWrite;
  spec.probability = 1.0;
  spec.keep_fraction = 0.5;
  fault::FaultInjector::Global().Arm("store.journal.append", spec);
  EXPECT_EQ(journal.value()->Append(PromoteRecord("torn", 1)).code(),
            StatusCode::kInternal);
  fault::FaultInjector::Global().DisarmAll();

  // The journal now holds a half-written record, exactly like a crashed
  // writer. It refuses to bury it under further appends...
  EXPECT_EQ(journal.value()->Append(PromoteRecord("after", 1)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_TRUE(journal.value()->stats().poisoned);

  // ...and a fresh Open truncates the debris and recovers the prefix.
  journal.value().reset();
  auto reopened = RegistryJournal::Open(dir);
  ASSERT_TRUE(reopened.ok());
  EXPECT_TRUE(reopened.value()->recovery_stats().tail_truncated);
  EXPECT_EQ(Keys(reopened.value()->Manifest()),
            (std::vector<std::pair<std::string, int>>{{"ok", 1}}));
  EXPECT_TRUE(reopened.value()->Append(PromoteRecord("after", 1)).ok());
}

// ---- Journaled ModelRegistry ----------------------------------------------

TEST_F(JournalTest, JournaledRegistryWarmRestartsDurableEntries) {
  const std::string dir = FreshDir("registry_recovery");
  serve::RegistryOptions options;
  options.journal_dir = dir;
  {
    serve::ModelRegistry registry(options);
    ASSERT_TRUE(registry.recovery_report().journaled);
    auto a = registry.Register(TinyVqcArtifact("dur-a"));
    ASSERT_TRUE(a.ok()) << a.status().ToString();
    auto b = registry.Register(TinyVqcArtifact("dur-b"));
    ASSERT_TRUE(b.ok());
    // "ghost" is registered but never saved: no durable artifact exists, so
    // recovery must drop it rather than serve a phantom.
    ASSERT_TRUE(registry.Register(TinyVqcArtifact("ghost")).ok());
    ASSERT_TRUE(registry.SaveModel("dur-a", 1, dir + "/dur-a.model").ok());
    ASSERT_TRUE(registry.SaveModel("dur-b", 1, dir + "/dur-b.model").ok());
    ASSERT_TRUE(registry.SetPinned("dur-a", 1, true).ok());
  }

  auto reopened = serve::ModelRegistry::OpenJournaled(options);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  serve::ModelRegistry& registry = *reopened.value();
  const serve::RecoveryReport& report = registry.recovery_report();
  EXPECT_TRUE(report.journaled);
  EXPECT_EQ(report.recovered_models, 2);
  EXPECT_EQ(report.dropped_nondurable, 1);
  EXPECT_GE(report.recovery_us, 0);

  const auto entries = registry.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "dur-a");
  EXPECT_TRUE(entries[0].pinned);
  EXPECT_FALSE(entries[0].resident);  // Recovered as a page-out.
  EXPECT_EQ(entries[1].name, "dur-b");

  // The warm set names everything worth prefetching.
  const auto warm = registry.RecoveredWarmSet();
  ASSERT_EQ(warm.size(), 2u);

  // A recovered entry cold-starts from its artifact on first lookup.
  auto servable = registry.Lookup("dur-a", 1);
  ASSERT_TRUE(servable.ok()) << servable.status().ToString();
  EXPECT_EQ(servable.value()->name(), "dur-a");

  // The dropped phantom was also pruned from the journal itself: a second
  // restart must not resurrect it either.
  auto again = serve::ModelRegistry::OpenJournaled(options);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value()->recovery_report().dropped_nondurable, 0);
  EXPECT_EQ(again.value()->List().size(), 2u);
}

TEST_F(JournalTest, JournaledRegistryEvictIsDurable) {
  const std::string dir = FreshDir("registry_evict");
  serve::RegistryOptions options;
  options.journal_dir = dir;
  {
    serve::ModelRegistry registry(options);
    ASSERT_TRUE(registry.Register(TinyVqcArtifact("keep")).ok());
    ASSERT_TRUE(registry.Register(TinyVqcArtifact("drop")).ok());
    ASSERT_TRUE(registry.SaveModel("keep", 1, dir + "/keep.model").ok());
    ASSERT_TRUE(registry.SaveModel("drop", 1, dir + "/drop.model").ok());
    ASSERT_TRUE(registry.Evict("drop", -1).ok());
  }
  auto reopened = serve::ModelRegistry::OpenJournaled(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->List().size(), 1u);
  EXPECT_TRUE(reopened.value()->Lookup("keep", 1).ok());
  EXPECT_EQ(reopened.value()->Lookup("drop", 1).status().code(),
            StatusCode::kNotFound);
}

// Write-ahead contract: when the journal append fails, the in-memory
// mutation must not happen either — otherwise the registry serves state a
// restart would lose.
TEST_F(JournalTest, FailedJournalAppendRollsBackTheMutation) {
  const std::string dir = FreshDir("registry_rollback");
  serve::RegistryOptions options;
  options.journal_dir = dir;
  serve::ModelRegistry registry(options);
  ASSERT_TRUE(registry.Register(TinyVqcArtifact("pre")).ok());

  fault::FaultSpec spec;
  spec.kind = fault::FaultKind::kError;
  spec.probability = 1.0;
  fault::FaultInjector::Global().Arm("store.journal.append", spec);
  EXPECT_FALSE(registry.Register(TinyVqcArtifact("blocked")).ok());
  EXPECT_EQ(registry.size(), 1u);
  EXPECT_FALSE(registry.SetPinned("pre", 1, true).ok());
  EXPECT_FALSE(registry.Evict("pre", 1).ok());
  fault::FaultInjector::Global().DisarmAll();

  // Nothing stuck: the registry still serves and mutates normally.
  EXPECT_TRUE(registry.Lookup("pre", 1).ok());
  for (const auto& entry : registry.List()) EXPECT_FALSE(entry.pinned);
  EXPECT_TRUE(registry.Register(TinyVqcArtifact("post")).ok());
  EXPECT_EQ(registry.size(), 2u);
}

TEST_F(JournalTest, WarmupPrefetchesWarmSetAndOpensAdmission) {
  const std::string dir = FreshDir("registry_warmup");
  serve::RegistryOptions options;
  options.journal_dir = dir;
  {
    serve::ModelRegistry registry(options);
    ASSERT_TRUE(registry.Register(TinyVqcArtifact("warm-a")).ok());
    ASSERT_TRUE(registry.Register(TinyVqcArtifact("warm-b")).ok());
    ASSERT_TRUE(registry.SaveModel("warm-a", 1, dir + "/a.model").ok());
    ASSERT_TRUE(registry.SaveModel("warm-b", 1, dir + "/b.model").ok());
    ASSERT_TRUE(registry.SetPinned("warm-a", 1, true).ok());
  }
  auto reopened = serve::ModelRegistry::OpenJournaled(options);
  ASSERT_TRUE(reopened.ok());
  serve::ModelRegistry& registry = *reopened.value();

  serve::InferenceServer server(registry);
  ASSERT_TRUE(server.Start().ok());
  AsyncModelLoader loader(registry);
  ASSERT_TRUE(loader.Start().ok());
  ASSERT_TRUE(server.StartWarmup(loader).ok());
  // Starting a second warmup while one runs (or after it finished) is an
  // error, not a double prefetch.
  EXPECT_FALSE(server.StartWarmup(loader).ok());

  // Warming must converge to: admission open, whole warm set resident.
  for (int i = 0; i < 2000 && !server.Healthz().ok(); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_TRUE(server.Healthz().ok());
  const auto status = server.warmup_status();
  EXPECT_TRUE(status.admitting);
  EXPECT_EQ(status.target, 2u);
  EXPECT_EQ(status.ready, 2u);
  EXPECT_EQ(status.failed, 0u);

  // Both models are resident without any request having cold-started them.
  for (const auto& entry : registry.List()) {
    EXPECT_TRUE(entry.resident) << entry.name;
  }
  serve::InferenceRequest request;
  request.model = "warm-a";
  request.input = {0.4, 0.9};
  request.timeout_us = 2'000'000;
  auto response = server.Submit(std::move(request)).get();
  EXPECT_TRUE(response.ok()) << response.status().ToString();

  const std::string statusz = server.Statusz();
  EXPECT_NE(statusz.find("warmup: 2/2 resident"), std::string::npos)
      << statusz;
  loader.Shutdown();
  server.Shutdown();
}

}  // namespace
}  // namespace store
}  // namespace qdb
