#include "db/cardinality.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qdb {
namespace {

/// Standard normal CDF (for the Gaussian copula's uniform marginals).
double NormalCdf(double x) { return 0.5 * std::erfc(-x / std::sqrt(2.0)); }

}  // namespace

SyntheticTable MakeCorrelatedTable(int rows, int columns, double correlation,
                                   Rng& rng) {
  QDB_CHECK_GE(rows, 1);
  QDB_CHECK_GE(columns, 1);
  QDB_CHECK_GE(correlation, 0.0);
  QDB_CHECK_LT(correlation, 1.0);
  const double residual = std::sqrt(1.0 - correlation * correlation);
  SyntheticTable table;
  table.rows.reserve(rows);
  for (int r = 0; r < rows; ++r) {
    const double latent = rng.Normal();
    DVector row(columns);
    for (int c = 0; c < columns; ++c) {
      const double z = correlation * latent + residual * rng.Normal();
      row[c] = std::clamp(NormalCdf(z), 0.0, std::nextafter(1.0, 0.0));
    }
    table.rows.push_back(std::move(row));
  }
  return table;
}

double RangeQuery::TrueSelectivity(const SyntheticTable& table) const {
  QDB_CHECK_EQ(static_cast<int>(lo.size()), table.num_columns());
  QDB_CHECK_EQ(lo.size(), hi.size());
  QDB_CHECK_GT(table.num_rows(), 0);
  int hits = 0;
  for (const auto& row : table.rows) {
    bool match = true;
    for (size_t c = 0; c < lo.size() && match; ++c) {
      match = row[c] >= lo[c] && row[c] < hi[c];
    }
    hits += match;
  }
  return static_cast<double>(hits) / table.num_rows();
}

DVector RangeQuery::ToFeatures() const {
  DVector features;
  features.reserve(2 * lo.size());
  for (size_t c = 0; c < lo.size(); ++c) {
    features.push_back(lo[c]);
    features.push_back(hi[c]);
  }
  return features;
}

RangeQuery RandomRangeQuery(int columns, Rng& rng, double min_width) {
  QDB_CHECK_GE(columns, 1);
  QDB_CHECK_GT(min_width, 0.0);
  QDB_CHECK_LE(min_width, 1.0);
  RangeQuery query;
  query.lo.resize(columns);
  query.hi.resize(columns);
  for (int c = 0; c < columns; ++c) {
    const double width = rng.Uniform(min_width, 1.0);
    const double start = rng.Uniform(0.0, 1.0 - width);
    query.lo[c] = start;
    query.hi[c] = start + width;
  }
  return query;
}

IndependenceEstimator IndependenceEstimator::Build(const SyntheticTable& table,
                                                   int buckets) {
  QDB_CHECK_GE(buckets, 1);
  QDB_CHECK_GT(table.num_rows(), 0);
  IndependenceEstimator est;
  est.histograms_.assign(table.num_columns(), DVector(buckets, 0.0));
  const double inv_rows = 1.0 / table.num_rows();
  for (const auto& row : table.rows) {
    for (int c = 0; c < table.num_columns(); ++c) {
      int bucket = static_cast<int>(row[c] * buckets);
      bucket = std::clamp(bucket, 0, buckets - 1);
      est.histograms_[c][bucket] += inv_rows;
    }
  }
  return est;
}

double IndependenceEstimator::Estimate(const RangeQuery& query) const {
  QDB_CHECK_EQ(query.lo.size(), histograms_.size());
  const int buckets = static_cast<int>(histograms_.front().size());
  double selectivity = 1.0;
  for (size_t c = 0; c < histograms_.size(); ++c) {
    // Per-column fraction with linear interpolation inside edge buckets.
    double column_sel = 0.0;
    for (int b = 0; b < buckets; ++b) {
      const double bucket_lo = static_cast<double>(b) / buckets;
      const double bucket_hi = static_cast<double>(b + 1) / buckets;
      const double overlap =
          std::max(0.0, std::min(query.hi[c], bucket_hi) -
                            std::max(query.lo[c], bucket_lo));
      column_sel += histograms_[c][b] * overlap * buckets;
    }
    selectivity *= std::clamp(column_sel, 0.0, 1.0);
  }
  return selectivity;
}

double SamplingEstimate(const SyntheticTable& table, const RangeQuery& query,
                        int samples, Rng& rng) {
  QDB_CHECK_GE(samples, 1);
  QDB_CHECK_GT(table.num_rows(), 0);
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    const auto& row =
        table.rows[rng.UniformInt(static_cast<uint64_t>(table.num_rows()))];
    bool match = true;
    for (size_t c = 0; c < query.lo.size() && match; ++c) {
      match = row[c] >= query.lo[c] && row[c] < query.hi[c];
    }
    hits += match;
  }
  // Half-hit floor: avoids zero estimates (infinite q-error) on misses.
  return std::max(0.5, static_cast<double>(hits)) / samples;
}

double QError(double estimate, double truth, double floor_sel) {
  QDB_CHECK_GT(floor_sel, 0.0);
  const double e = std::max(estimate, floor_sel);
  const double t = std::max(truth, floor_sel);
  return std::max(e / t, t / e);
}

double SelectivityToTarget(double selectivity) {
  // log₁₀ over [1e-4, 1] → [−1, 1]: target = 1 + log₁₀(sel)/2.
  const double clamped = std::clamp(selectivity, 1e-4, 1.0);
  return 1.0 + std::log10(clamped) / 2.0;
}

double TargetToSelectivity(double target) {
  const double clamped = std::clamp(target, -1.0, 1.0);
  return std::pow(10.0, 2.0 * (clamped - 1.0));
}

}  // namespace qdb
