// Join-order optimization on the (simulated) quantum annealer: the E7
// pipeline end-to-end on one star query, with DP and greedy baselines.

#include <cstdio>

#include "anneal/quantum_annealing.h"
#include "anneal/simulated_annealing.h"
#include "common/strings.h"
#include "db/join_order_dp.h"
#include "db/join_order_greedy.h"
#include "db/join_order_qubo.h"

int main() {
  using namespace qdb;

  // A star query over 8 relations (fact table R0 joined to 7 dimensions).
  Rng rng(42);
  JoinQueryGraph query =
      RandomQuery(QueryShape::kStar, 8, rng).ValueOrDie();
  std::printf("%s\n", query.ToString().c_str());

  // Classical baselines.
  DpPlanResult dp = OptimalLeftDeepPlan(query).ValueOrDie();
  GreedyPlanResult greedy = GreedyLeftDeepPlan(query).ValueOrDie();
  std::printf("optimal DP   : cost %.0f, order [%s]\n", dp.cost,
              StrJoin(dp.order, ", ").c_str());
  std::printf("greedy       : cost %.0f (%.2fx optimal)\n", greedy.cost,
              greedy.cost / dp.cost);

  // QUBO encoding: n^2 binary variables with one-hot validity penalties.
  JoinOrderQubo encoding = JoinOrderQubo::Create(query).ValueOrDie();
  std::printf("QUBO         : %d variables, penalty weight %.1f\n",
              encoding.qubo().num_vars(), encoding.penalty_weight());

  // Solve with thermal simulated annealing...
  SaOptions sa_options;
  sa_options.num_sweeps = 2000;
  sa_options.num_restarts = 4;
  SolveResult sa =
      SimulatedAnnealing(encoding.qubo().ToIsing(), sa_options).ValueOrDie();
  auto sa_order = encoding.Decode(SpinsToBits(sa.best_spins));
  double sa_cost = CostOfLeftDeepOrder(query, sa_order).ValueOrDie();
  std::printf("SA  anneal   : cost %.0f (%.2fx optimal), order [%s]\n",
              sa_cost, sa_cost / dp.cost, StrJoin(sa_order, ", ").c_str());

  // ...and with path-integral simulated *quantum* annealing (the D-Wave
  // stand-in: Trotter replicas coupled by a decaying transverse field).
  SqaOptions sqa_options;
  sqa_options.num_sweeps = 800;
  sqa_options.num_replicas = 16;
  sqa_options.num_restarts = 2;
  SolveResult sqa =
      SimulatedQuantumAnnealing(encoding.qubo().ToIsing(), sqa_options)
          .ValueOrDie();
  auto sqa_order = encoding.Decode(SpinsToBits(sqa.best_spins));
  double sqa_cost = CostOfLeftDeepOrder(query, sqa_order).ValueOrDie();
  std::printf("SQA anneal   : cost %.0f (%.2fx optimal), order [%s]\n",
              sqa_cost, sqa_cost / dp.cost, StrJoin(sqa_order, ", ").c_str());
  return 0;
}
