/// AVX2 implementations of the range kernels (kernels.h).
///
/// Every function carries a per-function target attribute instead of
/// building the whole TU with -mavx2, so this file links into a plain
/// x86-64 binary and the vector paths are only *executed* after the CPUID
/// dispatch in simd.cc says the CPU has AVX2.
///
/// Bit-identity with the scalar path (see kernels.h) rests on three rules:
///   * only _mm256_{mul,add,sub,div}_pd — never FMA — and the TU is built
///     with -ffp-contract=off so the compiler cannot introduce one;
///   * per-element formulas replicate the scalar product/summation order;
///   * reductions keep the scalar 4-lane protocol: vector lane j holds
///     protocol lane j, tails fold into the spilled lanes, and the final
///     combine is (l0 + l1) + (l2 + l3).

#include "sim/kernels.h"

#if defined(__x86_64__) || defined(__i386__)

#include <immintrin.h>

#include <algorithm>

#define QDB_AVX2 __attribute__((target("avx2")))

namespace qdb {
namespace simd {

namespace {

/// Scalar 2x2 row update for run tails inside the AVX2 TU; identical
/// formula to kernels.cc Update1Q.
QDB_AVX2 inline void Update1QTail(double* re, double* im, uint64_t i0,
                                  uint64_t i1, const double* m) {
  const double a0r = re[i0], a0i = im[i0];
  const double a1r = re[i1], a1i = im[i1];
  re[i0] = (m[0] * a0r - m[1] * a0i) + (m[2] * a1r - m[3] * a1i);
  im[i0] = (m[0] * a0i + m[1] * a0r) + (m[2] * a1i + m[3] * a1r);
  re[i1] = (m[4] * a0r - m[5] * a0i) + (m[6] * a1r - m[7] * a1i);
  im[i1] = (m[4] * a0i + m[5] * a0r) + (m[6] * a1i + m[7] * a1r);
}

/// Vectorized 2x2 row update on four consecutive pairs starting at i0
/// (pairs contiguous: i1 plane at constant offset `stride`).
QDB_AVX2 inline void Update1QVec(double* re, double* im, uint64_t i0,
                                 uint64_t stride, __m256d m00r, __m256d m00i,
                                 __m256d m01r, __m256d m01i, __m256d m10r,
                                 __m256d m10i, __m256d m11r, __m256d m11i) {
  const __m256d a0r = _mm256_loadu_pd(re + i0);
  const __m256d a0i = _mm256_loadu_pd(im + i0);
  const __m256d a1r = _mm256_loadu_pd(re + i0 + stride);
  const __m256d a1i = _mm256_loadu_pd(im + i0 + stride);
  _mm256_storeu_pd(
      re + i0,
      _mm256_add_pd(
          _mm256_sub_pd(_mm256_mul_pd(m00r, a0r), _mm256_mul_pd(m00i, a0i)),
          _mm256_sub_pd(_mm256_mul_pd(m01r, a1r), _mm256_mul_pd(m01i, a1i))));
  _mm256_storeu_pd(
      im + i0,
      _mm256_add_pd(
          _mm256_add_pd(_mm256_mul_pd(m00r, a0i), _mm256_mul_pd(m00i, a0r)),
          _mm256_add_pd(_mm256_mul_pd(m01r, a1i), _mm256_mul_pd(m01i, a1r))));
  _mm256_storeu_pd(
      re + i0 + stride,
      _mm256_add_pd(
          _mm256_sub_pd(_mm256_mul_pd(m10r, a0r), _mm256_mul_pd(m10i, a0i)),
          _mm256_sub_pd(_mm256_mul_pd(m11r, a1r), _mm256_mul_pd(m11i, a1i))));
  _mm256_storeu_pd(
      im + i0 + stride,
      _mm256_add_pd(
          _mm256_add_pd(_mm256_mul_pd(m10r, a0i), _mm256_mul_pd(m10i, a0r)),
          _mm256_add_pd(_mm256_mul_pd(m11r, a1i), _mm256_mul_pd(m11i, a1r))));
}

/// Folds a 4-lane accumulator register plus a scalar tail into the
/// protocol result (l0 + l1) + (l2 + l3). `tail_begin` is the first index
/// not covered by the vector loop; lane assignment (i - b) & 3 continues
/// across the boundary because the vector loop always consumes multiples
/// of four elements starting at b.
QDB_AVX2 inline double ReduceLanes(__m256d acc, const double* lane_tail) {
  double lanes[4];
  _mm256_storeu_pd(lanes, acc);
  for (int j = 0; j < 4; ++j) lanes[j] += lane_tail[j];
  return (lanes[0] + lanes[1]) + (lanes[2] + lanes[3]);
}

}  // namespace

QDB_AVX2 void Apply1QRangeAvx2(double* re, double* im, uint64_t pb, uint64_t pe,
                               uint64_t stride, const double* m) {
  if (stride < 4) {
    Apply1QRangeScalar(re, im, pb, pe, stride, m);
    return;
  }
  const __m256d m00r = _mm256_set1_pd(m[0]), m00i = _mm256_set1_pd(m[1]);
  const __m256d m01r = _mm256_set1_pd(m[2]), m01i = _mm256_set1_pd(m[3]);
  const __m256d m10r = _mm256_set1_pd(m[4]), m10i = _mm256_set1_pd(m[5]);
  const __m256d m11r = _mm256_set1_pd(m[6]), m11i = _mm256_set1_pd(m[7]);
  uint64_t p = pb;
  while (p < pe) {
    // Pairs sharing the same high bits map to contiguous i0; walk one such
    // run at a time so the inner loop is a straight 4-wide stream.
    const uint64_t base = p & ~(stride - 1);
    const uint64_t run_end = std::min(pe, base + stride);
    uint64_t i0 = (base << 1) | (p & (stride - 1));
    for (; p + 4 <= run_end; p += 4, i0 += 4) {
      Update1QVec(re, im, i0, stride, m00r, m00i, m01r, m01i, m10r, m10i, m11r,
                  m11i);
    }
    for (; p < run_end; ++p, ++i0) {
      Update1QTail(re, im, i0, i0 + stride, m);
    }
  }
}

QDB_AVX2 void Controlled1QRangeAvx2(double* re, double* im, uint64_t pb,
                                    uint64_t pe, uint64_t stride,
                                    uint64_t cmask, const double* m) {
  // cmask < stride: the control bit varies inside an i0-run, so the dense
  // run walk below would need per-lane blending; the scalar path's
  // branch-and-skip is competitive there.
  if (stride < 4 || cmask < stride) {
    Controlled1QRangeScalar(re, im, pb, pe, stride, cmask, m);
    return;
  }
  const __m256d m00r = _mm256_set1_pd(m[0]), m00i = _mm256_set1_pd(m[1]);
  const __m256d m01r = _mm256_set1_pd(m[2]), m01i = _mm256_set1_pd(m[3]);
  const __m256d m10r = _mm256_set1_pd(m[4]), m10i = _mm256_set1_pd(m[5]);
  const __m256d m11r = _mm256_set1_pd(m[6]), m11i = _mm256_set1_pd(m[7]);
  uint64_t p = pb;
  while (p < pe) {
    const uint64_t base = p & ~(stride - 1);
    const uint64_t run_end = std::min(pe, base + stride);
    // cmask > stride (control and target are distinct bits): the control
    // bit is constant across the whole run — decide once.
    if (!((base << 1) & cmask)) {
      p = run_end;
      continue;
    }
    uint64_t i0 = (base << 1) | (p & (stride - 1));
    for (; p + 4 <= run_end; p += 4, i0 += 4) {
      Update1QVec(re, im, i0, stride, m00r, m00i, m01r, m01i, m10r, m10i, m11r,
                  m11i);
    }
    for (; p < run_end; ++p, ++i0) {
      Update1QTail(re, im, i0, i0 + stride, m);
    }
  }
}

QDB_AVX2 void Diag1QRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                              uint64_t mask, const double* d) {
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256d d0r = _mm256_set1_pd(d[0]), d0i = _mm256_set1_pd(d[1]);
  const __m256d d1r = _mm256_set1_pd(d[2]), d1i = _mm256_set1_pd(d[3]);
  const __m256i vfour = _mm256_set1_epi64x(4);
  __m256i vi = _mm256_set_epi64x(
      static_cast<long long>(b + 3), static_cast<long long>(b + 2),
      static_cast<long long>(b + 1), static_cast<long long>(b));
  uint64_t i = b;
  for (; i + 4 <= e; i += 4, vi = _mm256_add_epi64(vi, vfour)) {
    const __m256d sel = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(vi, vmask), vmask));
    const __m256d dr = _mm256_blendv_pd(d0r, d1r, sel);
    const __m256d di = _mm256_blendv_pd(d0i, d1i, sel);
    const __m256d ar = _mm256_loadu_pd(re + i);
    const __m256d ai = _mm256_loadu_pd(im + i);
    _mm256_storeu_pd(
        re + i, _mm256_sub_pd(_mm256_mul_pd(ar, dr), _mm256_mul_pd(ai, di)));
    _mm256_storeu_pd(
        im + i, _mm256_add_pd(_mm256_mul_pd(ar, di), _mm256_mul_pd(ai, dr)));
  }
  if (i < e) Diag1QRangeScalar(re, im, i, e, mask, d);
}

QDB_AVX2 void Diag2QRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                              uint64_t amask, uint64_t bmask, const double* d) {
  const __m256i va = _mm256_set1_epi64x(static_cast<long long>(amask));
  const __m256i vb = _mm256_set1_epi64x(static_cast<long long>(bmask));
  const __m256d d0r = _mm256_set1_pd(d[0]), d0i = _mm256_set1_pd(d[1]);
  const __m256d d1r = _mm256_set1_pd(d[2]), d1i = _mm256_set1_pd(d[3]);
  const __m256d d2r = _mm256_set1_pd(d[4]), d2i = _mm256_set1_pd(d[5]);
  const __m256d d3r = _mm256_set1_pd(d[6]), d3i = _mm256_set1_pd(d[7]);
  const __m256i vfour = _mm256_set1_epi64x(4);
  __m256i vi = _mm256_set_epi64x(
      static_cast<long long>(b + 3), static_cast<long long>(b + 2),
      static_cast<long long>(b + 1), static_cast<long long>(b));
  uint64_t i = b;
  for (; i + 4 <= e; i += 4, vi = _mm256_add_epi64(vi, vfour)) {
    const __m256d sela = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(vi, va), va));
    const __m256d selb = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(vi, vb), vb));
    // idx = (abit ? 2 : 0) | (bbit ? 1 : 0): inner blend on the b bit,
    // outer blend on the a bit.
    const __m256d dr = _mm256_blendv_pd(_mm256_blendv_pd(d0r, d1r, selb),
                                        _mm256_blendv_pd(d2r, d3r, selb), sela);
    const __m256d di = _mm256_blendv_pd(_mm256_blendv_pd(d0i, d1i, selb),
                                        _mm256_blendv_pd(d2i, d3i, selb), sela);
    const __m256d ar = _mm256_loadu_pd(re + i);
    const __m256d ai = _mm256_loadu_pd(im + i);
    _mm256_storeu_pd(
        re + i, _mm256_sub_pd(_mm256_mul_pd(ar, dr), _mm256_mul_pd(ai, di)));
    _mm256_storeu_pd(
        im + i, _mm256_add_pd(_mm256_mul_pd(ar, di), _mm256_mul_pd(ai, dr)));
  }
  if (i < e) Diag2QRangeScalar(re, im, i, e, amask, bmask, d);
}

QDB_AVX2 void Apply2QRangeAvx2(double* re, double* im, uint64_t gb, uint64_t ge,
                               uint64_t amask, uint64_t bmask, uint64_t lo_keep,
                               uint64_t mid_keep, const double (*mr)[4],
                               const double (*mi)[4]) {
  // Need four consecutive groups with contiguous representatives, i.e. the
  // low operand bit at position >= 2.
  if ((lo_keep & 3) != 3) {
    Apply2QRangeScalar(re, im, gb, ge, amask, bmask, lo_keep, mid_keep, mr, mi);
    return;
  }
  uint64_t g = gb;
  while (g < ge) {
    const uint64_t run_end = std::min(ge, (g | lo_keep) + 1);
    uint64_t i = (g & lo_keep) | ((g & mid_keep) << 1) |
                 ((g & ~(lo_keep | mid_keep)) << 2);
    for (; g + 4 <= run_end; g += 4, i += 4) {
      // Both operand bits are clear in i, so OR-ing masks is addition and
      // each of the four basis offsets is a contiguous 4-element stream.
      const uint64_t idx[4] = {i, i + bmask, i + amask, i + amask + bmask};
      __m256d vr[4], vvi[4];
      for (int c = 0; c < 4; ++c) {
        vr[c] = _mm256_loadu_pd(re + idx[c]);
        vvi[c] = _mm256_loadu_pd(im + idx[c]);
      }
      for (int r = 0; r < 4; ++r) {
        __m256d out_r = _mm256_setzero_pd();
        __m256d out_i = _mm256_setzero_pd();
        for (int col = 0; col < 4; ++col) {
          const __m256d cr = _mm256_set1_pd(mr[r][col]);
          const __m256d ci = _mm256_set1_pd(mi[r][col]);
          out_r = _mm256_add_pd(
              out_r,
              _mm256_sub_pd(_mm256_mul_pd(cr, vr[col]),
                            _mm256_mul_pd(ci, vvi[col])));
          out_i = _mm256_add_pd(
              out_i,
              _mm256_add_pd(_mm256_mul_pd(cr, vvi[col]),
                            _mm256_mul_pd(ci, vr[col])));
        }
        _mm256_storeu_pd(re + idx[r], out_r);
        _mm256_storeu_pd(im + idx[r], out_i);
      }
    }
    if (g < run_end) {
      Apply2QRangeScalar(re, im, g, run_end, amask, bmask, lo_keep, mid_keep,
                         mr, mi);
      g = run_end;
    }
  }
}

QDB_AVX2 void NormsRangeAvx2(const double* re, const double* im, uint64_t b,
                             uint64_t e, double* out) {
  uint64_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m256d ar = _mm256_loadu_pd(re + i);
    const __m256d ai = _mm256_loadu_pd(im + i);
    _mm256_storeu_pd(
        out + i, _mm256_add_pd(_mm256_mul_pd(ar, ar), _mm256_mul_pd(ai, ai)));
  }
  for (; i < e; ++i) out[i] = re[i] * re[i] + im[i] * im[i];
}

QDB_AVX2 double NormSqRangeAvx2(const double* re, const double* im, uint64_t b,
                                uint64_t e) {
  __m256d acc = _mm256_setzero_pd();
  uint64_t i = b;
  for (; i + 4 <= e; i += 4) {
    const __m256d ar = _mm256_loadu_pd(re + i);
    const __m256d ai = _mm256_loadu_pd(im + i);
    acc = _mm256_add_pd(acc,
                        _mm256_add_pd(_mm256_mul_pd(ar, ar),
                                      _mm256_mul_pd(ai, ai)));
  }
  double tail[4] = {0.0, 0.0, 0.0, 0.0};
  for (; i < e; ++i) tail[(i - b) & 3] += re[i] * re[i] + im[i] * im[i];
  return ReduceLanes(acc, tail);
}

QDB_AVX2 double MaskedNormSqRangeAvx2(const double* re, const double* im,
                                      uint64_t b, uint64_t e, uint64_t mask) {
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vfour = _mm256_set1_epi64x(4);
  __m256i vi = _mm256_set_epi64x(
      static_cast<long long>(b + 3), static_cast<long long>(b + 2),
      static_cast<long long>(b + 1), static_cast<long long>(b));
  __m256d acc = _mm256_setzero_pd();
  uint64_t i = b;
  for (; i + 4 <= e; i += 4, vi = _mm256_add_epi64(vi, vfour)) {
    const __m256d hit = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(vi, vmask), vmask));
    const __m256d ar = _mm256_loadu_pd(re + i);
    const __m256d ai = _mm256_loadu_pd(im + i);
    const __m256d v = _mm256_and_pd(
        _mm256_add_pd(_mm256_mul_pd(ar, ar), _mm256_mul_pd(ai, ai)), hit);
    acc = _mm256_add_pd(acc, v);
  }
  double tail[4] = {0.0, 0.0, 0.0, 0.0};
  for (; i < e; ++i) {
    const double v =
        ((i & mask) == mask) ? re[i] * re[i] + im[i] * im[i] : 0.0;
    tail[(i - b) & 3] += v;
  }
  return ReduceLanes(acc, tail);
}

QDB_AVX2 double CollapseRangeAvx2(double* re, double* im, uint64_t b,
                                  uint64_t e, uint64_t mask, uint64_t keep) {
  const __m256i vmask = _mm256_set1_epi64x(static_cast<long long>(mask));
  const __m256i vkeep = _mm256_set1_epi64x(static_cast<long long>(keep));
  const __m256i vfour = _mm256_set1_epi64x(4);
  __m256i vi = _mm256_set_epi64x(
      static_cast<long long>(b + 3), static_cast<long long>(b + 2),
      static_cast<long long>(b + 1), static_cast<long long>(b));
  __m256d acc = _mm256_setzero_pd();
  uint64_t i = b;
  for (; i + 4 <= e; i += 4, vi = _mm256_add_epi64(vi, vfour)) {
    const __m256d hit = _mm256_castsi256_pd(
        _mm256_cmpeq_epi64(_mm256_and_si256(vi, vmask), vkeep));
    // Rejected lanes zero in place; their norm contribution is then an
    // exact +0.0, matching the scalar protocol.
    const __m256d ar = _mm256_and_pd(_mm256_loadu_pd(re + i), hit);
    const __m256d ai = _mm256_and_pd(_mm256_loadu_pd(im + i), hit);
    _mm256_storeu_pd(re + i, ar);
    _mm256_storeu_pd(im + i, ai);
    acc = _mm256_add_pd(acc,
                        _mm256_add_pd(_mm256_mul_pd(ar, ar),
                                      _mm256_mul_pd(ai, ai)));
  }
  double tail[4] = {0.0, 0.0, 0.0, 0.0};
  for (; i < e; ++i) {
    double v = 0.0;
    if ((i & mask) == keep) {
      v = re[i] * re[i] + im[i] * im[i];
    } else {
      re[i] = 0.0;
      im[i] = 0.0;
    }
    tail[(i - b) & 3] += v;
  }
  return ReduceLanes(acc, tail);
}

QDB_AVX2 void DivRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                           double divisor) {
  const __m256d vd = _mm256_set1_pd(divisor);
  uint64_t i = b;
  for (; i + 4 <= e; i += 4) {
    _mm256_storeu_pd(re + i, _mm256_div_pd(_mm256_loadu_pd(re + i), vd));
    _mm256_storeu_pd(im + i, _mm256_div_pd(_mm256_loadu_pd(im + i), vd));
  }
  for (; i < e; ++i) {
    re[i] /= divisor;
    im[i] /= divisor;
  }
}

}  // namespace simd
}  // namespace qdb

#else  // !x86: the dispatcher never selects kAvx2, but keep the symbols.

namespace qdb {
namespace simd {

void Apply1QRangeAvx2(double* re, double* im, uint64_t pb, uint64_t pe,
                      uint64_t stride, const double* m) {
  Apply1QRangeScalar(re, im, pb, pe, stride, m);
}
void Controlled1QRangeAvx2(double* re, double* im, uint64_t pb, uint64_t pe,
                           uint64_t stride, uint64_t cmask, const double* m) {
  Controlled1QRangeScalar(re, im, pb, pe, stride, cmask, m);
}
void Diag1QRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                     uint64_t mask, const double* d) {
  Diag1QRangeScalar(re, im, b, e, mask, d);
}
void Diag2QRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                     uint64_t amask, uint64_t bmask, const double* d) {
  Diag2QRangeScalar(re, im, b, e, amask, bmask, d);
}
void Apply2QRangeAvx2(double* re, double* im, uint64_t gb, uint64_t ge,
                      uint64_t amask, uint64_t bmask, uint64_t lo_keep,
                      uint64_t mid_keep, const double (*mr)[4],
                      const double (*mi)[4]) {
  Apply2QRangeScalar(re, im, gb, ge, amask, bmask, lo_keep, mid_keep, mr, mi);
}
void NormsRangeAvx2(const double* re, const double* im, uint64_t b, uint64_t e,
                    double* out) {
  NormsRangeScalar(re, im, b, e, out);
}
double NormSqRangeAvx2(const double* re, const double* im, uint64_t b,
                       uint64_t e) {
  return NormSqRangeScalar(re, im, b, e);
}
double MaskedNormSqRangeAvx2(const double* re, const double* im, uint64_t b,
                             uint64_t e, uint64_t mask) {
  return MaskedNormSqRangeScalar(re, im, b, e, mask);
}
double CollapseRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                         uint64_t mask, uint64_t keep) {
  return CollapseRangeScalar(re, im, b, e, mask, keep);
}
void DivRangeAvx2(double* re, double* im, uint64_t b, uint64_t e,
                  double divisor) {
  DivRangeScalar(re, im, b, e, divisor);
}

}  // namespace simd
}  // namespace qdb

#endif
