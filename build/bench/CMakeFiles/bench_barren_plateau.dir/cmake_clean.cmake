file(REMOVE_RECURSE
  "CMakeFiles/bench_barren_plateau.dir/bench_barren_plateau.cc.o"
  "CMakeFiles/bench_barren_plateau.dir/bench_barren_plateau.cc.o.d"
  "bench_barren_plateau"
  "bench_barren_plateau.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_barren_plateau.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
