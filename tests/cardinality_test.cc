// Tests for the cardinality-estimation substrate and the VQR regressor.

#include <gtest/gtest.h>

#include <cmath>

#include "db/cardinality.h"
#include "variational/vqr.h"

namespace qdb {
namespace {

TEST(SyntheticTableTest, UniformMarginals) {
  Rng rng(3);
  SyntheticTable table = MakeCorrelatedTable(4000, 2, 0.8, rng);
  EXPECT_EQ(table.num_rows(), 4000);
  EXPECT_EQ(table.num_columns(), 2);
  // Despite correlation, each column's marginal stays uniform: mean ≈ 0.5.
  for (int c = 0; c < 2; ++c) {
    double mean = 0.0;
    for (const auto& row : table.rows) mean += row[c];
    mean /= table.num_rows();
    EXPECT_NEAR(mean, 0.5, 0.02);
  }
}

TEST(SyntheticTableTest, CorrelationKnobWorks) {
  Rng rng(5);
  auto column_correlation = [](const SyntheticTable& t) {
    double mx = 0, my = 0;
    for (const auto& r : t.rows) {
      mx += r[0];
      my += r[1];
    }
    mx /= t.num_rows();
    my /= t.num_rows();
    double cov = 0, vx = 0, vy = 0;
    for (const auto& r : t.rows) {
      cov += (r[0] - mx) * (r[1] - my);
      vx += (r[0] - mx) * (r[0] - mx);
      vy += (r[1] - my) * (r[1] - my);
    }
    return cov / std::sqrt(vx * vy);
  };
  SyntheticTable indep = MakeCorrelatedTable(3000, 2, 0.0, rng);
  SyntheticTable strong = MakeCorrelatedTable(3000, 2, 0.95, rng);
  EXPECT_NEAR(column_correlation(indep), 0.0, 0.05);
  EXPECT_GT(column_correlation(strong), 0.7);
}

TEST(RangeQueryTest, TrueSelectivityByScan) {
  SyntheticTable table;
  table.rows = {{0.1, 0.9}, {0.5, 0.5}, {0.9, 0.1}};
  RangeQuery q{{0.0, 0.4}, {0.6, 1.0}};  // col0 in [0, .6), col1 in [.4, 1).
  EXPECT_NEAR(q.TrueSelectivity(table), 2.0 / 3.0, 1e-12);
}

TEST(RangeQueryTest, FeatureFlattening) {
  RangeQuery q{{0.1, 0.3}, {0.2, 0.8}};
  EXPECT_EQ(q.ToFeatures(), (DVector{0.1, 0.2, 0.3, 0.8}));
}

TEST(RangeQueryTest, RandomQueriesAreValidIntervals) {
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    RangeQuery q = RandomRangeQuery(3, rng, 0.1);
    for (int c = 0; c < 3; ++c) {
      EXPECT_GE(q.lo[c], 0.0);
      EXPECT_LE(q.hi[c], 1.0 + 1e-12);
      EXPECT_GE(q.hi[c] - q.lo[c], 0.1 - 1e-12);
    }
  }
}

TEST(IndependenceEstimatorTest, ExactOnIndependentData) {
  Rng rng(9);
  SyntheticTable table = MakeCorrelatedTable(8000, 2, 0.0, rng);
  auto est = IndependenceEstimator::Build(table, 32);
  Rng qrng(11);
  for (int i = 0; i < 10; ++i) {
    RangeQuery q = RandomRangeQuery(2, qrng, 0.2);
    const double truth = q.TrueSelectivity(table);
    EXPECT_NEAR(est.Estimate(q), truth, 0.05) << i;
  }
}

TEST(IndependenceEstimatorTest, BreaksOnCorrelatedData) {
  // The attribute-independence assumption must visibly fail on strongly
  // correlated columns for some diagonal-ish query.
  Rng rng(13);
  SyntheticTable table = MakeCorrelatedTable(8000, 2, 0.95, rng);
  auto est = IndependenceEstimator::Build(table, 32);
  // Anti-diagonal box: low col0, high col1 — rare under correlation but
  // "likely" under independence.
  RangeQuery q{{0.0, 0.6}, {0.4, 1.0}};
  const double truth = q.TrueSelectivity(table);
  const double estimate = est.Estimate(q);
  EXPECT_GT(QError(estimate, truth), 1.5);
}

TEST(SamplingEstimateTest, ConvergesWithSamples) {
  Rng rng(15);
  SyntheticTable table = MakeCorrelatedTable(5000, 2, 0.5, rng);
  RangeQuery q{{0.2, 0.2}, {0.8, 0.8}};
  const double truth = q.TrueSelectivity(table);
  Rng srng(17);
  const double estimate = SamplingEstimate(table, q, 5000, srng);
  EXPECT_NEAR(estimate, truth, 0.03);
}

TEST(QErrorTest, SymmetricAndFloored) {
  EXPECT_NEAR(QError(0.1, 0.2), 2.0, 1e-12);
  EXPECT_NEAR(QError(0.2, 0.1), 2.0, 1e-12);
  EXPECT_NEAR(QError(1.0, 1.0), 1.0, 1e-12);
  EXPECT_NEAR(QError(0.0, 1.0), 1.0 / 1e-4, 1e-6);  // Floor kicks in.
}

TEST(SelectivityTargetTest, RoundTripOnLogGrid) {
  for (double sel : {1.0, 0.1, 0.01, 0.001, 0.0001}) {
    const double target = SelectivityToTarget(sel);
    EXPECT_GE(target, -1.0);
    EXPECT_LE(target, 1.0);
    EXPECT_NEAR(TargetToSelectivity(target), sel, 1e-9 * sel + 1e-12);
  }
  EXPECT_NEAR(SelectivityToTarget(1.0), 1.0, 1e-12);
  EXPECT_NEAR(SelectivityToTarget(1e-4), -1.0, 1e-12);
}

TEST(VqrTest, FitsSmoothFunction) {
  // Regression sanity: learn y = sin(x) on [0, π] from 12 points.
  std::vector<DVector> xs;
  DVector ys;
  for (int i = 0; i < 12; ++i) {
    const double x = M_PI * i / 11.0;
    xs.push_back({x});
    ys.push_back(std::sin(x) * 0.9);  // Keep targets inside (−1, 1).
  }
  VqrOptions opts;
  opts.ansatz_layers = 3;
  opts.adam.max_iterations = 150;
  opts.adam.learning_rate = 0.15;
  auto model = VqrRegressor::Train(xs, ys, opts);
  ASSERT_TRUE(model.ok()) << model.status();
  double worst = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    worst = std::max(worst,
                     std::abs(model.value().Predict(xs[i]).ValueOrDie() - ys[i]));
  }
  EXPECT_LT(worst, 0.15);
  EXPECT_LT(model.value().loss_history().back(),
            model.value().loss_history().front());
}

TEST(VqrTest, Validation) {
  EXPECT_FALSE(VqrRegressor::Train({{0.1}}, {0.5}, {}).ok());  // One sample.
  EXPECT_FALSE(
      VqrRegressor::Train({{0.1}, {0.2}}, {0.5}, {}).ok());  // Count mismatch.
  EXPECT_FALSE(
      VqrRegressor::Train({{0.1}, {0.2}}, {0.5, 2.0}, {}).ok());  // Range.
  EXPECT_FALSE(
      VqrRegressor::Train({{0.1}, {0.2, 0.3}}, {0.5, 0.1}, {}).ok());  // Dims.
  VqrOptions bad;
  bad.ansatz_layers = 0;
  EXPECT_FALSE(VqrRegressor::Train({{0.1}, {0.2}}, {0.5, 0.1}, bad).ok());
}

TEST(VqrTest, PredictValidatesDimensions) {
  std::vector<DVector> xs = {{0.1, 0.2}, {0.3, 0.4}, {0.5, 0.6}};
  DVector ys = {0.1, 0.2, 0.3};
  VqrOptions opts;
  opts.adam.max_iterations = 3;
  auto model = VqrRegressor::Train(xs, ys, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().Predict({0.1}).ok());
}

}  // namespace
}  // namespace qdb
