file(REMOVE_RECURSE
  "CMakeFiles/bench_txn_schedule.dir/bench_txn_schedule.cc.o"
  "CMakeFiles/bench_txn_schedule.dir/bench_txn_schedule.cc.o.d"
  "bench_txn_schedule"
  "bench_txn_schedule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_txn_schedule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
