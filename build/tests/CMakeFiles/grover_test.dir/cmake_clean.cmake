file(REMOVE_RECURSE
  "CMakeFiles/grover_test.dir/grover_test.cc.o"
  "CMakeFiles/grover_test.dir/grover_test.cc.o.d"
  "grover_test"
  "grover_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grover_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
