#include "sim/density_matrix.h"

#include <cmath>

namespace qdb {

DensityMatrix::DensityMatrix(int num_qubits)
    : num_qubits_(num_qubits), vec_(2 * num_qubits) {
  QDB_CHECK_GT(num_qubits, 0);
  QDB_CHECK_LE(num_qubits, 12);
  // |0⟩⟨0| vectorizes to amplitude 1 at index 0 — the StateVector default.
}

DensityMatrix DensityMatrix::FromStateVector(const StateVector& psi) {
  DensityMatrix rho(psi.num_qubits());
  const uint64_t d = psi.dim();
  double* vr = rho.vec_.reals();
  double* vi = rho.vec_.imags();
  const double* ar = psi.reals();
  const double* ai = psi.imags();
  for (uint64_t r = 0; r < d; ++r) {
    const Complex row_amp(ar[r], ai[r]);
    for (uint64_t c = 0; c < d; ++c) {
      const Complex v = row_amp * std::conj(Complex(ar[c], ai[c]));
      vr[r * d + c] = v.real();
      vi[r * d + c] = v.imag();
    }
  }
  return rho;
}

Complex DensityMatrix::Element(uint64_t row, uint64_t col) const {
  QDB_CHECK_LT(row, dim());
  QDB_CHECK_LT(col, dim());
  return vec_.amplitude(row * dim() + col);
}

double DensityMatrix::TraceValue() const {
  const uint64_t d = dim();
  double acc = 0.0;
  for (uint64_t i = 0; i < d; ++i) acc += vec_.reals()[i * d + i];
  return acc;
}

double DensityMatrix::Purity() const {
  // Tr(ρ²) = Σ_{rc} |ρ_rc|² for Hermitian ρ — the vectorized L2 norm².
  const double* re = vec_.reals();
  const double* im = vec_.imags();
  double acc = 0.0;
  for (uint64_t i = 0; i < vec_.dim(); ++i) acc += re[i] * re[i] + im[i] * im[i];
  return acc;
}

DVector DensityMatrix::Probabilities() const {
  const uint64_t d = dim();
  DVector out(d);
  for (uint64_t i = 0; i < d; ++i) out[i] = vec_.reals()[i * d + i];
  return out;
}

double DensityMatrix::ProbabilityOfOne(int qubit) const {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(qubit, num_qubits_);
  const uint64_t mask = uint64_t{1} << (num_qubits_ - 1 - qubit);
  const uint64_t d = dim();
  double p = 0.0;
  for (uint64_t i = 0; i < d; ++i) {
    if (i & mask) p += vec_.reals()[i * d + i];
  }
  return p;
}

double DensityMatrix::ExpectationOf(const PauliString& pauli) const {
  QDB_CHECK_EQ(pauli.num_qubits(), num_qubits_);
  const int n = num_qubits_;
  uint64_t xmask = 0, ymask = 0, zmask = 0;
  for (int q = 0; q < n; ++q) {
    const uint64_t bit = uint64_t{1} << (n - 1 - q);
    switch (pauli.op(q)) {
      case PauliOp::kI: break;
      case PauliOp::kX: xmask |= bit; break;
      case PauliOp::kY: xmask |= bit; ymask |= bit; break;
      case PauliOp::kZ: zmask |= bit; break;
    }
  }
  Complex i_power(1.0, 0.0);
  switch (__builtin_popcountll(ymask) & 3) {
    case 0: i_power = {1.0, 0.0}; break;
    case 1: i_power = {0.0, 1.0}; break;
    case 2: i_power = {-1.0, 0.0}; break;
    case 3: i_power = {0.0, -1.0}; break;
  }
  // P|i⟩ = phase(i)|i ^ xmask⟩ ⇒ Tr(ρP) = Σ_i ρ(i, i ^ xmask) · phase(i).
  const uint64_t d = dim();
  Complex acc(0.0, 0.0);
  for (uint64_t i = 0; i < d; ++i) {
    const int sign =
        (__builtin_popcountll(i & ymask) + __builtin_popcountll(i & zmask)) & 1;
    const Complex phase = i_power * (sign ? -1.0 : 1.0);
    acc += vec_.amplitude(i * d + (i ^ xmask)) * phase;
  }
  return acc.real();
}

double DensityMatrix::ExpectationOf(const PauliSum& observable) const {
  QDB_CHECK_EQ(observable.num_qubits(), num_qubits_);
  double total = 0.0;
  for (const auto& t : observable.terms()) {
    total += t.coefficient * ExpectationOf(t.pauli);
  }
  return total;
}

void DensityMatrix::ApplyUnitary(const std::vector<int>& qubits,
                                 const Matrix& u) {
  // Row side: qubits as-is; column side: shifted by n with conj(U).
  vec_.ApplyKQ(qubits, u);
  std::vector<int> col_qubits;
  col_qubits.reserve(qubits.size());
  for (int q : qubits) col_qubits.push_back(q + num_qubits_);
  vec_.ApplyKQ(col_qubits, u.Conjugate());
}

void DensityMatrix::ApplyKraus(const std::vector<int>& qubits,
                               const std::vector<Matrix>& kraus_ops) {
  QDB_CHECK(!kraus_ops.empty());
  std::vector<int> col_qubits;
  col_qubits.reserve(qubits.size());
  for (int q : qubits) col_qubits.push_back(q + num_qubits_);

  CVector accumulated(vec_.dim(), Complex(0.0, 0.0));
  const CVector original = vec_.ToAmplitudes();
  for (const auto& k : kraus_ops) {
    vec_.SetAmplitudes(original);
    vec_.ApplyKQ(qubits, k);
    vec_.ApplyKQ(col_qubits, k.Conjugate());
    const double* re = vec_.reals();
    const double* im = vec_.imags();
    for (size_t i = 0; i < accumulated.size(); ++i) {
      accumulated[i] += Complex(re[i], im[i]);
    }
  }
  vec_.SetAmplitudes(accumulated);
}

void DensityMatrix::ApplyMCX(const std::vector<int>& controls, int target) {
  vec_.ApplyMCX(controls, target);
  std::vector<int> col_controls;
  for (int c : controls) col_controls.push_back(c + num_qubits_);
  vec_.ApplyMCX(col_controls, target + num_qubits_);
}

void DensityMatrix::ApplyMCZ(const std::vector<int>& controls, int target) {
  vec_.ApplyMCZ(controls, target);
  std::vector<int> col_controls;
  for (int c : controls) col_controls.push_back(c + num_qubits_);
  vec_.ApplyMCZ(col_controls, target + num_qubits_);
}

std::map<uint64_t, int> DensityMatrix::SampleCounts(Rng& rng, int shots,
                                                    double readout_flip) const {
  QDB_CHECK_GE(shots, 0);
  QDB_CHECK_GE(readout_flip, 0.0);
  QDB_CHECK_LE(readout_flip, 1.0);
  DVector probs = Probabilities();
  // Clamp tiny negative diagonal values from numerical error.
  double total = 0.0;
  for (auto& p : probs) {
    if (p < 0.0) p = 0.0;
    total += p;
  }
  QDB_CHECK_GT(total, 0.0);
  std::map<uint64_t, int> counts;
  for (int s = 0; s < shots; ++s) {
    double target = rng.Uniform() * total;
    double acc = 0.0;
    uint64_t outcome = dim() - 1;
    for (uint64_t i = 0; i < dim(); ++i) {
      acc += probs[i];
      if (target < acc) {
        outcome = i;
        break;
      }
    }
    if (readout_flip > 0.0) {
      for (int q = 0; q < num_qubits_; ++q) {
        if (rng.Bernoulli(readout_flip)) {
          outcome ^= uint64_t{1} << (num_qubits_ - 1 - q);
        }
      }
    }
    ++counts[outcome];
  }
  return counts;
}

Matrix DensityMatrix::ToMatrix() const {
  const uint64_t d = dim();
  Matrix out(d, d);
  for (uint64_t r = 0; r < d; ++r) {
    for (uint64_t c = 0; c < d; ++c) {
      out(r, c) = vec_.amplitude(r * d + c);
    }
  }
  return out;
}

}  // namespace qdb
