file(REMOVE_RECURSE
  "CMakeFiles/transaction_scheduler.dir/transaction_scheduler.cpp.o"
  "CMakeFiles/transaction_scheduler.dir/transaction_scheduler.cpp.o.d"
  "transaction_scheduler"
  "transaction_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transaction_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
