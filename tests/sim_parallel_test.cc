// Serial-vs-parallel equivalence for the simulator stack: every result that
// flows through the ThreadPool (amplitude kernels, batched runs, sampling,
// gradients, Gram matrices) must be bit-identical to the QDB_THREADS=1 run.

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "autodiff/adjoint.h"
#include "autodiff/expectation.h"
#include "autodiff/parameter_shift.h"
#include "common/thread_pool.h"
#include "kernel/quantum_kernel.h"
#include "sim/state_vector.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

/// Sets the global pool width for one scope, restoring one lane on exit so
/// tests cannot leak parallelism into each other.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { ThreadPool::SetGlobalThreads(n); }
  ~ScopedThreads() { ThreadPool::SetGlobalThreads(1); }
};

/// A 15-qubit circuit (dim 2^15, above kParallelAmplitudeThreshold) touching
/// every parallelized kernel family: dense 1Q, controlled 1Q, diagonal 1Q,
/// diagonal 2Q, and generic dense 2Q.
Circuit WideMixedCircuit() {
  const int n = 15;
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.H(q);
  for (int q = 0; q < n; ++q) c.RY(q, 0.1 * (q + 1));
  for (int q = 0; q + 1 < n; ++q) c.CX(q, q + 1);
  for (int q = 0; q < n; ++q) c.RZ(q, 0.05 * (q + 3));
  c.RZZ(0, 7, 0.4).RZZ(3, 11, -0.7);
  c.RXX(1, 8, 0.6).RYY(2, 9, 0.3);
  c.CRZ(4, 10, 0.9).CP(5, 12, -0.2);
  return c;
}

TEST(SimParallelTest, AmplitudesBitIdenticalSerialVsParallel) {
  const Circuit c = WideMixedCircuit();
  StateVectorSimulator sim;

  ThreadPool::SetGlobalThreads(1);
  auto serial = sim.Run(c);
  ASSERT_TRUE(serial.ok());

  ScopedThreads threads(4);
  auto parallel = sim.Run(c);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(serial.value().dim(), parallel.value().dim());
  for (uint64_t i = 0; i < serial.value().dim(); ++i) {
    ASSERT_EQ(serial.value().amplitude(i), parallel.value().amplitude(i))
        << "amplitude " << i;
  }
}

TEST(SimParallelTest, ReductionsBitIdenticalSerialVsParallel) {
  const Circuit c = WideMixedCircuit();
  StateVectorSimulator sim;
  const PauliString zz =
      PauliString::Parse("ZIIIZIIIIIIIIII").value();

  ThreadPool::SetGlobalThreads(1);
  auto s = sim.Run(c);
  ASSERT_TRUE(s.ok());
  const double p1_serial = s.value().ProbabilityOfOne(6);
  const double e_serial = Expectation(s.value(), zz);
  const DVector probs_serial = s.value().Probabilities();

  ScopedThreads threads(4);
  auto p = sim.Run(c);
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p1_serial, p.value().ProbabilityOfOne(6));
  EXPECT_EQ(e_serial, Expectation(p.value(), zz));
  const DVector probs_parallel = p.value().Probabilities();
  ASSERT_EQ(probs_serial.size(), probs_parallel.size());
  for (size_t i = 0; i < probs_serial.size(); ++i) {
    ASSERT_EQ(probs_serial[i], probs_parallel[i]) << "probability " << i;
  }
}

TEST(SimParallelTest, RunBatchMatchesSerialRunLoop) {
  StateVectorSimulator sim;
  std::vector<Circuit> circuits;
  for (int k = 0; k < 5; ++k) {
    Circuit c(3);
    c.H(0).RY(1, 0.2 * (k + 1)).CX(0, 2).RZ(2, ParamExpr::Variable(0));
    circuits.push_back(std::move(c));
  }
  const std::vector<DVector> params = {{0.3}, {0.6}, {0.9}, {1.2}, {1.5}};

  ScopedThreads threads(4);
  auto batch = sim.RunBatch(circuits, params);
  ASSERT_TRUE(batch.ok());
  ASSERT_EQ(batch.value().size(), circuits.size());
  for (size_t k = 0; k < circuits.size(); ++k) {
    auto one = sim.Run(circuits[k], params[k]);
    ASSERT_TRUE(one.ok());
    for (uint64_t i = 0; i < one.value().dim(); ++i) {
      ASSERT_EQ(batch.value()[k].amplitude(i), one.value().amplitude(i));
    }
  }
}

TEST(SimParallelTest, RunBatchBroadcastRules) {
  StateVectorSimulator sim;
  Circuit c(2);
  c.RY(0, ParamExpr::Variable(0)).CX(0, 1);

  ScopedThreads threads(4);
  // One circuit, many parameter vectors.
  auto fan = sim.RunBatch({c}, {{0.1}, {0.2}, {0.3}});
  ASSERT_TRUE(fan.ok());
  EXPECT_EQ(fan.value().size(), 3u);
  // Mismatched multi-sizes must be rejected.
  Circuit d(2);
  d.H(0);
  EXPECT_FALSE(sim.RunBatch({c, d}, {{0.1}, {0.2}, {0.3}}).ok());
  // Empty batch is a no-op.
  auto empty = sim.RunBatch({}, {});
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(SimParallelTest, SampleBatchDeterministicAcrossThreadCounts) {
  StateVectorSimulator sim;
  std::vector<Circuit> circuits;
  for (int k = 0; k < 4; ++k) {
    Circuit c(4);
    for (int q = 0; q < 4; ++q) c.H(q);
    c.RY(k % 4, 0.3 * (k + 1));
    circuits.push_back(std::move(c));
  }

  ThreadPool::SetGlobalThreads(1);
  Rng rng_serial(42);
  auto serial = sim.SampleBatch(circuits, {}, 500, rng_serial);
  ASSERT_TRUE(serial.ok());

  ScopedThreads threads(4);
  Rng rng_parallel(42);
  auto parallel = sim.SampleBatch(circuits, {}, 500, rng_parallel);
  ASSERT_TRUE(parallel.ok());

  ASSERT_EQ(serial.value().size(), parallel.value().size());
  for (size_t k = 0; k < serial.value().size(); ++k) {
    EXPECT_EQ(serial.value()[k], parallel.value()[k]) << "batch entry " << k;
  }
}

TEST(SimParallelTest, GradientsBitIdenticalAcrossThreadCounts) {
  Circuit c(4);
  int v = 0;
  for (int q = 0; q < 4; ++q) c.RY(q, ParamExpr::Variable(v++));
  for (int q = 0; q + 1 < 4; ++q) c.CX(q, q + 1);
  c.CRZ(0, 3, ParamExpr::Variable(v++));           // Four-term rule.
  c.RZZ(1, 2, ParamExpr::Variable(v++));           // Two-term, two-qubit.
  const PauliSum h = PauliSum(4).Add(1.0, "ZZII").Add(-0.5, "IIXX");
  ExpectationFunction f(std::move(c), h);
  const DVector theta = {0.3, -0.4, 0.8, 1.1, 0.6, -0.9};

  ThreadPool::SetGlobalThreads(1);
  auto ps_serial = ParameterShiftGradient(f, theta);
  auto fd_serial = FiniteDifferenceGradient(f, theta);
  auto ad_serial = AdjointGradient(f.circuit(), f.observable(), theta);
  ASSERT_TRUE(ps_serial.ok());
  ASSERT_TRUE(fd_serial.ok());
  ASSERT_TRUE(ad_serial.ok());

  ScopedThreads threads(4);
  auto ps = ParameterShiftGradient(f, theta);
  auto fd = FiniteDifferenceGradient(f, theta);
  auto ad = AdjointGradient(f.circuit(), f.observable(), theta);
  ASSERT_TRUE(ps.ok());
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(ad.ok());

  for (size_t k = 0; k < theta.size(); ++k) {
    EXPECT_EQ(ps_serial.value()[k], ps.value()[k]) << "param-shift " << k;
    EXPECT_EQ(fd_serial.value()[k], fd.value()[k]) << "finite-diff " << k;
    EXPECT_EQ(ad_serial.value().gradient[k], ad.value().gradient[k])
        << "adjoint " << k;
  }
  // Cross-check the two exact methods agree physically.
  for (size_t k = 0; k < theta.size(); ++k) {
    EXPECT_NEAR(ps.value()[k], ad.value().gradient[k], 1e-9);
  }
}

TEST(SimParallelTest, GramMatrixBitIdenticalAcrossThreadCounts) {
  const FidelityQuantumKernel kernel = MakeAngleKernel(1.0);
  const std::vector<DVector> xs = {
      {0.1, 0.9}, {0.5, -0.3}, {-0.7, 0.2}, {1.1, 0.4}, {-0.2, -0.8}};

  ThreadPool::SetGlobalThreads(1);
  auto serial = kernel.GramMatrix(xs);
  ASSERT_TRUE(serial.ok());

  ScopedThreads threads(4);
  auto parallel = kernel.GramMatrix(xs);
  ASSERT_TRUE(parallel.ok());
  auto cross = kernel.CrossMatrix(xs, xs);
  ASSERT_TRUE(cross.ok());

  for (size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(serial.value()(i, i).real(), 1.0);
    for (size_t j = 0; j < xs.size(); ++j) {
      EXPECT_EQ(serial.value()(i, j), parallel.value()(i, j))
          << "entry " << i << "," << j;
      EXPECT_NEAR(cross.value()(i, j).real(), serial.value()(i, j).real(),
                  1e-12);
    }
  }
}

}  // namespace
}  // namespace qdb
