file(REMOVE_RECURSE
  "CMakeFiles/bench_qaoa_maxcut.dir/bench_qaoa_maxcut.cc.o"
  "CMakeFiles/bench_qaoa_maxcut.dir/bench_qaoa_maxcut.cc.o.d"
  "bench_qaoa_maxcut"
  "bench_qaoa_maxcut.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qaoa_maxcut.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
