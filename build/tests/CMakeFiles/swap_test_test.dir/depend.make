# Empty dependencies file for swap_test_test.
# This may be replaced when dependencies are built.
