file(REMOVE_RECURSE
  "CMakeFiles/random_unitary_test.dir/random_unitary_test.cc.o"
  "CMakeFiles/random_unitary_test.dir/random_unitary_test.cc.o.d"
  "random_unitary_test"
  "random_unitary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_unitary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
