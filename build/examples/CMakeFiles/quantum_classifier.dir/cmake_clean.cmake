file(REMOVE_RECURSE
  "CMakeFiles/quantum_classifier.dir/quantum_classifier.cpp.o"
  "CMakeFiles/quantum_classifier.dir/quantum_classifier.cpp.o.d"
  "quantum_classifier"
  "quantum_classifier.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantum_classifier.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
