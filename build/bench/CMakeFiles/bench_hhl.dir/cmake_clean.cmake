file(REMOVE_RECURSE
  "CMakeFiles/bench_hhl.dir/bench_hhl.cc.o"
  "CMakeFiles/bench_hhl.dir/bench_hhl.cc.o.d"
  "bench_hhl"
  "bench_hhl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hhl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
