/// \file pauli.h
/// \brief Pauli-string observables and Hamiltonians (PauliSum).
///
/// A PauliString is a tensor product of single-qubit Paulis over n qubits;
/// a PauliSum is a real-weighted sum of strings — the observable/Hamiltonian
/// representation used by expectation values, VQE, and QAOA.

#ifndef QDB_OPS_PAULI_H_
#define QDB_OPS_PAULI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// Single-qubit Pauli operator label.
enum class PauliOp : uint8_t { kI = 0, kX = 1, kY = 2, kZ = 3 };

/// \brief A tensor product of single-qubit Paulis, e.g. "XIZY".
///
/// Qubit 0 is the first character. Identity-only strings are allowed.
class PauliString {
 public:
  /// All-identity string on `num_qubits` qubits.
  explicit PauliString(int num_qubits);

  /// Parses a label like "XIZZ" (characters I, X, Y, Z; qubit 0 first).
  static Result<PauliString> Parse(const std::string& label);

  /// Identity except `op` at `qubit`.
  static PauliString Single(int num_qubits, int qubit, PauliOp op);

  int num_qubits() const { return static_cast<int>(ops_.size()); }
  PauliOp op(int qubit) const;
  void set_op(int qubit, PauliOp op);

  /// Number of non-identity factors.
  int Weight() const;

  /// True if every factor is I or Z (diagonal in the computational basis).
  bool IsDiagonal() const;

  /// Label such as "XIZY".
  std::string ToString() const;

  /// Dense 2^n x 2^n matrix (qubit 0 = most significant index bit).
  Matrix ToMatrix() const;

  bool operator==(const PauliString& other) const { return ops_ == other.ops_; }
  bool operator<(const PauliString& other) const { return ops_ < other.ops_; }

 private:
  std::vector<PauliOp> ops_;
};

/// \brief One weighted term of a PauliSum.
struct PauliTerm {
  double coefficient;
  PauliString pauli;
};

/// \brief A Hermitian observable: Σ_k c_k · P_k with real c_k.
class PauliSum {
 public:
  /// The zero observable on `num_qubits` qubits.
  explicit PauliSum(int num_qubits);

  int num_qubits() const { return num_qubits_; }
  const std::vector<PauliTerm>& terms() const { return terms_; }
  size_t size() const { return terms_.size(); }

  /// Adds `coefficient * pauli`; the string width must match.
  PauliSum& Add(double coefficient, const PauliString& pauli);

  /// Adds `coefficient * Parse(label)`; aborts on a malformed label (used
  /// for literals in code; data-driven callers should Parse themselves).
  PauliSum& Add(double coefficient, const std::string& label);

  PauliSum operator+(const PauliSum& other) const;
  PauliSum operator*(double scale) const;

  /// Combines duplicate strings and drops terms with |c| <= tol.
  PauliSum Simplified(double tol = 1e-12) const;

  /// True if every term is diagonal (I/Z only).
  bool IsDiagonal() const;

  /// Dense matrix realization (use only for small n).
  Matrix ToMatrix() const;

  /// Diagonal entries of the matrix realization for I/Z-only sums, computed
  /// in O(terms · 2^n) without materializing the matrix.
  Result<DVector> DiagonalValues() const;

  /// Rendering like "1.5*ZZ + -0.5*XI".
  std::string ToString() const;

 private:
  int num_qubits_;
  std::vector<PauliTerm> terms_;
};

/// Single-qubit Pauli matrix for the label.
Matrix PauliMatrix(PauliOp op);

}  // namespace qdb

#endif  // QDB_OPS_PAULI_H_
