#include "variational/vqe.h"

#include "autodiff/adjoint.h"
#include "autodiff/parameter_shift.h"
#include "common/rng.h"
#include "linalg/eigen.h"
#include "obs/trace.h"

namespace qdb {

Result<VqeResult> RunVqe(const Circuit& ansatz, const PauliSum& hamiltonian,
                         const VqeOptions& options) {
  if (ansatz.num_qubits() != hamiltonian.num_qubits()) {
    return Status::InvalidArgument("ansatz and Hamiltonian widths differ");
  }
  if (ansatz.num_parameters() == 0) {
    return Status::InvalidArgument("ansatz has no trainable parameters");
  }
  QDB_TRACE_SCOPE("RunVqe", "train");
  ExpectationFunction f(ansatz, hamiltonian);

  Rng rng(options.seed);
  DVector initial =
      rng.UniformVector(f.num_parameters(), -options.init_scale,
                        options.init_scale);

  Objective objective = [&f](const DVector& p) { return f.Evaluate(p); };
  GradientFn gradient;
  if (options.gradient == GradientMethod::kAdjoint) {
    gradient = [&ansatz, &hamiltonian](const DVector& p) -> Result<DVector> {
      QDB_ASSIGN_OR_RETURN(AdjointResult r,
                           AdjointGradient(ansatz, hamiltonian, p));
      return r.gradient;
    };
  } else {
    gradient = [&f](const DVector& p) { return ParameterShiftGradient(f, p); };
  }
  QDB_ASSIGN_OR_RETURN(OptimizeResult opt,
                       MinimizeAdam(objective, gradient, initial, options.adam));

  VqeResult result;
  result.energy = opt.value;
  result.params = std::move(opt.params);
  result.history = std::move(opt.history);
  result.gradient_norms = std::move(opt.gradient_norm_history);
  result.circuit_evaluations = f.evaluation_count();
  return result;
}

Result<double> ExactGroundStateEnergy(const PauliSum& hamiltonian) {
  if (hamiltonian.num_qubits() > 10) {
    return Status::InvalidArgument(
        "exact diagonalization limited to 10 qubits");
  }
  if (hamiltonian.IsDiagonal()) {
    QDB_ASSIGN_OR_RETURN(DVector diag, hamiltonian.DiagonalValues());
    double best = diag[0];
    for (double v : diag) best = std::min(best, v);
    return best;
  }
  return MinEigenvalue(hamiltonian.ToMatrix());
}

}  // namespace qdb
