#include "encoding/encodings.h"

#include <cmath>

#include "common/strings.h"
#include "linalg/vector_ops.h"
#include "obs/trace.h"

namespace qdb {

Circuit BasisEncoding(const std::vector<uint8_t>& bits) {
  QDB_CHECK(!bits.empty());
  Circuit c(static_cast<int>(bits.size()));
  for (size_t q = 0; q < bits.size(); ++q) {
    QDB_CHECK(bits[q] == 0 || bits[q] == 1);
    if (bits[q]) c.X(static_cast<int>(q));
  }
  return c;
}

Circuit AngleEncoding(const DVector& features, RotationAxis axis,
                      double scale) {
  QDB_CHECK(!features.empty());
  QDB_TRACE_SCOPE("AngleEncoding", "encoding");
  Circuit c(static_cast<int>(features.size()));
  for (size_t q = 0; q < features.size(); ++q) {
    const int qi = static_cast<int>(q);
    const double angle = scale * features[q];
    switch (axis) {
      case RotationAxis::kX:
        c.RX(qi, angle);
        break;
      case RotationAxis::kY:
        c.RY(qi, angle);
        break;
      case RotationAxis::kZ:
        c.H(qi);
        c.RZ(qi, angle);
        break;
    }
  }
  return c;
}

Circuit ZZFeatureMap(const DVector& features, int reps) {
  QDB_CHECK(!features.empty());
  QDB_CHECK_GE(reps, 1);
  QDB_TRACE_SCOPE("ZZFeatureMap", "encoding");
  const int n = static_cast<int>(features.size());
  Circuit c(n);
  for (int r = 0; r < reps; ++r) {
    for (int q = 0; q < n; ++q) c.H(q);
    for (int q = 0; q < n; ++q) c.P(q, 2.0 * features[q]);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        c.RZZ(i, j, 2.0 * (M_PI - features[i]) * (M_PI - features[j]));
      }
    }
  }
  return c;
}

void AppendMultiplexedRY(Circuit& circuit, const std::vector<int>& controls,
                         int target, const DVector& angles) {
  QDB_CHECK_EQ(angles.size(), size_t{1} << controls.size());
  if (controls.empty()) {
    if (angles[0] != 0.0) circuit.RY(target, angles[0]);
    return;
  }
  // Split on the most significant selector bit c: conditioned on c = 0 the
  // target sees the first-half angle, on c = 1 the second-half angle.
  // Using RY(u)·CX·RY(v)·CX with u = (f+s)/2, v = (f−s)/2: the CX pair
  // conjugates the second RY into RY(−v) exactly when c = 1, giving
  // u + v = f (c = 0) and u − v = s (c = 1).
  const int c = controls.front();
  const std::vector<int> rest(controls.begin() + 1, controls.end());
  const size_t half = angles.size() / 2;
  DVector sum_half(half), diff_half(half);
  for (size_t i = 0; i < half; ++i) {
    sum_half[i] = (angles[i] + angles[i + half]) / 2.0;
    diff_half[i] = (angles[i] - angles[i + half]) / 2.0;
  }
  AppendMultiplexedRY(circuit, rest, target, sum_half);
  circuit.CX(c, target);
  AppendMultiplexedRY(circuit, rest, target, diff_half);
  circuit.CX(c, target);
}

Result<CVector> AmplitudeEncodedState(const DVector& x) {
  if (x.empty()) {
    return Status::InvalidArgument("amplitude encoding needs a non-empty vector");
  }
  double norm = Norm(x);
  if (norm <= 0.0) {
    return Status::InvalidArgument("amplitude encoding needs a non-zero vector");
  }
  size_t dim = 1;
  int n = 0;
  while (dim < x.size()) {
    dim <<= 1;
    ++n;
  }
  if (n == 0) {
    dim = 2;  // At least one qubit.
    n = 1;
  }
  CVector state(dim, Complex(0.0, 0.0));
  for (size_t i = 0; i < x.size(); ++i) state[i] = Complex(x[i] / norm, 0.0);
  return state;
}

Result<Circuit> AmplitudeEncoding(const DVector& x) {
  QDB_TRACE_SCOPE("AmplitudeEncoding", "encoding");
  QDB_ASSIGN_OR_RETURN(CVector state, AmplitudeEncodedState(x));
  const size_t dim = state.size();
  int n = 0;
  while ((size_t{1} << n) < dim) ++n;

  // Bottom-up tree of magnitudes: level ℓ has 2^ℓ nodes; leaves are the
  // (real) amplitudes. Each parent stores the Euclidean norm of its
  // children and the RY angle steering between them.
  std::vector<DVector> angles(n);  // angles[ℓ] has 2^ℓ entries.
  DVector values(dim);
  for (size_t i = 0; i < dim; ++i) values[i] = state[i].real();
  for (int level = n - 1; level >= 0; --level) {
    const size_t count = size_t{1} << level;
    DVector parents(count);
    angles[level].resize(count);
    for (size_t i = 0; i < count; ++i) {
      const double left = values[2 * i];
      const double right = values[2 * i + 1];
      const double r = std::hypot(left, right);
      parents[i] = r;
      angles[level][i] = r > 0.0 ? 2.0 * std::atan2(right, left) : 0.0;
    }
    values = std::move(parents);
  }

  Circuit circuit(n);
  for (int level = 0; level < n; ++level) {
    std::vector<int> controls;
    for (int q = 0; q < level; ++q) controls.push_back(q);
    AppendMultiplexedRY(circuit, controls, level, angles[level]);
  }
  return circuit;
}

}  // namespace qdb
