file(REMOVE_RECURSE
  "CMakeFiles/statevector_test.dir/statevector_test.cc.o"
  "CMakeFiles/statevector_test.dir/statevector_test.cc.o.d"
  "statevector_test"
  "statevector_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statevector_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
