// E5 — Barren plateaus in random parameterized circuits.
//
// Regenerates the McClean/Cerezo-style trainability figure the tutorial
// cites as the central obstacle for variational QML: the variance (over
// random parameter draws and circuit instances) of ∂E/∂θ_0 for a random
// hardware-efficient ansatz. Two series:
//  * global cost (⟨Z⊗...⊗Z⟩ over all qubits): Var decays exponentially in
//    the qubit count even at modest depth (Cerezo et al. — global cost
//    functions always plateau);
//  * local cost (⟨Z_0 Z_1⟩): Var saturates once the causal cone of the
//    differentiated gate stops growing — local costs remain trainable at
//    moderate depth.
// The depth sweep at fixed width shows the approach to the 2-design value.

#include <benchmark/benchmark.h>

#include <cmath>

#include "autodiff/parameter_shift.h"
#include "common/rng.h"
#include "variational/ansatz.h"

namespace qdb {
namespace {

PauliSum GlobalCost(int num_qubits) {
  PauliSum obs(num_qubits);
  PauliString all_z(num_qubits);
  for (int q = 0; q < num_qubits; ++q) all_z.set_op(q, PauliOp::kZ);
  obs.Add(1.0, all_z);
  return obs;
}

PauliSum LocalCost(int num_qubits) {
  PauliSum obs(num_qubits);
  PauliString zz(num_qubits);
  zz.set_op(0, PauliOp::kZ);
  if (num_qubits > 1) zz.set_op(1, PauliOp::kZ);
  obs.Add(1.0, zz);
  return obs;
}

double GradientVariance(int num_qubits, int layers, int samples,
                        const PauliSum& obs, uint64_t seed) {
  Rng rng(seed);
  double sum = 0.0, sum_sq = 0.0;
  for (int s = 0; s < samples; ++s) {
    Circuit ansatz =
        RandomHardwareEfficientAnsatz(num_qubits, layers, rng.Next());
    ExpectationFunction f(ansatz, obs);
    DVector params = rng.UniformVector(ansatz.num_parameters(), 0.0, 2 * M_PI);
    // Gradient of the first parameter only (the standard statistic).
    DVector grad = ParameterShiftGradient(f, params).ValueOrDie();
    sum += grad[0];
    sum_sq += grad[0] * grad[0];
  }
  const double mean = sum / samples;
  return sum_sq / samples - mean * mean;
}

void BM_BarrenPlateauGlobalCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int layers = 12;  // Deep enough to scramble.
  const int samples = 60;
  double variance = 0.0;
  for (auto _ : state) {
    variance = GradientVariance(n, layers, samples, GlobalCost(n), 17);
  }
  state.SetLabel("global Z^n cost");
  state.counters["qubits"] = n;
  state.counters["grad_variance"] = variance;
  state.counters["log2_variance"] =
      variance > 0 ? std::log2(variance) : -60.0;
}

BENCHMARK(BM_BarrenPlateauGlobalCost)
    ->DenseRange(2, 10, 1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void BM_BarrenPlateauLocalCost(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int layers = 12;
  const int samples = 60;
  double variance = 0.0;
  for (auto _ : state) {
    variance = GradientVariance(n, layers, samples, LocalCost(n), 17);
  }
  state.SetLabel("local ZZ cost");
  state.counters["qubits"] = n;
  state.counters["grad_variance"] = variance;
  state.counters["log2_variance"] =
      variance > 0 ? std::log2(variance) : -60.0;
}

BENCHMARK(BM_BarrenPlateauLocalCost)
    ->DenseRange(2, 10, 1)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

void BM_BarrenPlateauVsDepth(benchmark::State& state) {
  const int layers = static_cast<int>(state.range(0));
  const int n = 6;
  const int samples = 60;
  double variance = 0.0;
  for (auto _ : state) {
    variance = GradientVariance(n, layers, samples, GlobalCost(n), 23);
  }
  state.SetLabel("global cost, n=6");
  state.counters["layers"] = layers;
  state.counters["grad_variance"] = variance;
}

BENCHMARK(BM_BarrenPlateauVsDepth)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Arg(16)
    ->Arg(32)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
