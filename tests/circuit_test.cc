// Tests for the circuit IR: building, metadata, inverse, binding, append.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "sim/unitary_simulator.h"

namespace qdb {
namespace {

TEST(CircuitTest, EmptyCircuit) {
  Circuit c(3);
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_TRUE(c.empty());
  EXPECT_EQ(c.num_parameters(), 0);
  EXPECT_EQ(c.Depth(), 0);
}

TEST(CircuitTest, FluentBuilding) {
  Circuit c(2);
  c.H(0).CX(0, 1).RZ(1, 0.5);
  EXPECT_EQ(c.size(), 3u);
  EXPECT_EQ(c.gates()[0].type, GateType::kH);
  EXPECT_EQ(c.gates()[1].qubits, (std::vector<int>{0, 1}));
  EXPECT_EQ(c.gates()[2].params[0].offset, 0.5);
}

TEST(CircuitTest, ParameterTracking) {
  Circuit c(2);
  c.RX(0, ParamExpr::Variable(0));
  c.RY(1, ParamExpr::Variable(4));
  EXPECT_EQ(c.num_parameters(), 5);  // max index + 1
  c.RZ(0, 0.3);                      // Constant does not extend the table.
  EXPECT_EQ(c.num_parameters(), 5);
}

TEST(CircuitTest, DepthComputation) {
  Circuit c(3);
  c.H(0).H(1).H(2);  // Parallel layer: depth 1.
  EXPECT_EQ(c.Depth(), 1);
  c.CX(0, 1);  // Depth 2 on qubits 0, 1.
  EXPECT_EQ(c.Depth(), 2);
  c.CX(1, 2);  // Chains through qubit 1: depth 3.
  EXPECT_EQ(c.Depth(), 3);
  c.X(0);  // Qubit 0 is at level 2 → 3; depth stays 3.
  EXPECT_EQ(c.Depth(), 3);
}

TEST(CircuitTest, TwoQubitGateCount) {
  Circuit c(3);
  c.H(0).CX(0, 1).RZZ(1, 2, 0.1).CCX(0, 1, 2).X(2);
  EXPECT_EQ(c.TwoQubitGateCount(), 3);  // CX, RZZ, CCX (≥ 2 operands).
}

TEST(CircuitTest, AppendCircuit) {
  Circuit a(2);
  a.H(0);
  Circuit b(2);
  b.CX(0, 1);
  a.Append(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.gates()[1].type, GateType::kCX);
}

TEST(CircuitTest, AppendMappedRelocatesQubits) {
  Circuit inner(2);
  inner.CX(0, 1);
  Circuit outer(4);
  outer.AppendMapped(inner, {3, 1});
  EXPECT_EQ(outer.gates()[0].qubits, (std::vector<int>{3, 1}));
}

TEST(CircuitTest, BindReplacesParameters) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));
  c.RY(0, ParamExpr::Affine(1, 2.0, 0.5));
  Circuit bound = c.Bind({0.3, 1.0});
  EXPECT_EQ(bound.num_parameters(), 0);
  EXPECT_NEAR(bound.gates()[0].params[0].offset, 0.3, 1e-15);
  EXPECT_NEAR(bound.gates()[1].params[0].offset, 2.5, 1e-15);
}

TEST(CircuitTest, EvaluateAngles) {
  Circuit c(1);
  c.U(0, ParamExpr::Variable(0), ParamExpr::Constant(0.1),
      ParamExpr::Affine(1, -1.0, 0.0));
  DVector angles = c.EvaluateAngles(0, {0.7, 0.2});
  ASSERT_EQ(angles.size(), 3u);
  EXPECT_NEAR(angles[0], 0.7, 1e-15);
  EXPECT_NEAR(angles[1], 0.1, 1e-15);
  EXPECT_NEAR(angles[2], -0.2, 1e-15);
}

TEST(CircuitTest, MCXAndMCZBuild) {
  Circuit c(4);
  c.MCX({0, 1, 2}, 3);
  c.MCZ({0, 1}, 3);
  EXPECT_EQ(c.gates()[0].type, GateType::kMCX);
  EXPECT_EQ(c.gates()[0].qubits.size(), 4u);
  EXPECT_EQ(c.gates()[1].qubits.size(), 3u);
}

TEST(CircuitTest, ToStringRendersGates) {
  Circuit c(2);
  c.H(0).CX(0, 1).RX(1, ParamExpr::Variable(2));
  std::string text = c.ToString();
  EXPECT_NE(text.find("h q[0]"), std::string::npos);
  EXPECT_NE(text.find("cx q[0], q[1]"), std::string::npos);
  EXPECT_NE(text.find("rx(t2)"), std::string::npos);
}

// --- Inverse: every circuit composed with its inverse is the identity. ----

class CircuitInverseTest : public ::testing::TestWithParam<uint64_t> {};

Circuit RandomCircuit(int num_qubits, int num_gates, Rng& rng) {
  Circuit c(num_qubits);
  for (int g = 0; g < num_gates; ++g) {
    const int q = static_cast<int>(rng.UniformInt(uint64_t(num_qubits)));
    int q2 = static_cast<int>(rng.UniformInt(uint64_t(num_qubits - 1)));
    if (q2 >= q) ++q2;
    const double angle = rng.Uniform(-M_PI, M_PI);
    switch (rng.UniformInt(uint64_t{14})) {
      case 0: c.H(q); break;
      case 1: c.X(q); break;
      case 2: c.S(q); break;
      case 3: c.T(q); break;
      case 4: c.SX(q); break;
      case 5: c.RX(q, angle); break;
      case 6: c.RY(q, angle); break;
      case 7: c.RZ(q, angle); break;
      case 8: c.P(q, angle); break;
      case 9: c.CX(q, q2); break;
      case 10: c.CZ(q, q2); break;
      case 11: c.RZZ(q, q2, angle); break;
      case 12: c.CRY(q, q2, angle); break;
      default:
        c.U(q, ParamExpr::Constant(angle), ParamExpr::Constant(angle / 2),
            ParamExpr::Constant(-angle / 3));
        break;
    }
  }
  return c;
}

TEST_P(CircuitInverseTest, ComposesToIdentity) {
  Rng rng(GetParam());
  Circuit c = RandomCircuit(3, 25, rng);
  Circuit round_trip = c;
  round_trip.Append(c.Inverse());
  auto u = CircuitUnitary(round_trip);
  ASSERT_TRUE(u.ok()) << u.status();
  EXPECT_TRUE(u.value().ApproxEqual(Matrix::Identity(8), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CircuitInverseTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(CircuitTest, InverseOfParameterizedCircuitStaysSymbolic) {
  Circuit c(1);
  c.RX(0, ParamExpr::Variable(0));
  Circuit inv = c.Inverse();
  EXPECT_EQ(inv.num_parameters(), 1);
  EXPECT_EQ(inv.gates()[0].params[0].multiplier, -1.0);
}

TEST(CircuitTest, InverseOfCcxAndSwap) {
  Circuit c(3);
  c.CCX(0, 1, 2).Swap(0, 2).MCZ({0}, 1);
  Circuit round_trip = c;
  round_trip.Append(c.Inverse());
  auto u = CircuitUnitary(round_trip);
  ASSERT_TRUE(u.ok());
  EXPECT_TRUE(u.value().ApproxEqual(Matrix::Identity(8), 1e-10));
}

}  // namespace
}  // namespace qdb
