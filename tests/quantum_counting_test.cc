// Tests for quantum counting (amplitude estimation on the Grover iterate).

#include <gtest/gtest.h>

#include <cmath>

#include "algo/quantum_counting.h"

namespace qdb {
namespace {

TEST(QuantumCountingTest, CircuitValidation) {
  EXPECT_FALSE(QuantumCountingCircuit(0, {0}, 4).ok());
  EXPECT_FALSE(QuantumCountingCircuit(3, {}, 4).ok());
  EXPECT_FALSE(QuantumCountingCircuit(3, {9}, 4).ok());
  EXPECT_FALSE(QuantumCountingCircuit(3, {1}, 0).ok());
  EXPECT_FALSE(QuantumCountingCircuit(3, {1}, 11).ok());
  auto c = QuantumCountingCircuit(3, {1, 5}, 4);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c.value().num_qubits(), 7);
}

TEST(QuantumCountingTest, QuarterFractionIsExact) {
  // M/N = 1/4 ⇒ θ = π/6... not dyadic. Use M/N = 1/2: θ = π/4, eigenphase
  // (π ± π/2)/2π ∈ {3/8, 1/8} — exactly representable with 3 ancillas.
  const int n = 3;
  std::vector<uint64_t> marked = {0, 1, 2, 3};  // M = 4 of N = 8.
  Rng rng(5);
  auto est = EstimateMarkedCount(n, marked, /*precision=*/3, 256, rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().estimated_fraction, 0.5, 1e-9);
  EXPECT_NEAR(est.value().estimated_count, 4.0, 1e-9);
}

TEST(QuantumCountingTest, EmptyComplementFullSet) {
  // All states marked: fraction 1.
  const int n = 2;
  std::vector<uint64_t> marked = {0, 1, 2, 3};
  Rng rng(7);
  auto est = EstimateMarkedCount(n, marked, 4, 128, rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().estimated_fraction, 1.0, 0.02);
}

class CountingAccuracyTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(CountingAccuracyTest, EstimateWithinResolution) {
  // Property: the count estimate lands within the QAE resolution bound
  // ~2π√(M N)/2^t + π²N/4^t for varying M and t.
  const auto& [num_marked, precision] = GetParam();
  const int n = 4;
  const double n_states = 16.0;
  std::vector<uint64_t> marked;
  for (int i = 0; i < num_marked; ++i) marked.push_back((5 * i + 3) % 16);
  Rng rng(100 + num_marked + precision);
  auto est = EstimateMarkedCount(n, marked, precision, 512, rng);
  ASSERT_TRUE(est.ok());
  const double t_pow = static_cast<double>(uint64_t{1} << precision);
  const double bound =
      2.0 * M_PI * std::sqrt(num_marked * n_states) / t_pow +
      M_PI * M_PI * n_states / (t_pow * t_pow);
  EXPECT_NEAR(est.value().estimated_count, num_marked, bound + 1e-9)
      << "M=" << num_marked << " t=" << precision;
}

INSTANTIATE_TEST_SUITE_P(Grid, CountingAccuracyTest,
                         ::testing::Combine(::testing::Values(1, 3, 5, 8),
                                            ::testing::Values(5, 6, 7)));

TEST(QuantumCountingTest, OracleCallAccounting) {
  Rng rng(9);
  auto est = EstimateMarkedCount(3, {2}, 5, 10, rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.value().oracle_calls, 10 * 31);  // shots · (2^5 − 1).
}

TEST(QuantumCountingTest, ClassicalBaselineConverges) {
  Rng rng(11);
  std::vector<uint64_t> marked = {0, 1, 2, 3};  // 1/4 of 16.
  const double estimate = ClassicalSampledFraction(4, marked, 20000, rng);
  EXPECT_NEAR(estimate, 0.25, 0.02);
}

TEST(QuantumCountingTest, ShotValidation) {
  Rng rng(1);
  EXPECT_FALSE(EstimateMarkedCount(3, {1}, 4, 0, rng).ok());
}

}  // namespace
}  // namespace qdb
