// Grover search as "quantum database lookup": find the row key matching a
// predicate among 2^n unindexed keys with ~π/4·√N oracle calls.

#include <cstdio>

#include "algo/grover.h"

int main() {
  using namespace qdb;

  const int num_qubits = 8;          // A 256-row "table".
  const uint64_t target_key = 0xB7;  // The row the predicate matches.

  const int optimal = OptimalGroverIterations(num_qubits);
  std::printf("database size %d rows; optimal Grover iterations %d "
              "(classical expected probes: %d)\n",
              1 << num_qubits, optimal, (1 << num_qubits) / 2);

  // Success probability across the iteration sweep.
  std::printf("\niterations -> success probability\n");
  for (int k = 0; k <= optimal + 4; k += 2) {
    double p =
        GroverSuccessProbability(num_qubits, {target_key}, k).ValueOrDie();
    std::printf("  %3d  %.4f %s\n", k, p, k == optimal ? "<- optimal" : "");
  }

  // Run the sampled end-to-end search a few times.
  Rng rng(21);
  int found = 0;
  const int trials = 10;
  for (int t = 0; t < trials; ++t) {
    GroverResult result =
        GroverSearch(num_qubits, {target_key}, rng).ValueOrDie();
    found += result.found;
  }
  std::printf("\nsampled search: found the key in %d/%d runs\n", found,
              trials);

  // Multiple matches: fewer iterations are needed (√(N/M) scaling).
  std::vector<uint64_t> matches = {0x11, 0x42, 0xB7, 0xEE};
  const int multi_optimal =
      OptimalGroverIterations(num_qubits, static_cast<int>(matches.size()));
  double p = GroverSuccessProbability(num_qubits, matches, multi_optimal)
                 .ValueOrDie();
  std::printf("4 matching rows: %d iterations suffice (success %.4f)\n",
              multi_optimal, p);
  return 0;
}
