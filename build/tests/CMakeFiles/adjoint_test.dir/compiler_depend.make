# Empty compiler generated dependencies file for adjoint_test.
# This may be replaced when dependencies are built.
