file(REMOVE_RECURSE
  "CMakeFiles/parallel_tempering_test.dir/parallel_tempering_test.cc.o"
  "CMakeFiles/parallel_tempering_test.dir/parallel_tempering_test.cc.o.d"
  "parallel_tempering_test"
  "parallel_tempering_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_tempering_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
