#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <memory>

#include "obs/obs.h"

namespace qdb {

namespace {

thread_local bool t_in_pool_worker = false;

/// Pool-wide metrics; looked up once, incremented from hot paths.
struct PoolCounters {
  obs::Counter* parallel_ops = obs::GetCounter("pool.parallel_ops");
  obs::Counter* tasks = obs::GetCounter("pool.tasks");
  obs::Gauge* queue_depth = obs::GetGauge("pool.queue_depth");
  obs::Gauge* workers = obs::GetGauge("pool.workers");
};

PoolCounters& Counters() {
  static PoolCounters counters;
  return counters;
}

int ThreadsFromEnv() {
  if (const char* env = std::getenv("QDB_THREADS"); env != nullptr && *env) {
    char* end = nullptr;
    const long v = std::strtol(env, &end, 10);
    if (end != nullptr && *end == '\0' && v >= 1) {
      return static_cast<int>(std::min<long>(v, 256));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(std::min<unsigned>(hw, 256));
}

std::unique_ptr<ThreadPool>& GlobalSlot() {
  static std::unique_ptr<ThreadPool> slot;
  return slot;
}

std::mutex& GlobalMu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

/// Shared state of one blocking fan-out: every enqueued copy (and the
/// caller) runs `drain`, which claims work items off an atomic cursor until
/// none remain; the caller then waits for all copies to retire.
struct ThreadPool::Op {
  std::function<void()> drain;
  /// The submitter's ambient trace context, re-installed in each worker so
  /// fanned-out chunks parent under the submitting request's span tree.
  obs::RequestContext context;
  std::mutex mu;
  std::condition_variable done_cv;
  int pending = 0;  ///< Enqueued copies not yet finished (guarded by mu).
};

ThreadPool::ThreadPool(int num_threads) {
  const int lanes = std::clamp(num_threads, 1, 256);
  workers_.reserve(static_cast<size_t>(lanes - 1));
  for (int i = 0; i + 1 < lanes; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::WorkerLoop() {
  t_in_pool_worker = true;
  for (;;) {
    std::shared_ptr<Op> op;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      op = std::move(queue_.front());
      queue_.pop_front();
      Counters().queue_depth->Set(static_cast<double>(queue_.size()));
    }
    {
      obs::ContextGuard context_guard(op->context);
      QDB_TRACE_SCOPE("ThreadPool::Task", "pool");
      op->drain();
      Counters().tasks->Increment();
    }
    {
      std::lock_guard<std::mutex> lock(op->mu);
      --op->pending;
    }
    op->done_cv.notify_all();
  }
}

void ThreadPool::Enqueue(int copies, const std::shared_ptr<Op>& op) {
  op->pending = copies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (int i = 0; i < copies; ++i) queue_.push_back(op);
    Counters().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  if (copies == 1) {
    work_cv_.notify_one();
  } else {
    work_cv_.notify_all();
  }
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(GlobalMu());
  auto& slot = GlobalSlot();
  if (!slot) {
    slot = std::make_unique<ThreadPool>(ThreadsFromEnv());
    Counters().workers->Set(static_cast<double>(slot->size()));
  }
  return *slot;
}

void ThreadPool::SetGlobalThreads(int num_threads) {
  std::lock_guard<std::mutex> lock(GlobalMu());
  auto& slot = GlobalSlot();
  slot.reset();  // Join the old workers before spawning replacements.
  slot = std::make_unique<ThreadPool>(num_threads);
  Counters().workers->Set(static_cast<double>(slot->size()));
}

bool ThreadPool::InWorker() { return t_in_pool_worker; }

size_t ThreadPool::PendingOps() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

uint64_t ThreadPool::ChunkSize(uint64_t range) {
  // At most 64 chunks, each at least 2048 elements: coarse enough that the
  // per-chunk dispatch cost vanishes against the kernel work, fine enough
  // to load-balance 64 lanes. Purely a function of `range` (determinism).
  return std::max<uint64_t>(2048, (range + 63) / 64);
}

void ThreadPool::ParallelForChunks(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, uint64_t, uint64_t)>& body) {
  if (end <= begin) return;
  const uint64_t range = end - begin;
  const uint64_t chunk = ChunkSize(range);
  const uint64_t num_chunks = (range + chunk - 1) / chunk;
  auto run_chunk = [&](uint64_t ci) {
    const uint64_t b = begin + ci * chunk;
    body(ci, b, std::min(end, b + chunk));
  };
  if (workers_.empty() || t_in_pool_worker || num_chunks == 1) {
    for (uint64_t ci = 0; ci < num_chunks; ++ci) run_chunk(ci);
    return;
  }
  QDB_TRACE_SCOPE("ThreadPool::ParallelFor", "pool");
  Counters().parallel_ops->Increment();
  auto next = std::make_shared<std::atomic<uint64_t>>(0);
  auto op = std::make_shared<Op>();
  op->context = obs::CurrentContext();  // Captured inside the span above.
  op->drain = [next, num_chunks, &run_chunk] {
    uint64_t ci;
    while ((ci = next->fetch_add(1, std::memory_order_relaxed)) < num_chunks) {
      run_chunk(ci);
    }
  };
  const int helpers = static_cast<int>(
      std::min<uint64_t>(workers_.size(), num_chunks - 1));
  Enqueue(helpers, op);
  op->drain();  // The caller is a full lane, not just a waiter.
  std::unique_lock<std::mutex> lock(op->mu);
  op->done_cv.wait(lock, [&] { return op->pending == 0; });
}

void ThreadPool::ParallelFor(
    uint64_t begin, uint64_t end,
    const std::function<void(uint64_t, uint64_t)>& body) {
  ParallelForChunks(begin, end,
                    [&body](uint64_t, uint64_t b, uint64_t e) { body(b, e); });
}

void ThreadPool::RunTasks(size_t count,
                          const std::function<void(size_t)>& task) {
  if (count == 0) return;
  if (workers_.empty() || t_in_pool_worker || count == 1) {
    for (size_t i = 0; i < count; ++i) task(i);
    return;
  }
  QDB_TRACE_SCOPE("ThreadPool::RunTasks", "pool");
  Counters().parallel_ops->Increment();
  auto next = std::make_shared<std::atomic<size_t>>(0);
  auto op = std::make_shared<Op>();
  op->context = obs::CurrentContext();  // Captured inside the span above.
  op->drain = [next, count, &task] {
    size_t i;
    while ((i = next->fetch_add(1, std::memory_order_relaxed)) < count) {
      task(i);
    }
  };
  const int helpers =
      static_cast<int>(std::min(workers_.size(), count - 1));
  Enqueue(helpers, op);
  op->drain();
  std::unique_lock<std::mutex> lock(op->mu);
  op->done_cv.wait(lock, [&] { return op->pending == 0; });
}

}  // namespace qdb
