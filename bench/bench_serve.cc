// E18 — Inference serving: dynamic micro-batching vs one-request-at-a-time.
//
// Headline comparison, at 12 qubits with 8 concurrent clients: the
// pre-serving path recomputes everything per request (a kernel-SVM request
// rebuilds the full CrossMatrix against the support set — |SV| + 1 encoding
// circuits; a variational request rebuilds and re-lowers its circuit), while
// the serving runtime amortizes — support vectors are encoded once at model
// load, variational requests replay one pre-compiled symbolic-feature
// program, and queued requests coalesce into micro-batches that fan out
// across the thread pool. Headline result: served kernel-SVM throughput is
// >= 2x the single-request baseline even on one core (~16x observed: the
// per-request encoding work drops from |SV| + 1 circuits to 1). The VQC
// comparison is informative rather than a win condition — its per-request
// circuit is sub-millisecond at 12 qubits, so on a single core dispatch
// overhead dominates and serving pays for itself only with multiple cores
// (batch fan-out) or repeated queries (see BM_ResultCacheHitRate, where
// the cache turns ~99% of a recurring workload into immediate returns).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "fault/fault_injector.h"
#include "kernel/quantum_kernel.h"
#include "serve/inference_server.h"
#include "serve/model_registry.h"
#include "serve/servable.h"
#include "sim/statevector_simulator.h"
#include "variational/ansatz.h"

namespace qdb {
namespace serve {
namespace {

constexpr int kQubits = 12;
constexpr int kSupportVectors = 24;
constexpr int kClients = 8;
constexpr int kRequestsPerClient = 8;
constexpr int kTotalRequests = kClients * kRequestsPerClient;

enum Mode { kSingleRequest = 0, kServedBatched = 1 };

ModelArtifact SyntheticKernelArtifact() {
  Rng rng(29);
  ModelArtifact a;
  a.type = ModelType::kKernelSvm;
  a.name = "bench-qsvm";
  a.num_features = kQubits;
  a.kernel_encoding = KernelEncodingKind::kAngle;
  a.kernel_scale = 1.0;
  a.bias = 0.05;
  for (int i = 0; i < kSupportVectors; ++i) {
    SupportVector sv;
    sv.coeff = (i % 2 == 0 ? 1.0 : -1.0) / kSupportVectors;
    sv.features.resize(kQubits);
    for (auto& f : sv.features) f = rng.Uniform(0.0, M_PI);
    a.support_vectors.push_back(std::move(sv));
  }
  return a;
}

ModelArtifact SyntheticVqcArtifact() {
  Rng rng(31);
  ModelArtifact a;
  a.type = ModelType::kVqcClassifier;
  a.name = "bench-vqc";
  a.num_features = kQubits;
  a.encoding = VqcEncoding::kAngle;
  a.ansatz_layers = 2;
  a.entanglement = Entanglement::kLinear;
  a.feature_scale = 1.0;
  a.params.resize(RealAmplitudesParamCount(kQubits, a.ansatz_layers));
  for (auto& p : a.params) p = rng.Uniform(-0.5, 0.5);
  return a;
}

std::vector<DVector> MakeQueries(int count, uint64_t seed) {
  Rng rng(seed);
  std::vector<DVector> queries(count, DVector(kQubits));
  for (auto& q : queries) {
    for (auto& v : q) v = rng.Uniform(0.0, M_PI);
  }
  return queries;
}

/// Drives the server with kClients concurrent threads, each submitting its
/// slice of `queries` and blocking on the responses. Returns the number of
/// successful responses.
int RunClients(InferenceServer& server, const std::string& model,
               const std::vector<DVector>& queries) {
  std::atomic<int> ok_count{0};
  std::vector<std::thread> clients;
  const int per_client = static_cast<int>(queries.size()) / kClients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<std::future<Result<InferenceResponse>>> futures;
      for (int i = 0; i < per_client; ++i) {
        InferenceRequest request;
        request.model = model;
        request.input = queries[c * per_client + i];
        futures.push_back(server.Submit(std::move(request)));
      }
      for (auto& f : futures) {
        if (f.get().ok()) ok_count.fetch_add(1);
      }
    });
  }
  for (auto& t : clients) t.join();
  return ok_count.load();
}

void BM_KernelSvmServing(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  ModelArtifact artifact = SyntheticKernelArtifact();
  std::vector<DVector> queries = MakeQueries(kTotalRequests, 41);

  if (mode == kSingleRequest) {
    // Pre-serving path: every request recomputes the cross matrix against
    // the support set from scratch (|SV| + 1 encoding circuits each).
    FidelityQuantumKernel kernel = MakeAngleKernel(artifact.kernel_scale);
    std::vector<DVector> sv_features;
    for (const auto& sv : artifact.support_vectors) {
      sv_features.push_back(sv.features);
    }
    for (auto _ : state) {
      for (const auto& x : queries) {
        auto cross = kernel.CrossMatrix({x}, sv_features);
        if (!cross.ok()) {
          state.SkipWithError(cross.status().ToString().c_str());
          return;
        }
        double decision = artifact.bias;
        for (int j = 0; j < kSupportVectors; ++j) {
          decision += artifact.support_vectors[j].coeff *
                      cross.value()(0, j).real();
        }
        benchmark::DoNotOptimize(decision);
      }
    }
    state.SetLabel("single_request");
  } else {
    ModelRegistry registry;
    auto servable = registry.Register(artifact);
    if (!servable.ok()) {
      state.SkipWithError(servable.status().ToString().c_str());
      return;
    }
    ServerOptions opts;
    opts.max_batch_size = 16;
    opts.max_wait_us = 100;
    opts.result_cache_capacity = 0;  // Measure compute, not memoization.
    InferenceServer server(registry, opts);
    if (!server.Start().ok()) {
      state.SkipWithError("server failed to start");
      return;
    }
    for (auto _ : state) {
      const int ok_count = RunClients(server, "bench-qsvm", queries);
      if (ok_count != kTotalRequests) {
        state.SkipWithError("requests failed");
        return;
      }
    }
    const auto stats = server.stats();
    server.Shutdown();
    state.SetLabel("served_batched");
    if (stats.batches > 0) {
      state.counters["avg_batch"] =
          static_cast<double>(stats.completed) /
          static_cast<double>(stats.batches);
    }
  }
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTotalRequests),
      benchmark::Counter::kIsRate);
  state.counters["qubits"] = kQubits;
  state.counters["clients"] = mode == kServedBatched ? kClients : 1;
}

BENCHMARK(BM_KernelSvmServing)
    ->Arg(kSingleRequest)
    ->Arg(kServedBatched)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_VqcServing(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  ModelArtifact artifact = SyntheticVqcArtifact();
  std::vector<DVector> queries = MakeQueries(kTotalRequests, 43);

  if (mode == kSingleRequest) {
    // Pre-serving path: per request, build the bound circuit and run it
    // through the simulator (circuit construction + lowering every time —
    // what VqcClassifier::Score does under the hood).
    StateVectorSimulator simulator;
    for (auto _ : state) {
      for (const auto& x : queries) {
        auto circuit = BuildBoundInferenceCircuit(artifact, x);
        if (!circuit.ok()) {
          state.SkipWithError(circuit.status().ToString().c_str());
          return;
        }
        auto result = simulator.Run(circuit.value());
        if (!result.ok()) {
          state.SkipWithError(result.status().ToString().c_str());
          return;
        }
        benchmark::DoNotOptimize(ExpectationZ(result.value(), 0));
      }
    }
    state.SetLabel("single_request");
  } else {
    ModelRegistry registry;
    auto servable = registry.Register(artifact);
    if (!servable.ok()) {
      state.SkipWithError(servable.status().ToString().c_str());
      return;
    }
    ServerOptions opts;
    opts.max_batch_size = 16;
    opts.max_wait_us = 100;
    opts.result_cache_capacity = 0;
    InferenceServer server(registry, opts);
    if (!server.Start().ok()) {
      state.SkipWithError("server failed to start");
      return;
    }
    for (auto _ : state) {
      const int ok_count = RunClients(server, "bench-vqc", queries);
      if (ok_count != kTotalRequests) {
        state.SkipWithError("requests failed");
        return;
      }
    }
    const auto stats = server.stats();
    server.Shutdown();
    state.SetLabel("served_batched");
    if (stats.batches > 0) {
      state.counters["avg_batch"] =
          static_cast<double>(stats.completed) /
          static_cast<double>(stats.batches);
    }
  }
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * kTotalRequests),
      benchmark::Counter::kIsRate);
  state.counters["qubits"] = kQubits;
  state.counters["clients"] = mode == kServedBatched ? kClients : 1;
}

BENCHMARK(BM_VqcServing)
    ->Arg(kSingleRequest)
    ->Arg(kServedBatched)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_ResultCacheHitRate(benchmark::State& state) {
  // Repeated-query workload (a cardinality model probed with recurring
  // predicate templates): with the result cache on, only the first pass
  // simulates.
  ModelArtifact artifact = SyntheticVqcArtifact();
  ModelRegistry registry;
  if (!registry.Register(artifact).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  ServerOptions opts;
  opts.max_batch_size = 16;
  opts.max_wait_us = 200;
  opts.result_cache_capacity = 1024;
  InferenceServer server(registry, opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }
  std::vector<DVector> queries = MakeQueries(16, 47);  // 4x reuse per pass.
  std::vector<DVector> workload;
  for (int r = 0; r < 4; ++r) {
    workload.insert(workload.end(), queries.begin(), queries.end());
  }
  for (auto _ : state) {
    if (RunClients(server, "bench-vqc", workload) !=
        static_cast<int>(workload.size())) {
      state.SkipWithError("requests failed");
      return;
    }
  }
  const auto stats = server.stats();
  server.Shutdown();
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(state.iterations() * workload.size()),
      benchmark::Counter::kIsRate);
  state.counters["cache_hit_rate"] =
      static_cast<double>(stats.cache_hits) /
      static_cast<double>(stats.submitted);
}

BENCHMARK(BM_ResultCacheHitRate)->Unit(benchmark::kMillisecond)->UseRealTime();

enum BreakerMode { kHealthyAlone = 0, kPoisonedCoTenant = 1 };

void BM_BreakerIsolation(benchmark::State& state) {
  // A poisoned co-tenant (every execution fails via an injected fault
  // targeted at its name) must not drag down a healthy model sharing the
  // server: its circuit breaker opens after a handful of failures and sheds
  // the rest at admission, so dispatchers stop burning retry attempts on
  // doomed batches. Compare healthy_p99_us across the two modes — the
  // acceptance bar is < 10% regression against the healthy-alone baseline.
  const int mode = static_cast<int>(state.range(0));
  ModelArtifact healthy = SyntheticVqcArtifact();
  ModelRegistry registry;
  if (!registry.Register(healthy).ok()) {
    state.SkipWithError("register failed");
    return;
  }
  if (mode == kPoisonedCoTenant) {
    ModelArtifact bad = SyntheticVqcArtifact();
    bad.name = "bench-vqc-bad";
    if (!registry.Register(bad).ok()) {
      state.SkipWithError("register failed");
      return;
    }
    fault::FaultSpec spec;
    spec.kind = fault::FaultKind::kError;
    spec.target = "bench-vqc-bad";
    fault::FaultInjector::Global().Arm("servable.run", spec);
  }

  ServerOptions opts;
  opts.max_batch_size = 16;
  opts.max_wait_us = 100;
  opts.num_dispatchers = 2;  // The poisoned model gets its own lane.
  opts.result_cache_capacity = 0;
  opts.retry.max_attempts = 2;
  opts.retry.initial_backoff_us = 200;
  opts.breaker.min_samples = 4;
  opts.breaker.open_duration_us = 60'000'000;  // Stays open once tripped.
  InferenceServer server(registry, opts);
  if (!server.Start().ok()) {
    state.SkipWithError("server failed to start");
    return;
  }

  std::vector<DVector> queries = MakeQueries(kTotalRequests, 53);
  std::vector<double> healthy_latencies_us;
  for (auto _ : state) {
    std::vector<std::thread> poison_clients;
    std::atomic<bool> poison_running{true};
    if (mode == kPoisonedCoTenant) {
      // Two paced closed-loop clients hammer the poisoned model for the
      // whole measurement; after the breaker opens these become
      // admission-time sheds rather than dispatcher work. The pacing keeps
      // the comparison about breaker isolation, not about spinning shed
      // loops stealing CPU from the healthy clients.
      for (int c = 0; c < 2; ++c) {
        poison_clients.emplace_back([&, c] {
          Rng rng(60 + c);
          while (poison_running.load(std::memory_order_relaxed)) {
            InferenceRequest request;
            request.model = "bench-vqc-bad";
            request.input = queries[rng.UniformInt(0, kTotalRequests - 1)];
            (void)server.Submit(std::move(request)).get();
            std::this_thread::sleep_for(std::chrono::microseconds(200));
          }
        });
      }
    }
    // Healthy traffic, per-request latency measured client-side.
    std::vector<std::thread> clients;
    std::mutex latencies_mu;
    const int per_client = kTotalRequests / kClients;
    for (int c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c] {
        std::vector<double> local;
        local.reserve(per_client);
        for (int i = 0; i < per_client; ++i) {
          InferenceRequest request;
          request.model = "bench-vqc";
          request.input = queries[c * per_client + i];
          const auto start = std::chrono::steady_clock::now();
          auto response = server.Submit(std::move(request)).get();
          const auto elapsed = std::chrono::steady_clock::now() - start;
          if (response.ok()) {
            local.push_back(static_cast<double>(
                std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                    .count()));
          }
        }
        std::lock_guard<std::mutex> lock(latencies_mu);
        healthy_latencies_us.insert(healthy_latencies_us.end(), local.begin(),
                                    local.end());
      });
    }
    for (auto& t : clients) t.join();
    poison_running.store(false, std::memory_order_relaxed);
    for (auto& t : poison_clients) t.join();
  }
  server.Shutdown();

  if (healthy_latencies_us.empty()) {
    fault::FaultInjector::Global().DisarmAll();
    state.SkipWithError("no healthy responses");
    return;
  }
  std::sort(healthy_latencies_us.begin(), healthy_latencies_us.end());
  const size_t p99_index = std::min(
      healthy_latencies_us.size() - 1,
      static_cast<size_t>(0.99 * static_cast<double>(
                                     healthy_latencies_us.size())));
  state.counters["healthy_p99_us"] = healthy_latencies_us[p99_index];
  state.counters["healthy_p50_us"] =
      healthy_latencies_us[healthy_latencies_us.size() / 2];
  if (mode == kPoisonedCoTenant) {
    if (const auto* breaker = server.breaker("bench-vqc-bad", 1)) {
      state.counters["bad_shed"] =
          static_cast<double>(breaker->stats().shed);
      state.counters["bad_breaker_open"] =
          breaker->state() == fault::BreakerState::kOpen ? 1.0 : 0.0;
    }
  }
  state.SetLabel(mode == kHealthyAlone ? "healthy_alone"
                                       : "poisoned_cotenant");
  fault::FaultInjector::Global().DisarmAll();
}

BENCHMARK(BM_BreakerIsolation)
    ->Arg(kHealthyAlone)
    ->Arg(kPoisonedCoTenant)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace serve
}  // namespace qdb

BENCHMARK_MAIN();
