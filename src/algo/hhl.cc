#include "algo/hhl.h"

#include <algorithm>
#include <cmath>

#include "algo/phase_estimation.h"
#include "common/strings.h"
#include "linalg/eigen.h"
#include "linalg/vector_ops.h"
#include "sim/state_vector.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

/// e^{iAτ} from the eigendecomposition A = V Λ V†.
Matrix Exponential(const EigenDecomposition& eig, double tau) {
  const size_t dim = eig.eigenvectors.rows();
  CVector phases(dim);
  for (size_t i = 0; i < dim; ++i) {
    phases[i] = std::exp(Complex(0.0, eig.eigenvalues[i] * tau));
  }
  return eig.eigenvectors * Matrix::Diagonal(phases) *
         eig.eigenvectors.Adjoint();
}

/// Controlled-U as a dense matrix: block diag(I, U) with the control as
/// the high index bit.
Matrix Controlled(const Matrix& u) {
  const size_t d = u.rows();
  Matrix c = Matrix::Identity(2 * d);
  for (size_t r = 0; r < d; ++r) {
    for (size_t col = 0; col < d; ++col) c(d + r, d + col) = u(r, col);
  }
  return c;
}

}  // namespace

Result<CVector> ClassicalSolveNormalized(const Matrix& a, const CVector& b) {
  if (a.rows() != a.cols() || a.rows() != b.size()) {
    return Status::InvalidArgument("shape mismatch");
  }
  QDB_ASSIGN_OR_RETURN(EigenDecomposition eig, HermitianEigen(a));
  for (double lambda : eig.eigenvalues) {
    if (std::abs(lambda) < 1e-12) {
      return Status::InvalidArgument("matrix is singular");
    }
  }
  // x = V Λ⁻¹ V† b.
  CVector vtb = eig.eigenvectors.Adjoint().Apply(b);
  for (size_t i = 0; i < vtb.size(); ++i) vtb[i] /= eig.eigenvalues[i];
  CVector x = eig.eigenvectors.Apply(vtb);
  Normalize(x);
  return x;
}

Result<HhlResult> HhlSolve(const Matrix& a, const CVector& b,
                           const HhlOptions& options) {
  const size_t dim = a.rows();
  if (dim != a.cols() || dim == 0 || (dim & (dim - 1)) != 0 || dim > 8) {
    return Status::InvalidArgument(
        "A must be square with power-of-two dimension <= 8");
  }
  if (b.size() != dim) {
    return Status::InvalidArgument("b has wrong dimension");
  }
  if (!a.IsHermitian(1e-9)) {
    return Status::InvalidArgument("A must be Hermitian");
  }
  if (Norm(b) < 1e-12) {
    return Status::InvalidArgument("b must be non-zero");
  }
  if (options.clock_qubits < 2 || options.clock_qubits > 10) {
    return Status::InvalidArgument("clock_qubits must be in [2, 10]");
  }

  QDB_ASSIGN_OR_RETURN(EigenDecomposition eig, HermitianEigen(a));
  double lambda_max = 0.0;
  for (double lambda : eig.eigenvalues) {
    if (std::abs(lambda) < 1e-12) {
      return Status::InvalidArgument("matrix is singular");
    }
    lambda_max = std::max(lambda_max, std::abs(lambda));
  }
  // Auto t₀ maps the spectrum into phases ±0.4: t₀ = 0.8π/‖A‖. (Exactly
  // π/‖A‖ would collide +λ_max and −λ_max at the wrap-around phase 1/2.)
  const double t0 = options.evolution_time > 0.0 ? options.evolution_time
                                                 : 0.8 * M_PI / lambda_max;

  int m = 0;
  while ((size_t{1} << m) < dim) ++m;
  const int t = options.clock_qubits;
  const int n = 1 + t + m;  // ancilla | clock | system.
  const uint64_t clock_size = uint64_t{1} << t;

  // Register layout (qubit 0 = MSB of the index): ancilla, clock, system.
  StateVector state(n);
  {
    // Prepare |0⟩_anc |0⟩_clock |b⟩_sys.
    CVector normalized_b = b;
    Normalize(normalized_b);
    CVector amps(uint64_t{1} << n, Complex(0.0, 0.0));
    for (size_t i = 0; i < dim; ++i) amps[i] = normalized_b[i];
    state.SetAmplitudes(amps);
  }

  StateVectorSimulator sim;
  std::vector<int> system_qubits;
  for (int q = 0; q < m; ++q) system_qubits.push_back(1 + t + q);

  // --- QPE forward ---------------------------------------------------------
  Circuit hadamards(n);
  for (int c = 0; c < t; ++c) hadamards.H(1 + c);
  QDB_RETURN_IF_ERROR(sim.RunInPlace(hadamards, state));
  for (int c = 0; c < t; ++c) {
    // Clock qubit (1 + c) is phase bit c (MSB first): controls U^{2^{t−1−c}}.
    const double tau = t0 * static_cast<double>(uint64_t{1} << (t - 1 - c));
    Matrix cu = Controlled(Exponential(eig, tau));
    std::vector<int> operands = {1 + c};
    operands.insert(operands.end(), system_qubits.begin(), system_qubits.end());
    state.ApplyKQ(operands, cu);
  }
  Circuit iqft_clock(n);
  {
    Circuit iqft = InverseQftCircuit(t);
    std::vector<int> mapping(t);
    for (int c = 0; c < t; ++c) mapping[c] = 1 + c;
    iqft_clock.AppendMapped(iqft, mapping);
  }
  QDB_RETURN_IF_ERROR(sim.RunInPlace(iqft_clock, state));

  // --- Eigenvalue-conditioned ancilla rotation -----------------------------
  // λ(y) = 2π·φ/t₀ with φ = y/2^t, wrapped to (−½, ½] for negative λ.
  // Default C = the smallest representable |λ| (one phase-grid step).
  const double c_const =
      options.c_constant > 0.0
          ? options.c_constant
          : 2.0 * M_PI / (t0 * static_cast<double>(clock_size));
  {
    double* re = state.reals();
    double* im = state.imags();
    const uint64_t sys_size = uint64_t{1} << m;
    const uint64_t anc_stride = uint64_t{1} << (t + m);
    for (uint64_t y = 1; y < clock_size; ++y) {  // y = 0 → λ = 0: skip.
      double phase = static_cast<double>(y) / static_cast<double>(clock_size);
      if (phase > 0.5) phase -= 1.0;
      const double lambda = 2.0 * M_PI * phase / t0;
      const double ratio = std::clamp(c_const / lambda, -1.0, 1.0);
      const double sin_theta = ratio;
      const double cos_theta = std::sqrt(1.0 - ratio * ratio);
      for (uint64_t s = 0; s < sys_size; ++s) {
        const uint64_t i0 = y * sys_size + s;       // ancilla = 0
        const uint64_t i1 = i0 + anc_stride;        // ancilla = 1
        const Complex a0(re[i0], im[i0]);
        const Complex a1(re[i1], im[i1]);
        const Complex b0 = cos_theta * a0 - sin_theta * a1;
        const Complex b1 = sin_theta * a0 + cos_theta * a1;
        re[i0] = b0.real();
        im[i0] = b0.imag();
        re[i1] = b1.real();
        im[i1] = b1.imag();
      }
    }
  }

  // --- QPE inverse ----------------------------------------------------------
  Circuit qft_clock(n);
  {
    Circuit qft = QftCircuit(t);
    std::vector<int> mapping(t);
    for (int c = 0; c < t; ++c) mapping[c] = 1 + c;
    qft_clock.AppendMapped(qft, mapping);
  }
  QDB_RETURN_IF_ERROR(sim.RunInPlace(qft_clock, state));
  for (int c = t - 1; c >= 0; --c) {
    const double tau = -t0 * static_cast<double>(uint64_t{1} << (t - 1 - c));
    Matrix cu = Controlled(Exponential(eig, tau));
    std::vector<int> operands = {1 + c};
    operands.insert(operands.end(), system_qubits.begin(), system_qubits.end());
    state.ApplyKQ(operands, cu);
  }
  QDB_RETURN_IF_ERROR(sim.RunInPlace(hadamards, state));

  // --- Post-select ancilla = 1, clock = 0 -----------------------------------
  HhlResult result;
  result.total_qubits = n;
  const uint64_t anc_stride = uint64_t{1} << (t + m);
  CVector solution(dim);
  double prob = 0.0;
  for (size_t s = 0; s < dim; ++s) {
    const Complex amp = state.amplitude(anc_stride + s);  // clock = 0.
    solution[s] = amp;
    prob += std::norm(amp);
  }
  result.success_probability = prob;
  if (prob < 1e-12) {
    return Status::Internal("HHL post-selection probability vanished");
  }
  Normalize(solution);
  result.solution = solution;

  QDB_ASSIGN_OR_RETURN(CVector exact, ClassicalSolveNormalized(a, b));
  result.fidelity = Fidelity(solution, exact);
  return result;
}

}  // namespace qdb
