// Tests for qdb::obs::SloTracker: burn-rate math, the latency objective,
// multi-window breach AND-logic, per-model objectives, and deterministic
// window aging under the injected clock.

#include "obs/slo.h"

#include <gtest/gtest.h>

#include <cstdint>

#include "obs/labels.h"
#include "obs/metrics.h"

namespace qdb {
namespace obs {
namespace {

constexpr int64_t kSecond = 1'000'000;  // Injected clock is in microseconds.

const SloWindowStatus& Window(const SloModelStatus& status, long window_s) {
  for (const auto& w : status.windows) {
    if (w.window_s == window_s) return w;
  }
  static SloWindowStatus missing;
  ADD_FAILURE() << "no window " << window_s << "s for model " << status.model;
  return missing;
}

TEST(SloTrackerTest, AllOkRequestsDoNotBurn) {
  SloTracker tracker(SloObjective{0.999, 0}, {10, 100});
  int64_t now = 1000 * kSecond;
  for (int i = 0; i < 50; ++i) tracker.Record("m", 100, /*ok=*/true, now);
  const SloModelStatus status = tracker.ReportModel("m", now);
  ASSERT_EQ(status.windows.size(), 2u);
  EXPECT_EQ(Window(status, 10).total, 50);
  EXPECT_EQ(Window(status, 10).errors, 0);
  EXPECT_DOUBLE_EQ(Window(status, 10).burn_rate, 0.0);
  EXPECT_FALSE(status.breached);
}

TEST(SloTrackerTest, BurnRateIsErrorRateOverBudget) {
  // 99% availability → 1% error budget. 10% observed errors → burn 10x.
  SloTracker tracker(SloObjective{0.99, 0}, {10, 100});
  int64_t now = 1000 * kSecond;
  for (int i = 0; i < 90; ++i) tracker.Record("m", 100, true, now);
  for (int i = 0; i < 10; ++i) tracker.Record("m", 100, false, now);
  const SloModelStatus status = tracker.ReportModel("m", now);
  const SloWindowStatus& w = Window(status, 10);
  EXPECT_EQ(w.total, 100);
  EXPECT_EQ(w.errors, 10);
  EXPECT_DOUBLE_EQ(w.error_rate, 0.1);
  EXPECT_NEAR(w.burn_rate, 10.0, 1e-6);
  EXPECT_TRUE(status.breached);  // Both windows hold the same samples.
}

TEST(SloTrackerTest, LatencyObjectiveCountsSlowButOkAsBurn) {
  SloTracker tracker(SloObjective{0.99, /*latency_threshold_us=*/1000},
                     {10, 100});
  int64_t now = 1000 * kSecond;
  for (int i = 0; i < 95; ++i) tracker.Record("m", 100, true, now);
  for (int i = 0; i < 5; ++i) tracker.Record("m", 5000, true, now);  // Slow.
  const SloModelStatus status = tracker.ReportModel("m", now);
  const SloWindowStatus& w = Window(status, 10);
  EXPECT_EQ(w.errors, 0);
  EXPECT_EQ(w.slow, 5);
  EXPECT_DOUBLE_EQ(w.slow_rate, 0.05);
  EXPECT_NEAR(w.burn_rate, 5.0, 1e-6);  // slow_rate / 1% budget.
  EXPECT_TRUE(status.breached);
}

TEST(SloTrackerTest, NoLatencyObjectiveIgnoresSlowRequests) {
  SloTracker tracker(SloObjective{0.99, 0}, {10});
  int64_t now = 1000 * kSecond;
  for (int i = 0; i < 10; ++i) {
    tracker.Record("m", 60'000'000, true, now);  // Slow but no objective.
  }
  const SloModelStatus status = tracker.ReportModel("m", now);
  EXPECT_EQ(Window(status, 10).slow, 0);
  EXPECT_DOUBLE_EQ(Window(status, 10).burn_rate, 0.0);
  EXPECT_FALSE(status.breached);
}

TEST(SloTrackerTest, BreachRequiresEverySampledWindowBurning) {
  // Errors 90 s ago: outside the 10 s window, inside the 100 s one. The
  // short window is empty (no samples → doesn't veto), so this still
  // breaches; fresh ok traffic in the short window then clears it.
  SloTracker tracker(SloObjective{0.99, 0}, {10, 100});
  int64_t t0 = 1000 * kSecond;
  for (int i = 0; i < 10; ++i) tracker.Record("m", 100, false, t0);
  const int64_t now = t0 + 90 * kSecond;
  SloModelStatus status = tracker.ReportModel("m", now);
  EXPECT_EQ(Window(status, 10).total, 0);
  EXPECT_EQ(Window(status, 100).errors, 10);
  EXPECT_TRUE(status.breached);

  // 100 ok requests now: long window error rate drops to ~9% (burn 9x,
  // still ≥1) but the short window burns at 0 → multi-window AND clears.
  for (int i = 0; i < 100; ++i) tracker.Record("m", 100, true, now);
  status = tracker.ReportModel("m", now);
  EXPECT_EQ(Window(status, 10).total, 100);
  EXPECT_DOUBLE_EQ(Window(status, 10).burn_rate, 0.0);
  EXPECT_GE(Window(status, 100).burn_rate, 1.0);
  EXPECT_FALSE(status.breached);
}

TEST(SloTrackerTest, SamplesAgeOutOfTheWindow) {
  SloTracker tracker(SloObjective{0.99, 0}, {10});
  int64_t t0 = 1000 * kSecond;
  for (int i = 0; i < 20; ++i) tracker.Record("m", 100, false, t0);
  EXPECT_EQ(Window(tracker.ReportModel("m", t0), 10).total, 20);
  // Advance past the window: every bucket is stale.
  const int64_t later = t0 + 11 * kSecond;
  const SloModelStatus status = tracker.ReportModel("m", later);
  EXPECT_EQ(Window(status, 10).total, 0);
  EXPECT_DOUBLE_EQ(Window(status, 10).burn_rate, 0.0);
  EXPECT_FALSE(status.breached);
}

TEST(SloTrackerTest, RingSlotsRecycleAcrossWrapAround) {
  // Drive a 10 s window (1 s buckets) for 25 s — slots are reused twice —
  // recording one error per second. The window must always report ≤ 10
  // samples, all of them errors.
  SloTracker tracker(SloObjective{0.99, 0}, {10});
  int64_t now = 1000 * kSecond;
  for (int s = 0; s < 25; ++s) {
    tracker.Record("m", 100, false, now + s * kSecond);
  }
  const SloModelStatus status = tracker.ReportModel("m", now + 24 * kSecond);
  const SloWindowStatus& w = Window(status, 10);
  EXPECT_LE(w.total, 10);
  EXPECT_GE(w.total, 9);
  EXPECT_EQ(w.errors, w.total);
}

TEST(SloTrackerTest, PerModelObjectiveOverridesDefault) {
  SloTracker tracker(SloObjective{0.999, 0}, {10});
  tracker.SetObjective("lenient", SloObjective{0.5, 0});
  int64_t now = 1000 * kSecond;
  for (int i = 0; i < 8; ++i) {
    tracker.Record("lenient", 100, true, now);
    tracker.Record("strict", 100, true, now);
  }
  tracker.Record("lenient", 100, false, now);
  tracker.Record("strict", 100, false, now);
  // Same 1/9 error rate; lenient has a 50% budget (burn ~0.22), strict a
  // 0.1% budget (burn ~111x).
  const auto lenient = tracker.ReportModel("lenient", now);
  const auto strict = tracker.ReportModel("strict", now);
  EXPECT_LT(Window(lenient, 10).burn_rate, 1.0);
  EXPECT_FALSE(lenient.breached);
  EXPECT_GT(Window(strict, 10).burn_rate, 100.0);
  EXPECT_TRUE(strict.breached);
}

TEST(SloTrackerTest, ReportCoversAllModelsSortedAndPublishesGauges) {
  SloTracker tracker(SloObjective{0.99, 0}, {10});
  int64_t now = 1000 * kSecond;
  tracker.Record("zeta", 100, false, now);
  tracker.Record("alpha", 100, true, now);
  const auto report = tracker.Report(now);
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].model, "alpha");
  EXPECT_EQ(report[1].model, "zeta");

  // Report publishes slo.* gauges into the global registry.
  auto& registry = MetricsRegistry::Global();
  auto* burn = registry.GetGaugeFamily("slo.burn_rate", {"model", "window"});
  EXPECT_GE(burn->With("zeta", "10s")->Value(), 1.0);
  EXPECT_DOUBLE_EQ(burn->With("alpha", "10s")->Value(), 0.0);
  auto* breached = registry.GetGaugeFamily("slo.breached", {"model"});
  EXPECT_DOUBLE_EQ(breached->With("zeta")->Value(), 1.0);
  EXPECT_DOUBLE_EQ(breached->With("alpha")->Value(), 0.0);
}

TEST(SloTrackerTest, ResetDropsSamplesAndObjectives) {
  SloTracker tracker(SloObjective{0.99, 0}, {10});
  tracker.SetObjective("m", SloObjective{0.5, 0});
  int64_t now = 1000 * kSecond;
  tracker.Record("m", 100, false, now);
  tracker.Reset();
  const auto report = tracker.Report(now);
  EXPECT_TRUE(report.empty());
  // The model is forgotten entirely — unknown models report no windows.
  const auto status = tracker.ReportModel("m", now);
  EXPECT_TRUE(status.windows.empty());
  EXPECT_FALSE(status.breached);
}

}  // namespace
}  // namespace obs
}  // namespace qdb
