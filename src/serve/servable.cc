#include "serve/servable.h"

#include <cmath>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "encoding/encodings.h"
#include "fault/fault_injector.h"
#include "obs/labels.h"
#include "obs/obs.h"
#include "sim/statevector_simulator.h"
#include "variational/ansatz.h"

namespace qdb {
namespace serve {

namespace {

/// Expected trainable-parameter count for a variational artifact.
Result<int> ExpectedParamCount(const ModelArtifact& a) {
  const int n = a.num_features;
  switch (a.type) {
    case ModelType::kVqcClassifier:
      if (a.encoding == VqcEncoding::kReuploading) {
        return 2 * a.ansatz_layers * n;
      }
      return RealAmplitudesParamCount(n, a.ansatz_layers);
    case ModelType::kVqrRegressor:
      return 2 * a.ansatz_layers * n;
    default:
      return Status::InvalidArgument("artifact has no variational circuit");
  }
}

Status ValidateVariational(const ModelArtifact& a) {
  if (a.num_features < 1) {
    return Status::InvalidArgument("artifact has no features");
  }
  if (a.ansatz_layers < 1) {
    return Status::InvalidArgument("ansatz_layers must be >= 1");
  }
  QDB_ASSIGN_OR_RETURN(int expected, ExpectedParamCount(a));
  if (static_cast<int>(a.params.size()) != expected) {
    return Status::InvalidArgument(
        StrCat("artifact '", a.name, "' carries ", a.params.size(),
               " parameters but its circuit needs ", expected));
  }
  return Status::OK();
}

/// Appends the re-uploading layers with symbolic features: per layer
/// RY(scale·x_q), then the trained RY/RZ angles as constants, then the CX
/// chain — the symbolic twin of DataReuploadingCircuit.
void AppendSymbolicReuploading(Circuit& c, int layers, double feature_scale,
                               const DVector& params) {
  const int n = c.num_qubits();
  size_t p = 0;
  for (int layer = 0; layer < layers; ++layer) {
    for (int q = 0; q < n; ++q) {
      c.RY(q, ParamExpr::Affine(q, feature_scale, 0.0));
    }
    for (int q = 0; q < n; ++q) c.RY(q, params[p++]);
    for (int q = 0; q < n; ++q) c.RZ(q, params[p++]);
    if (n > 1) {
      for (int q = 0; q + 1 < n; ++q) c.CX(q, q + 1);
    }
  }
}

}  // namespace

const char* RequestKindName(RequestKind kind) {
  switch (kind) {
    case RequestKind::kPredict: return "predict";
    case RequestKind::kKernelRow: return "kernel_row";
  }
  return "predict";
}

Result<Circuit> BuildSymbolicInferenceCircuit(const ModelArtifact& a) {
  QDB_RETURN_IF_ERROR(ValidateVariational(a));
  const int n = a.num_features;
  Circuit c(n);
  if (a.type == ModelType::kVqrRegressor) {
    AppendSymbolicReuploading(c, a.ansatz_layers, a.feature_scale, a.params);
    return c;
  }
  switch (a.encoding) {
    case VqcEncoding::kAngle:
      // RY(feature_scale · x_q) per qubit, then the bound ansatz.
      for (int q = 0; q < n; ++q) {
        c.RY(q, ParamExpr::Affine(q, a.feature_scale, 0.0));
      }
      c.Append(RealAmplitudesAnsatz(n, a.ansatz_layers, a.entanglement)
                   .Bind(a.params));
      return c;
    case VqcEncoding::kReuploading:
      // The classifier pre-scales features before the shared re-uploading
      // circuit, so the affine multiplier carries the scale here too.
      AppendSymbolicReuploading(c, a.ansatz_layers, a.feature_scale, a.params);
      return c;
    case VqcEncoding::kZZFeatureMap:
      return Status::InvalidArgument(
          "ZZ feature maps are nonlinear in the features (RZZ angles are "
          "products), so no feature-symbolic circuit exists; serve via "
          "per-request bound circuits");
  }
  return Status::Internal("unhandled encoding");
}

Result<Circuit> BuildBoundInferenceCircuit(const ModelArtifact& a,
                                           const DVector& x) {
  QDB_RETURN_IF_ERROR(ValidateVariational(a));
  if (static_cast<int>(x.size()) != a.num_features) {
    return Status::InvalidArgument(
        StrCat("input has ", x.size(), " features, model '", a.name,
               "' expects ", a.num_features));
  }
  DVector scaled(x);
  for (auto& v : scaled) v *= a.feature_scale;
  const int n = a.num_features;
  Circuit c(n);
  if (a.type == ModelType::kVqrRegressor) {
    c.Append(DataReuploadingCircuit(x, a.ansatz_layers, a.feature_scale)
                 .Bind(a.params));
    return c;
  }
  switch (a.encoding) {
    case VqcEncoding::kAngle:
      c.Append(AngleEncoding(scaled, RotationAxis::kY));
      break;
    case VqcEncoding::kZZFeatureMap:
      c.Append(ZZFeatureMap(scaled, /*reps=*/2));
      break;
    case VqcEncoding::kReuploading:
      c.Append(DataReuploadingCircuit(scaled, a.ansatz_layers, 1.0)
                   .Bind(a.params));
      return c;
  }
  c.Append(RealAmplitudesAnsatz(n, a.ansatz_layers, a.entanglement)
               .Bind(a.params));
  return c;
}

uint64_t ArtifactCircuitFingerprint(const ModelArtifact& a) {
  if (a.type != ModelType::kVqcClassifier &&
      a.type != ModelType::kVqrRegressor) {
    return 0;
  }
  DVector zeros(static_cast<size_t>(a.num_features), 0.0);
  Result<Circuit> circuit = BuildBoundInferenceCircuit(a, zeros);
  if (!circuit.ok()) return 0;
  return Fnv1a64(circuit.value().StructuralFingerprint());
}

Result<std::shared_ptr<const ServableModel>> ServableModel::Create(
    ModelArtifact artifact) {
  auto servable = std::shared_ptr<ServableModel>(new ServableModel());
  switch (artifact.type) {
    case ModelType::kVqcClassifier:
    case ModelType::kVqrRegressor: {
      QDB_RETURN_IF_ERROR(ValidateVariational(artifact));
      const uint64_t fingerprint = ArtifactCircuitFingerprint(artifact);
      if (artifact.circuit_fingerprint != 0 &&
          artifact.circuit_fingerprint != fingerprint) {
        return Status::FailedPrecondition(StrFormat(
            "artifact '%s' was built against a different ansatz "
            "implementation (circuit fingerprint %016llx, this build "
            "produces %016llx); refusing to serve it",
            artifact.name.c_str(),
            static_cast<unsigned long long>(artifact.circuit_fingerprint),
            static_cast<unsigned long long>(fingerprint)));
      }
      artifact.circuit_fingerprint = fingerprint;
      const bool symbolic = !(artifact.type == ModelType::kVqcClassifier &&
                              artifact.encoding == VqcEncoding::kZZFeatureMap);
      if (symbolic) {
        QDB_ASSIGN_OR_RETURN(Circuit circuit,
                             BuildSymbolicInferenceCircuit(artifact));
        // Compiled privately, not through the global cache: the program
        // lives exactly as long as the servable and cannot be evicted out
        // from under a request burst.
        servable->program_ = std::make_shared<const CompiledCircuit>(
            CompiledCircuit::Compile(circuit));
      }
      break;
    }
    case ModelType::kKernelSvm: {
      if (artifact.num_features < 1) {
        return Status::InvalidArgument("artifact has no features");
      }
      if (artifact.support_vectors.empty()) {
        return Status::InvalidArgument(
            StrCat("kernel artifact '", artifact.name,
                   "' has no support vectors"));
      }
      for (const auto& sv : artifact.support_vectors) {
        if (static_cast<int>(sv.features.size()) != artifact.num_features) {
          return Status::InvalidArgument(
              StrCat("support vector width ", sv.features.size(),
                     " != num_features ", artifact.num_features));
        }
      }
      if (artifact.kernel_encoding == KernelEncodingKind::kZZFeatureMap &&
          artifact.kernel_reps < 1) {
        return Status::InvalidArgument("kernel_reps must be >= 1");
      }
      servable->kernel_ =
          artifact.kernel_encoding == KernelEncodingKind::kAngle
              ? MakeAngleKernel(artifact.kernel_scale)
              : MakeZZFeatureMapKernel(artifact.kernel_reps);
      std::vector<DVector> sv_features;
      sv_features.reserve(artifact.support_vectors.size());
      for (const auto& sv : artifact.support_vectors) {
        sv_features.push_back(sv.features);
      }
      QDB_ASSIGN_OR_RETURN(servable->sv_states_,
                           servable->kernel_->EncodedStates(sv_features));
      break;
    }
    case ModelType::kQuboConfig:
      break;  // Configuration-only; nothing to precompute.
  }
  servable->artifact_ = std::move(artifact);
  return std::shared_ptr<const ServableModel>(std::move(servable));
}

size_t ServableModel::ResidentBytes() const {
  size_t bytes = sizeof(*this);
  // Artifact payload.
  bytes += artifact_.name.capacity();
  bytes += artifact_.params.capacity() * sizeof(double);
  bytes += artifact_.support_vectors.capacity() * sizeof(SupportVector);
  for (const SupportVector& sv : artifact_.support_vectors) {
    bytes += sv.features.capacity() * sizeof(double);
  }
  for (const auto& [key, value] : artifact_.config) {
    bytes += sizeof(key) + sizeof(value) + key.capacity() + value.capacity();
  }
  // Compiled symbolic program (angle / re-uploading / VQR path).
  if (program_ != nullptr) {
    bytes += sizeof(CompiledCircuit);
    bytes += program_->ops().capacity() * sizeof(CompiledOp);
    for (const CompiledOp& op : program_->ops()) {
      bytes += op.m.rows() * op.m.cols() * sizeof(Complex);
      bytes += op.qubits.capacity() * sizeof(int);
      bytes += op.exprs.capacity() * sizeof(ParamExpr);
    }
  }
  // Pre-encoded support-vector states: 2^num_features amplitudes each —
  // the dominant term for kernel-SVM servables.
  bytes += sv_states_.capacity() * sizeof(CVector);
  for (const CVector& state : sv_states_) {
    bytes += state.capacity() * sizeof(Complex);
  }
  return bytes;
}

Status ServableModel::ValidateInput(RequestKind kind,
                                    const DVector& input) const {
  if (artifact_.type == ModelType::kQuboConfig) {
    return Status::InvalidArgument(
        StrCat("model '", artifact_.name,
               "' is a solver configuration, not an inference model"));
  }
  if (kind == RequestKind::kKernelRow &&
      artifact_.type != ModelType::kKernelSvm) {
    return Status::InvalidArgument(
        StrCat("model '", artifact_.name, "' (", ModelTypeName(artifact_.type),
               ") cannot answer kernel_row requests"));
  }
  if (static_cast<int>(input.size()) != artifact_.num_features) {
    return Status::InvalidArgument(
        StrCat("input has ", input.size(), " features, model '",
               artifact_.name, "' expects ", artifact_.num_features));
  }
  return Status::OK();
}

Result<std::vector<InferenceValue>> ServableModel::RunBatch(
    RequestKind kind, const std::vector<DVector>& inputs) const {
  if (inputs.empty()) {
    return Status::InvalidArgument("empty inference batch");
  }
  for (const auto& x : inputs) {
    QDB_RETURN_IF_ERROR(ValidateInput(kind, x));
  }
  // Fault point "servable.run" (scoped by model name): fires before the
  // execution tally so tests can assert injected failures never reached
  // the simulator.
  QDB_FAULT_POINT_SCOPED("servable.run", artifact_.name);
  batch_executions_.fetch_add(1, std::memory_order_relaxed);
  switch (artifact_.type) {
    case ModelType::kVqcClassifier:
    case ModelType::kVqrRegressor:
      return RunVariational(inputs);
    case ModelType::kKernelSvm:
      return RunKernel(kind, inputs);
    case ModelType::kQuboConfig:
      return Status::InvalidArgument("qubo_config models are not executable");
  }
  return Status::Internal("unhandled model type");
}

Result<std::vector<InferenceValue>> ServableModel::RunVariational(
    const std::vector<DVector>& inputs) const {
  const bool classify = artifact_.type == ModelType::kVqcClassifier;
  std::vector<InferenceValue> out(inputs.size());
  bool use_compiled = program_ != nullptr;
  if (use_compiled && fault::FaultInjector::Global().enabled() &&
      fault::FaultInjector::Global()
          .Sample("servable.compiled_exec", artifact_.name)
          .has_value()) {
    use_compiled = false;  // Injected compiled-path fault: degrade below.
  }
  if (use_compiled) {
    Status compiled = RunCompiled(inputs, out);
    if (!compiled.ok()) use_compiled = false;  // Real fault: degrade too.
  }
  if (!use_compiled) {
    if (program_ != nullptr) {
      // The compiled path exists but faulted: serve the batch through the
      // interpreted per-request circuits instead of failing it. (For ZZ
      // models the interpreted path is the normal path, not degradation.)
      static obs::Counter* fallbacks =
          obs::GetCounter("serve.degraded.interpreted_fallbacks");
      static obs::CounterFamily* fallbacks_by_model =
          obs::MetricsRegistry::Global().GetCounterFamily(
              "serve.degraded.interpreted_fallbacks", {"model"});
      fallbacks->Increment();
      fallbacks_by_model->With(artifact_.name)->Increment();
      // A span (not just a counter): the degradation rung shows up in the
      // request's trace right where the latency went.
      QDB_TRACE_SCOPE("serve.degraded.interpreted_fallback", "serve");
      QDB_RETURN_IF_ERROR(RunInterpreted(inputs, out));
    } else {
      QDB_RETURN_IF_ERROR(RunInterpreted(inputs, out));
    }
  }
  for (auto& v : out) {
    v.label = classify ? (v.value < 0.0 ? -1 : 1) : 0;
  }
  return out;
}

Status ServableModel::RunCompiled(const std::vector<DVector>& inputs,
                                  std::vector<InferenceValue>& out) const {
  // One compiled program, B feature bindings: each task replays the fused
  // kernel sequence with the request's features as the parameter vector.
  std::vector<Status> statuses(inputs.size());
  ThreadPool::Global().RunTasks(inputs.size(), [&](size_t i) {
    StateVector state(artifact_.num_features);
    statuses[i] = program_->Execute(state, inputs[i]);
    if (!statuses[i].ok()) return;
    out[i].value = ExpectationZ(state, 0);
  });
  for (const auto& status : statuses) QDB_RETURN_IF_ERROR(status);
  return Status::OK();
}

Status ServableModel::RunInterpreted(const std::vector<DVector>& inputs,
                                     std::vector<InferenceValue>& out) const {
  // Per-request bound circuits: the only option for ZZ feature maps (the
  // map is nonlinear in x) and the fallback when compiled execution
  // faults. Interpreted execution keeps these one-shot circuits out of the
  // compilation cache (every distinct input would be a new entry and evict
  // programs that will actually be reused).
  std::vector<Circuit> circuits;
  circuits.reserve(inputs.size());
  for (const auto& x : inputs) {
    QDB_ASSIGN_OR_RETURN(Circuit c, BuildBoundInferenceCircuit(artifact_, x));
    circuits.push_back(std::move(c));
  }
  StateVectorSimulator simulator;
  simulator.set_execution_mode(ExecutionMode::kInterpreted);
  return simulator.RunBatchReduce(
      circuits, {}, nullptr, [&out](size_t i, StateVector&& state) {
        out[i].value = ExpectationZ(state, 0);
        return Status::OK();
      });
}

Result<std::vector<InferenceValue>> ServableModel::RunKernel(
    RequestKind kind, const std::vector<DVector>& inputs) const {
  // One encoding circuit per request point, overlapped against the support
  // states encoded at load time.
  QDB_ASSIGN_OR_RETURN(Matrix rows,
                       kernel_->CrossFromEncoded(inputs, sv_states_));
  const size_t m = sv_states_.size();
  std::vector<InferenceValue> out(inputs.size());
  for (size_t i = 0; i < inputs.size(); ++i) {
    double decision = artifact_.bias;
    for (size_t j = 0; j < m; ++j) {
      decision += artifact_.support_vectors[j].coeff * rows(i, j).real();
    }
    out[i].value = decision;
    out[i].label = decision < 0.0 ? -1 : 1;
    if (kind == RequestKind::kKernelRow) {
      out[i].row.resize(m);
      for (size_t j = 0; j < m; ++j) out[i].row[j] = rows(i, j).real();
    }
  }
  return out;
}

}  // namespace serve
}  // namespace qdb
