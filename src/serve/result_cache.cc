#include "serve/result_cache.h"

#include <cstring>

#include "common/strings.h"

namespace qdb {
namespace serve {

std::string ResultCache::MakeKey(const std::string& model, int version,
                                 RequestKind kind, const DVector& input) {
  std::string key = StrCat(model, "\x1f", version, "\x1f",
                           static_cast<int>(kind), "\x1f");
  // Raw double bytes: bit-exact identity, no formatting round-trip.
  const size_t offset = key.size();
  key.resize(offset + input.size() * sizeof(double));
  if (!input.empty()) {
    std::memcpy(key.data() + offset, input.data(),
                input.size() * sizeof(double));
  }
  return key;
}

std::optional<InferenceValue> ResultCache::Lookup(const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
  return it->second.value;
}

void ResultCache::Insert(const std::string& key, const InferenceValue& value) {
  if (capacity_ == 0) return;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.value = value;
    lru_.splice(lru_.begin(), lru_, it->second.lru_pos);
    return;
  }
  lru_.push_front(key);
  entries_[key] = Entry{value, lru_.begin()};
  while (entries_.size() > capacity_) {
    entries_.erase(lru_.back());
    lru_.pop_back();
    ++evictions_;
  }
}

ResultCache::Stats ResultCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s;
  s.hits = hits_;
  s.misses = misses_;
  s.evictions = evictions_;
  s.size = entries_.size();
  s.capacity = capacity_;
  return s;
}

void ResultCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  entries_.clear();
  lru_.clear();
  hits_ = misses_ = evictions_ = 0;
}

}  // namespace serve
}  // namespace qdb
