#include "store/memory_budget.h"

#include <algorithm>

namespace qdb {
namespace store {

void MemoryBudget::Add(const std::string& key, size_t bytes, bool evictable,
                       bool pinned) {
  Item& item = items_[key];
  resident_bytes_ -= item.bytes;
  item.bytes = bytes;
  item.evictable = evictable;
  item.pinned = pinned;
  item.tick = ++tick_;
  resident_bytes_ += bytes;
}

bool MemoryBudget::Touch(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return false;
  it->second.tick = ++tick_;
  return true;
}

void MemoryBudget::Drop(const std::string& key) {
  auto it = items_.find(key);
  if (it == items_.end()) return;
  resident_bytes_ -= it->second.bytes;
  items_.erase(it);
}

bool MemoryBudget::SetPinned(const std::string& key, bool pinned) {
  auto it = items_.find(key);
  if (it == items_.end()) return false;
  it->second.pinned = pinned;
  return true;
}

std::vector<std::string> MemoryBudget::PlanEvictions(
    const std::string& protect) const {
  std::vector<std::string> plan;
  if (budget_bytes_ == 0 || resident_bytes_ <= budget_bytes_) return plan;

  // Victim candidates in LRU order.
  std::vector<std::pair<uint64_t, const std::string*>> candidates;
  candidates.reserve(items_.size());
  for (const auto& [key, item] : items_) {
    if (!item.evictable || item.pinned) continue;
    if (!protect.empty() && key == protect) continue;
    candidates.emplace_back(item.tick, &key);
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  size_t would_remain = resident_bytes_;
  for (const auto& [tick, key] : candidates) {
    if (would_remain <= budget_bytes_) break;
    would_remain -= items_.at(*key).bytes;
    plan.push_back(*key);
  }
  return plan;
}

}  // namespace store
}  // namespace qdb
