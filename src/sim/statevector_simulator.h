/// \file statevector_simulator.h
/// \brief Executes circuits on StateVector and computes observable
/// expectation values — the main gate-model substrate of qdb.

#ifndef QDB_SIM_STATEVECTOR_SIMULATOR_H_
#define QDB_SIM_STATEVECTOR_SIMULATOR_H_

#include "circuit/circuit.h"
#include "common/result.h"
#include "ops/pauli.h"
#include "sim/state_vector.h"

namespace qdb {

/// \brief Exact (noise-free) state-vector execution of circuits.
///
/// Stateless apart from configuration; safe to share across calls. Gate
/// dispatch picks a specialized kernel per gate class: diagonal gates touch
/// each amplitude once, controlled gates skip the untouched half, generic
/// k-qubit gates fall back to the 2^k-group kernel.
class StateVectorSimulator {
 public:
  StateVectorSimulator() = default;

  /// Runs `circuit` from |0...0⟩ with `params` bound to the symbolic
  /// parameters. Fails if fewer parameters are supplied than referenced.
  Result<StateVector> Run(const Circuit& circuit,
                          const DVector& params = {}) const;

  /// Runs `circuit` from the given initial state (in place).
  Status RunInPlace(const Circuit& circuit, StateVector& state,
                    const DVector& params = {}) const;

  /// Applies a single bound gate to `state`.
  Status ApplyGate(const Gate& gate, const DVector& angles,
                   StateVector& state) const;
};

/// \brief ⟨ψ|P|ψ⟩ for a single Pauli string (real by Hermiticity).
double Expectation(const StateVector& state, const PauliString& pauli);

/// \brief ⟨ψ|H|ψ⟩ for a Pauli-sum observable.
double Expectation(const StateVector& state, const PauliSum& observable);

/// \brief ⟨ψ|Z_q|ψ⟩ convenience (= 1 − 2·P[q = 1]).
double ExpectationZ(const StateVector& state, int qubit);

}  // namespace qdb

#endif  // QDB_SIM_STATEVECTOR_SIMULATOR_H_
