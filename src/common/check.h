/// \file check.h
/// \brief Precondition checking macros (abort-on-failure, always on).
///
/// QDB_CHECK guards programmer errors: violated invariants and API misuse
/// that cannot be triggered by well-formed user data. Data-dependent
/// failures go through Status/Result instead.

#ifndef QDB_COMMON_CHECK_H_
#define QDB_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace qdb {
namespace internal {

/// Accumulates a failure message via operator<< and aborts on destruction.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "QDB_CHECK failed: " << condition << " at " << file << ":"
            << line << " ";
  }

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Binds tighter than ?: but looser than <<, so the whole streamed chain is
/// consumed before being discarded (the glog voidify trick).
struct Voidify {
  void operator&(CheckFailureStream&&) {}
  void operator&(CheckFailureStream&) {}
};

}  // namespace internal
}  // namespace qdb

#define QDB_CHECK(condition)                  \
  (condition) ? (void)0                       \
              : ::qdb::internal::Voidify() &  \
                    ::qdb::internal::CheckFailureStream(#condition, __FILE__, \
                                                        __LINE__)

#define QDB_CHECK_EQ(a, b) QDB_CHECK((a) == (b)) << " (" << (a) << " vs " << (b) << ") "
#define QDB_CHECK_NE(a, b) QDB_CHECK((a) != (b)) << " (" << (a) << " vs " << (b) << ") "
#define QDB_CHECK_LT(a, b) QDB_CHECK((a) < (b)) << " (" << (a) << " vs " << (b) << ") "
#define QDB_CHECK_LE(a, b) QDB_CHECK((a) <= (b)) << " (" << (a) << " vs " << (b) << ") "
#define QDB_CHECK_GT(a, b) QDB_CHECK((a) > (b)) << " (" << (a) << " vs " << (b) << ") "
#define QDB_CHECK_GE(a, b) QDB_CHECK((a) >= (b)) << " (" << (a) << " vs " << (b) << ") "

#endif  // QDB_COMMON_CHECK_H_
