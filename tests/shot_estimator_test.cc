// Tests for shot-based expectation estimation.

#include <gtest/gtest.h>

#include <cmath>

#include "sim/shot_estimator.h"
#include "sim/statevector_simulator.h"
#include "sim/unitary_simulator.h"

namespace qdb {
namespace {

TEST(BasisChangeTest, XBasisIsHadamard) {
  Circuit c(1);
  AppendMeasurementBasisChange(c, PauliString::Parse("X").value());
  ASSERT_EQ(c.size(), 1u);
  EXPECT_EQ(c.gates()[0].type, GateType::kH);
}

TEST(BasisChangeTest, DiagonalizesEveryPauli) {
  // Property: V P V† must be diagonal with ±1 entries matching Z-parity,
  // where V is the appended basis change.
  for (const char* label : {"X", "Y", "Z", "XY", "YZ", "XX", "ZY"}) {
    PauliString pauli = PauliString::Parse(label).value();
    Circuit change(pauli.num_qubits());
    AppendMeasurementBasisChange(change, pauli);
    Matrix v = CircuitUnitary(change).ValueOrDie();
    Matrix transformed = v * pauli.ToMatrix() * v.Adjoint();
    // Expected diagonal: parity of the support bits.
    const int n = pauli.num_qubits();
    uint64_t support = 0;
    for (int q = 0; q < n; ++q) {
      if (pauli.op(q) != PauliOp::kI) support |= uint64_t{1} << (n - 1 - q);
    }
    for (uint64_t i = 0; i < transformed.rows(); ++i) {
      const double expected =
          (__builtin_popcountll(i & support) & 1) ? -1.0 : 1.0;
      EXPECT_NEAR(transformed(i, i).real(), expected, 1e-10) << label;
      for (uint64_t j = 0; j < transformed.cols(); ++j) {
        if (i != j) {
          EXPECT_NEAR(std::abs(transformed(i, j)), 0.0, 1e-10) << label;
        }
      }
    }
  }
}

TEST(ShotEstimatorTest, IdentityIsExact) {
  StateVector psi(2);
  Rng rng(1);
  auto est = EstimatePauliExpectation(psi, PauliString(2), 10, rng);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est.value(), 1.0);
}

TEST(ShotEstimatorTest, ConvergesToExactValue) {
  Circuit c(2);
  c.H(0).CRY(0, 1, 1.1).RZZ(0, 1, 0.4);
  StateVectorSimulator sim;
  StateVector psi = sim.Run(c).ValueOrDie();
  PauliString pauli = PauliString::Parse("XY").value();
  const double exact = Expectation(psi, pauli);
  Rng rng(7);
  auto est = EstimatePauliExpectation(psi, pauli, 40000, rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value(), exact, 0.02);
}

TEST(ShotEstimatorTest, ErrorShrinksWithShots) {
  Circuit c(1);
  c.RY(0, 1.0);
  StateVectorSimulator sim;
  StateVector psi = sim.Run(c).ValueOrDie();
  PauliString z = PauliString::Parse("Z").value();
  const double exact = Expectation(psi, z);
  // Average absolute error over repetitions at two shot budgets.
  auto mean_abs_error = [&](int shots, uint64_t seed) {
    Rng rng(seed);
    double total = 0.0;
    const int reps = 30;
    for (int r = 0; r < reps; ++r) {
      total +=
          std::abs(EstimatePauliExpectation(psi, z, shots, rng).ValueOrDie() -
                   exact);
    }
    return total / reps;
  };
  const double err_small = mean_abs_error(50, 3);
  const double err_large = mean_abs_error(5000, 4);
  EXPECT_LT(err_large, err_small);  // ~10x fewer shots → ~√100 more error.
}

TEST(ShotEstimatorTest, PauliSumEstimateAndStandardError) {
  Circuit c(2);
  c.H(0).CX(0, 1);
  StateVectorSimulator sim;
  StateVector psi = sim.Run(c).ValueOrDie();
  PauliSum obs(2);
  obs.Add(0.5, "ZZ").Add(-1.0, "XX").Add(2.0, "II");
  const double exact = Expectation(psi, obs);
  Rng rng(11);
  auto est = EstimateExpectation(psi, obs, 20000, rng);
  ASSERT_TRUE(est.ok());
  EXPECT_NEAR(est.value().value, exact, 0.05);
  // Bell state: ZZ and XX are deterministic (±1 eigenstates), so the
  // sample variance — and the standard error — is (near) zero.
  EXPECT_LT(est.value().standard_error, 0.01);
  EXPECT_EQ(est.value().total_shots, 2 * 20000);
}

TEST(ShotEstimatorTest, StandardErrorCoversTrueValue) {
  Circuit c(2);
  c.RY(0, 0.7).RY(1, 1.9).CX(0, 1);
  StateVectorSimulator sim;
  StateVector psi = sim.Run(c).ValueOrDie();
  PauliSum obs(2);
  obs.Add(1.0, "ZI").Add(0.5, "IX");
  const double exact = Expectation(psi, obs);
  Rng rng(13);
  int covered = 0;
  const int reps = 25;
  for (int r = 0; r < reps; ++r) {
    auto est = EstimateExpectation(psi, obs, 500, rng);
    ASSERT_TRUE(est.ok());
    if (std::abs(est.value().value - exact) <=
        3.0 * est.value().standard_error) {
      ++covered;
    }
  }
  EXPECT_GE(covered, reps - 2);  // 3σ coverage ≈ 99.7%.
}

TEST(QwcGroupingTest, CompatibleTermsShareAGroup) {
  PauliSum obs(3);
  obs.Add(1.0, "ZZI").Add(0.5, "ZIZ").Add(0.2, "IZZ");  // All Z-basis.
  auto groups = GroupQubitWiseCommuting(obs);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 3u);
}

TEST(QwcGroupingTest, ConflictingBasesSplit) {
  PauliSum obs(2);
  obs.Add(1.0, "ZZ").Add(1.0, "XX").Add(1.0, "ZI").Add(1.0, "IX");
  auto groups = GroupQubitWiseCommuting(obs);
  // {ZZ, ZI} share the Z⊗Z basis; {XX, IX} share X⊗X.
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].size() + groups[1].size(), 4u);
}

TEST(QwcGroupingTest, IdentityTermsExcluded) {
  PauliSum obs(2);
  obs.Add(3.0, "II").Add(1.0, "ZI");
  auto groups = GroupQubitWiseCommuting(obs);
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].size(), 1u);
}

TEST(QwcGroupingTest, MixedAxesOnDifferentQubitsCommute) {
  PauliSum obs(3);
  obs.Add(1.0, "XIZ").Add(1.0, "IYZ").Add(1.0, "XYI");
  // Pairwise QWC: combined basis XYZ covers all three.
  auto groups = GroupQubitWiseCommuting(obs);
  ASSERT_EQ(groups.size(), 1u);
}

TEST(GroupedEstimateTest, MatchesExactWithManyShots) {
  Circuit c(3);
  c.H(0).CRY(0, 1, 0.8).CX(1, 2).RZ(2, 0.4);
  StateVectorSimulator sim;
  StateVector psi = sim.Run(c).ValueOrDie();
  PauliSum obs(3);
  obs.Add(0.5, "ZZI").Add(-0.8, "XIX").Add(0.2, "IZZ").Add(1.5, "III");
  const double exact = Expectation(psi, obs);
  Rng rng(21);
  auto grouped = EstimateExpectationGrouped(psi, obs, 30000, rng);
  ASSERT_TRUE(grouped.ok());
  EXPECT_NEAR(grouped.value().value, exact, 0.05);
}

TEST(GroupedEstimateTest, SpendsFewerShotsThanPerTerm) {
  Circuit c(2);
  c.H(0).CX(0, 1);
  StateVectorSimulator sim;
  StateVector psi = sim.Run(c).ValueOrDie();
  PauliSum obs(2);
  obs.Add(1.0, "ZZ").Add(0.5, "ZI").Add(0.25, "IZ");  // One QWC group.
  Rng rng(23);
  auto grouped = EstimateExpectationGrouped(psi, obs, 1000, rng);
  auto per_term = EstimateExpectation(psi, obs, 1000, rng);
  ASSERT_TRUE(grouped.ok());
  ASSERT_TRUE(per_term.ok());
  EXPECT_EQ(grouped.value().total_shots, 1000);      // 1 group.
  EXPECT_EQ(per_term.value().total_shots, 3 * 1000);  // 3 terms.
}

TEST(ShotEstimatorTest, Validation) {
  StateVector psi(2);
  Rng rng(1);
  EXPECT_FALSE(
      EstimatePauliExpectation(psi, PauliString::Parse("Z").value(), 10, rng)
          .ok());  // Width mismatch.
  EXPECT_FALSE(
      EstimatePauliExpectation(psi, PauliString(2), 0, rng).ok());  // Shots.
  PauliSum obs(2);
  obs.Add(1.0, "ZZ");
  EXPECT_FALSE(EstimateExpectation(psi, obs, 1, rng).ok());
}

}  // namespace
}  // namespace qdb
