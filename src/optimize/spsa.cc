#include "optimize/spsa.h"

#include <cmath>

#include "obs/trace.h"

namespace qdb {

Result<OptimizeResult> MinimizeSpsa(const Objective& objective,
                                    const DVector& initial,
                                    const SpsaOptions& options) {
  if (options.a <= 0.0 || options.c <= 0.0) {
    return Status::InvalidArgument("SPSA gains a and c must be positive");
  }
  QDB_TRACE_SCOPE("Spsa::Minimize", "optimize");
  Rng rng(options.seed);
  OptimizeResult result;
  DVector params = initial;
  QDB_ASSIGN_OR_RETURN(double best_value, objective(params));
  result.params = params;
  result.value = best_value;

  const size_t n = params.size();
  DVector delta(n);
  DVector perturbed(n);

  for (int k = 0; k < options.max_iterations; ++k) {
    const double ak = options.a / std::pow(k + 1 + options.big_a, options.alpha);
    const double ck = options.c / std::pow(k + 1, options.gamma);
    // Rademacher perturbation direction.
    for (auto& d : delta) d = rng.Bernoulli(0.5) ? 1.0 : -1.0;

    for (size_t i = 0; i < n; ++i) perturbed[i] = params[i] + ck * delta[i];
    QDB_ASSIGN_OR_RETURN(double f_plus, objective(perturbed));
    for (size_t i = 0; i < n; ++i) perturbed[i] = params[i] - ck * delta[i];
    QDB_ASSIGN_OR_RETURN(double f_minus, objective(perturbed));

    const double diff = (f_plus - f_minus) / (2.0 * ck);
    for (size_t i = 0; i < n; ++i) params[i] -= ak * diff / delta[i];
    // ĝ_i = diff / δ_i with δ_i = ±1, so ‖ĝ‖₂ = |diff|·√n.
    result.gradient_norm_history.push_back(std::abs(diff) *
                                           std::sqrt(static_cast<double>(n)));

    ++result.iterations;
    QDB_ASSIGN_OR_RETURN(double value, objective(params));
    result.history.push_back(value);
    if (value < best_value) {
      best_value = value;
      result.params = params;
      result.value = value;
    }
  }
  result.converged = true;  // SPSA runs a fixed budget by design.
  return result;
}

}  // namespace qdb
