#include "kernel/quantum_kernel.h"

#include "common/check.h"
#include "encoding/encodings.h"
#include "linalg/vector_ops.h"
#include "obs/obs.h"
#include "sim/statevector_simulator.h"

namespace qdb {

namespace {

/// Gram / cross-matrix construction counters: how many kernel entries were
/// computed and how many encoding circuits were simulated to get them.
struct KernelCounters {
  obs::Counter* circuit_runs = obs::GetCounter("kernel.circuit_runs");
  obs::Counter* entries = obs::GetCounter("kernel.entries_computed");
};

KernelCounters& Counters() {
  static KernelCounters counters;
  return counters;
}

}  // namespace

FidelityQuantumKernel::FidelityQuantumKernel(EncodingFn encoder)
    : encoder_(std::move(encoder)) {
  QDB_CHECK(encoder_ != nullptr);
}

Result<CVector> FidelityQuantumKernel::EncodedState(const DVector& x) const {
  if (x.empty()) {
    return Status::InvalidArgument("cannot encode an empty feature vector");
  }
  Circuit circuit = encoder_(x);
  StateVectorSimulator sim;
  QDB_ASSIGN_OR_RETURN(StateVector state, sim.Run(circuit));
  Counters().circuit_runs->Increment();
  return state.amplitudes();
}

Result<double> FidelityQuantumKernel::Evaluate(const DVector& x,
                                               const DVector& y) const {
  QDB_ASSIGN_OR_RETURN(CVector phi_x, EncodedState(x));
  QDB_ASSIGN_OR_RETURN(CVector phi_y, EncodedState(y));
  if (phi_x.size() != phi_y.size()) {
    return Status::InvalidArgument("encoded states have different widths");
  }
  Counters().entries->Increment();
  return Fidelity(phi_x, phi_y);
}

Result<Matrix> FidelityQuantumKernel::GramMatrix(
    const std::vector<DVector>& xs) const {
  if (xs.empty()) {
    return Status::InvalidArgument("empty data set");
  }
  QDB_TRACE_SCOPE("FidelityQuantumKernel::GramMatrix", "kernel");
  std::vector<CVector> states;
  states.reserve(xs.size());
  for (const auto& x : xs) {
    QDB_ASSIGN_OR_RETURN(CVector s, EncodedState(x));
    if (!states.empty() && s.size() != states.front().size()) {
      return Status::InvalidArgument("encoded states have different widths");
    }
    states.push_back(std::move(s));
  }
  Matrix gram(xs.size(), xs.size());
  for (size_t i = 0; i < xs.size(); ++i) {
    gram(i, i) = Complex(1.0, 0.0);
    for (size_t j = i + 1; j < xs.size(); ++j) {
      const double k = Fidelity(states[i], states[j]);
      gram(i, j) = Complex(k, 0.0);
      gram(j, i) = Complex(k, 0.0);
    }
  }
  // Off-diagonal upper triangle was computed; the diagonal is free.
  Counters().entries->Increment(
      static_cast<long>(xs.size() * (xs.size() - 1) / 2));
  return gram;
}

Result<Matrix> FidelityQuantumKernel::CrossMatrix(
    const std::vector<DVector>& test, const std::vector<DVector>& train) const {
  if (test.empty() || train.empty()) {
    return Status::InvalidArgument("empty data set");
  }
  QDB_TRACE_SCOPE("FidelityQuantumKernel::CrossMatrix", "kernel");
  std::vector<CVector> train_states;
  train_states.reserve(train.size());
  for (const auto& x : train) {
    QDB_ASSIGN_OR_RETURN(CVector s, EncodedState(x));
    train_states.push_back(std::move(s));
  }
  Matrix cross(test.size(), train.size());
  for (size_t i = 0; i < test.size(); ++i) {
    QDB_ASSIGN_OR_RETURN(CVector phi, EncodedState(test[i]));
    for (size_t j = 0; j < train.size(); ++j) {
      if (phi.size() != train_states[j].size()) {
        return Status::InvalidArgument("encoded states have different widths");
      }
      cross(i, j) = Complex(Fidelity(phi, train_states[j]), 0.0);
    }
  }
  Counters().entries->Increment(
      static_cast<long>(test.size() * train.size()));
  return cross;
}

FidelityQuantumKernel MakeAngleKernel(double scale) {
  return FidelityQuantumKernel([scale](const DVector& x) {
    return AngleEncoding(x, RotationAxis::kY, scale);
  });
}

FidelityQuantumKernel MakeZZFeatureMapKernel(int reps) {
  return FidelityQuantumKernel(
      [reps](const DVector& x) { return ZZFeatureMap(x, reps); });
}

FidelityQuantumKernel MakeAmplitudeKernel() {
  return FidelityQuantumKernel([](const DVector& x) {
    auto circuit = AmplitudeEncoding(x);
    QDB_CHECK(circuit.ok()) << circuit.status().ToString();
    return std::move(circuit).value();
  });
}

}  // namespace qdb
