/// \file cardinality.h
/// \brief Cardinality / selectivity estimation substrate for the
/// quantum-learned-estimator experiment (E16): synthetic tables with
/// tunable inter-column correlation (Gaussian copula), conjunctive range
/// queries with exact ground-truth selectivities, and the classical
/// baselines (attribute-independence histograms, uniform sampling) that
/// learned estimators are measured against.

#ifndef QDB_DB_CARDINALITY_H_
#define QDB_DB_CARDINALITY_H_

#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/types.h"

namespace qdb {

/// \brief A synthetic table whose column values lie in [0, 1).
struct SyntheticTable {
  std::vector<DVector> rows;

  int num_rows() const { return static_cast<int>(rows.size()); }
  int num_columns() const {
    return rows.empty() ? 0 : static_cast<int>(rows.front().size());
  }
};

/// \brief Generates rows from a Gaussian copula: a shared latent factor
/// with weight `correlation` ∈ [0, 1) couples all columns (0 = independent
/// columns, → 1 = perfectly correlated). Marginals are uniform on [0, 1).
SyntheticTable MakeCorrelatedTable(int rows, int columns, double correlation,
                                   Rng& rng);

/// \brief A conjunctive range predicate: lo[j] ≤ col_j < hi[j] for all j.
struct RangeQuery {
  DVector lo;
  DVector hi;

  /// Exact selectivity by scanning the table (the ground truth).
  double TrueSelectivity(const SyntheticTable& table) const;

  /// Flattened [lo₀, hi₀, lo₁, hi₁, …] feature vector for learned models.
  DVector ToFeatures() const;
};

/// \brief A random range query: each column gets a uniform random interval
/// with width at least `min_width`.
RangeQuery RandomRangeQuery(int columns, Rng& rng, double min_width = 0.05);

/// \brief The classical textbook estimator: per-column equi-width
/// histograms combined under the attribute-value-independence assumption —
/// exact for independent columns, increasingly wrong as correlation grows.
class IndependenceEstimator {
 public:
  static IndependenceEstimator Build(const SyntheticTable& table, int buckets);

  /// Product of the per-column histogram selectivities.
  double Estimate(const RangeQuery& query) const;

 private:
  IndependenceEstimator() = default;
  /// histograms_[col][bucket] = fraction of rows in the bucket.
  std::vector<DVector> histograms_;
};

/// \brief Uniform-sampling estimator with `samples` probes (floor of one
/// half-hit to avoid zero estimates).
double SamplingEstimate(const SyntheticTable& table, const RangeQuery& query,
                        int samples, Rng& rng);

/// \brief The q-error metric of the cardinality-estimation literature:
/// max(est/truth, truth/est), with both sides floored at `floor_sel` to
/// keep the metric finite.
double QError(double estimate, double truth, double floor_sel = 1e-4);

/// \brief Maps a selectivity to a [−1, 1] regression target
/// (log₁₀ scale over [10^−4, 1]) and back — the label transform used when
/// training the VQR on selectivities.
double SelectivityToTarget(double selectivity);
double TargetToSelectivity(double target);

}  // namespace qdb

#endif  // QDB_DB_CARDINALITY_H_
