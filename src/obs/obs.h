/// \file obs.h
/// \brief Umbrella header for the qdb observability layer: metrics registry,
/// trace spans, and exporters. Typical use —
///
///   obs::InitTracingFromEnv();                       // honour QDB_TRACE=1
///   { QDB_TRACE_SCOPE("train", "vqc"); ... }          // RAII span
///   obs::GetCounter("sim.runs")->Increment();         // named metric
///   obs::TraceLog::Global().WriteChromeTrace("trace.json");
///   std::fputs(obs::SummaryText().c_str(), stderr);

#ifndef QDB_OBS_OBS_H_
#define QDB_OBS_OBS_H_

#include <string>

#include "common/status.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace qdb {
namespace obs {

/// Process-wide metric lookup shorthands. The returned pointers are stable
/// for the process lifetime; cache them in hot paths.
inline Counter* GetCounter(const std::string& name) {
  return MetricsRegistry::Global().GetCounter(name);
}
inline Gauge* GetGauge(const std::string& name) {
  return MetricsRegistry::Global().GetGauge(name);
}
inline Histogram* GetHistogram(const std::string& name) {
  return MetricsRegistry::Global().GetHistogram(name);
}
inline Histogram* GetHistogram(const std::string& name,
                               std::vector<double> bounds) {
  return MetricsRegistry::Global().GetHistogram(name, std::move(bounds));
}

/// All registered metrics, one per line, sorted by name.
std::string SummaryText();

/// Writes the metrics registry as JSON to `path`.
Status WriteMetricsJson(const std::string& path);

}  // namespace obs
}  // namespace qdb

#endif  // QDB_OBS_OBS_H_
