#include "sim/state_vector.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "linalg/vector_ops.h"
#include "sim/kernels.h"
#include "sim/simd.h"

namespace qdb {

namespace {

/// Runs an element-wise kernel body over [0, range): split across the
/// shared pool when the state holds at least kParallelAmplitudeThreshold
/// amplitudes, serial otherwise. Bodies write disjoint indices, so the
/// split never changes results.
template <typename Body>
void ForKernelRange(uint64_t dim, uint64_t range, Body&& body) {
  if (dim >= kParallelAmplitudeThreshold) {
    ThreadPool::Global().ParallelFor(
        0, range, [&body](uint64_t b, uint64_t e) { body(b, e); });
  } else {
    body(0, range);
  }
}

/// Sums `fn(begin, end)` over [0, range). Above the threshold the pool's
/// fixed chunking applies even at QDB_THREADS=1, so the floating-point
/// combine order — and hence the result — is independent of thread count.
template <typename T, typename Fn>
T SumKernelRange(uint64_t dim, uint64_t range, Fn&& fn) {
  if (dim >= kParallelAmplitudeThreshold) {
    return ParallelSum<T>(ThreadPool::Global(), 0, range, fn);
  }
  return fn(uint64_t{0}, range);
}

/// Unpacks a 2x2 complex matrix into the interleaved scalar layout the
/// range kernels take: {m00r, m00i, m01r, m01i, m10r, m10i, m11r, m11i}.
void Pack1Q(Complex m00, Complex m01, Complex m10, Complex m11, double* m) {
  m[0] = m00.real();
  m[1] = m00.imag();
  m[2] = m01.real();
  m[3] = m01.imag();
  m[4] = m10.real();
  m[5] = m10.imag();
  m[6] = m11.real();
  m[7] = m11.imag();
}

}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  QDB_CHECK_GT(num_qubits, 0);
  QDB_CHECK_LE(num_qubits, 30);
  re_.assign(dim(), 0.0);
  im_.assign(dim(), 0.0);
  re_[0] = 1.0;
}

Result<StateVector> StateVector::FromAmplitudes(CVector amplitudes,
                                                double norm_tol) {
  const size_t n = amplitudes.size();
  // A single amplitude (n = 1) passes the power-of-two test but describes a
  // zero-qubit register; accepting it used to leave dim() = 2 over a
  // 1-element vector, so every later read walked off the end.
  if (n < 2 || (n & (n - 1)) != 0) {
    return Status::InvalidArgument(
        StrCat("amplitude vector size must be a power of two >= 2, got ", n));
  }
  double norm = Norm(amplitudes);
  if (std::abs(norm - 1.0) > norm_tol) {
    return Status::InvalidArgument(
        StrCat("amplitude vector norm must be 1, got ", norm));
  }
  int num_qubits = 0;
  while ((size_t{1} << num_qubits) < n) ++num_qubits;
  StateVector out(num_qubits);
  out.SetAmplitudes(amplitudes);
  return out;
}

StateVector StateVector::BasisState(int num_qubits, uint64_t index) {
  StateVector out(num_qubits);
  QDB_CHECK_LT(index, out.dim());
  out.re_[0] = 0.0;
  out.re_[index] = 1.0;
  return out;
}

Complex StateVector::amplitude(uint64_t index) const {
  QDB_CHECK_LT(index, dim());
  return Complex(re_[index], im_[index]);
}

void StateVector::set_amplitude(uint64_t index, Complex value) {
  QDB_CHECK_LT(index, dim());
  re_[index] = value.real();
  im_[index] = value.imag();
}

CVector StateVector::ToAmplitudes() const {
  CVector out(dim());
  for (uint64_t i = 0; i < dim(); ++i) out[i] = Complex(re_[i], im_[i]);
  return out;
}

void StateVector::SetAmplitudes(const CVector& amplitudes) {
  QDB_CHECK_EQ(amplitudes.size(), dim());
  for (uint64_t i = 0; i < dim(); ++i) {
    re_[i] = amplitudes[i].real();
    im_[i] = amplitudes[i].imag();
  }
}

double StateVector::Probability(uint64_t index) const {
  QDB_CHECK_LT(index, dim());
  return re_[index] * re_[index] + im_[index] * im_[index];
}

DVector StateVector::Probabilities() const {
  DVector out(dim());
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  ForKernelRange(dim(), dim(), [&](uint64_t b, uint64_t e) {
    simd::NormsRange(lvl, re_.data(), im_.data(), b, e, out.data());
  });
  return out;
}

double StateVector::ProbabilityOfOne(int qubit) const {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(qubit, num_qubits_);
  const uint64_t mask = uint64_t{1} << BitPos(qubit);
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  return SumKernelRange<double>(dim(), dim(), [&](uint64_t b, uint64_t e) {
    return simd::MaskedNormSqRange(lvl, re_.data(), im_.data(), b, e, mask);
  });
}

double StateVector::NormValue() const {
  // Serial single-accumulator sum in index order: matches Norm(CVector)
  // on the interleaved representation bit for bit.
  double acc = 0.0;
  for (uint64_t i = 0; i < dim(); ++i) {
    acc += re_[i] * re_[i] + im_[i] * im_[i];
  }
  return std::sqrt(acc);
}

void StateVector::Renormalize() {
  double n = NormValue();
  QDB_CHECK_GT(n, 0.0) << "cannot renormalize the zero vector";
  // Per-component IEEE division is order-independent, so this pass can be
  // chunked and vectorized freely without changing results.
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  ForKernelRange(dim(), dim(), [&](uint64_t b, uint64_t e) {
    simd::DivRange(lvl, re_.data(), im_.data(), b, e, n);
  });
}

Complex StateVector::InnerProductWith(const StateVector& other) const {
  QDB_CHECK_EQ(num_qubits_, other.num_qubits_);
  // Same products and summation order as InnerProduct on interleaved
  // vectors: conj(a)*b = (ar*br + ai*bi, ar*bi - ai*br).
  double acc_r = 0.0, acc_i = 0.0;
  for (uint64_t i = 0; i < dim(); ++i) {
    acc_r += re_[i] * other.re_[i] + im_[i] * other.im_[i];
    acc_i += re_[i] * other.im_[i] - im_[i] * other.re_[i];
  }
  return Complex(acc_r, acc_i);
}

void StateVector::Apply1Q(int qubit, Complex m00, Complex m01, Complex m10,
                          Complex m11) {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(qubit, num_qubits_);
  const uint64_t stride = uint64_t{1} << BitPos(qubit);
  double m[8];
  Pack1Q(m00, m01, m10, m11, m);
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  // Iterate pairs (i0, i0 | stride) where the qubit's bit is 0 in i0: pair
  // index p's low BitPos bits are the offset within a block, the rest the
  // block number, so i0 = (block << (BitPos+1)) | offset.
  ForKernelRange(dim(), dim() / 2, [&](uint64_t pb, uint64_t pe) {
    simd::Apply1QRange(lvl, re_.data(), im_.data(), pb, pe, stride, m);
  });
}

void StateVector::Apply1Q(int qubit, const Matrix& u) {
  QDB_CHECK_EQ(u.rows(), 2u);
  QDB_CHECK_EQ(u.cols(), 2u);
  Apply1Q(qubit, u(0, 0), u(0, 1), u(1, 0), u(1, 1));
}

void StateVector::ApplyDiagonal1Q(int qubit, Complex d0, Complex d1) {
  QDB_CHECK_GE(qubit, 0);
  QDB_CHECK_LT(qubit, num_qubits_);
  const uint64_t mask = uint64_t{1} << BitPos(qubit);
  const double d[4] = {d0.real(), d0.imag(), d1.real(), d1.imag()};
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  ForKernelRange(dim(), dim(), [&](uint64_t b, uint64_t e) {
    simd::Diag1QRange(lvl, re_.data(), im_.data(), b, e, mask, d);
  });
}

void StateVector::ApplyControlled1Q(int control, int target, Complex m00,
                                    Complex m01, Complex m10, Complex m11) {
  QDB_CHECK_NE(control, target);
  QDB_CHECK_GE(control, 0);
  QDB_CHECK_LT(control, num_qubits_);
  QDB_CHECK_GE(target, 0);
  QDB_CHECK_LT(target, num_qubits_);
  const uint64_t cmask = uint64_t{1} << BitPos(control);
  const uint64_t stride = uint64_t{1} << BitPos(target);
  double m[8];
  Pack1Q(m00, m01, m10, m11, m);
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  // Same pair-index walk as Apply1Q, acting only where the control is set.
  ForKernelRange(dim(), dim() / 2, [&](uint64_t pb, uint64_t pe) {
    simd::Controlled1QRange(lvl, re_.data(), im_.data(), pb, pe, stride, cmask,
                            m);
  });
}

void StateVector::Apply2Q(int a, int b, const Matrix& u) {
  QDB_CHECK_EQ(u.rows(), 4u);
  QDB_CHECK_EQ(u.cols(), 4u);
  QDB_CHECK_NE(a, b);
  const uint64_t amask = uint64_t{1} << BitPos(a);
  const uint64_t bmask = uint64_t{1} << BitPos(b);
  // Hoist the 16 entries out of the sweep: Matrix::operator() bounds-checks
  // every access, which would otherwise dominate this (hot, fusion-emitted)
  // kernel's inner loop. Real/imag planes so the row updates are plain
  // double arithmetic — std::complex operator* carries an Annex-G
  // NaN-recovery branch per product that blocks vectorization.
  double mr[4][4], mi[4][4];
  for (int r = 0; r < 4; ++r) {
    for (int col = 0; col < 4; ++col) {
      const Complex entry = u(r, col);
      mr[r][col] = entry.real();
      mi[r][col] = entry.imag();
    }
  }
  // Walk the dim/4 group representatives directly (both operand bits
  // clear): group index g expands to its representative by depositing a
  // zero bit at each operand position, so no loop iteration is wasted on a
  // skipped index. Groups are disjoint, so chunks over g never touch
  // another chunk's amplitudes and results match the serial walk exactly.
  const uint64_t lo_pos = BitPos(a) < BitPos(b) ? BitPos(a) : BitPos(b);
  const uint64_t hi_pos = BitPos(a) < BitPos(b) ? BitPos(b) : BitPos(a);
  const uint64_t lo_keep = (uint64_t{1} << lo_pos) - 1;
  const uint64_t mid_keep = ((uint64_t{1} << (hi_pos - 1)) - 1) & ~lo_keep;
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  ForKernelRange(dim(), dim() / 4, [&](uint64_t gb, uint64_t ge) {
    simd::Apply2QRange(lvl, re_.data(), im_.data(), gb, ge, amask, bmask,
                       lo_keep, mid_keep, mr, mi);
  });
}

void StateVector::ApplyDiagonal2Q(int a, int b, Complex d0, Complex d1,
                                  Complex d2, Complex d3) {
  QDB_CHECK_NE(a, b);
  const uint64_t amask = uint64_t{1} << BitPos(a);
  const uint64_t bmask = uint64_t{1} << BitPos(b);
  const double d[8] = {d0.real(), d0.imag(), d1.real(), d1.imag(),
                       d2.real(), d2.imag(), d3.real(), d3.imag()};
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  ForKernelRange(dim(), dim(), [&](uint64_t lo, uint64_t hi) {
    simd::Diag2QRange(lvl, re_.data(), im_.data(), lo, hi, amask, bmask, d);
  });
}

void StateVector::ApplySwap(int a, int b) {
  QDB_CHECK_NE(a, b);
  const uint64_t amask = uint64_t{1} << BitPos(a);
  const uint64_t bmask = uint64_t{1} << BitPos(b);
  for (uint64_t i = 0; i < dim(); ++i) {
    const bool abit = i & amask;
    const bool bbit = i & bmask;
    if (abit && !bbit) {
      const uint64_t j = (i & ~amask) | bmask;
      std::swap(re_[i], re_[j]);
      std::swap(im_[i], im_[j]);
    }
  }
}

void StateVector::ApplyKQ(const std::vector<int>& qubits, const Matrix& u) {
  const int k = static_cast<int>(qubits.size());
  QDB_CHECK_GT(k, 0);
  QDB_CHECK_EQ(u.rows(), size_t{1} << k);
  QDB_CHECK_EQ(u.cols(), size_t{1} << k);
  std::vector<uint64_t> masks(k);
  uint64_t all_mask = 0;
  for (int j = 0; j < k; ++j) {
    masks[j] = uint64_t{1} << BitPos(qubits[j]);
    all_mask |= masks[j];
  }
  const uint64_t group = uint64_t{1} << k;
  std::vector<uint64_t> indices(group);
  std::vector<Complex> old_vals(group);
  for (uint64_t i = 0; i < dim(); ++i) {
    if (i & all_mask) continue;  // i is the group representative (all clear).
    for (uint64_t g = 0; g < group; ++g) {
      uint64_t idx = i;
      for (int j = 0; j < k; ++j) {
        if (g & (uint64_t{1} << (k - 1 - j))) idx |= masks[j];
      }
      indices[g] = idx;
      old_vals[g] = Complex(re_[idx], im_[idx]);
    }
    for (uint64_t r = 0; r < group; ++r) {
      Complex acc(0.0, 0.0);
      for (uint64_t c = 0; c < group; ++c) acc += u(r, c) * old_vals[c];
      re_[indices[r]] = acc.real();
      im_[indices[r]] = acc.imag();
    }
  }
}

void StateVector::ApplyMCX(const std::vector<int>& controls, int target) {
  uint64_t cmask = 0;
  for (int c : controls) {
    QDB_CHECK_NE(c, target);
    cmask |= uint64_t{1} << BitPos(c);
  }
  const uint64_t tmask = uint64_t{1} << BitPos(target);
  for (uint64_t i = 0; i < dim(); ++i) {
    if ((i & cmask) == cmask && !(i & tmask)) {
      std::swap(re_[i], re_[i | tmask]);
      std::swap(im_[i], im_[i | tmask]);
    }
  }
}

void StateVector::ApplyMCZ(const std::vector<int>& controls, int target) {
  uint64_t mask = uint64_t{1} << BitPos(target);
  for (int c : controls) {
    QDB_CHECK_NE(c, target);
    mask |= uint64_t{1} << BitPos(c);
  }
  for (uint64_t i = 0; i < dim(); ++i) {
    if ((i & mask) == mask) {
      re_[i] = -re_[i];
      im_[i] = -im_[i];
    }
  }
}

DVector StateVector::CumulativeProbabilities() const {
  DVector cdf(dim());
  double acc = 0.0;
  for (uint64_t i = 0; i < dim(); ++i) {
    acc += re_[i] * re_[i] + im_[i] * im_[i];
    cdf[i] = acc;
  }
  return cdf;
}

uint64_t StateVector::SampleOnce(Rng& rng) const {
  // Same CDF + binary-search path as SampleCounts, and the same draw
  // semantics the old linear scan had: the scan returned the first index
  // whose running prefix sum exceeded target, which is exactly
  // upper_bound on the prefix-sum array. Scaling the draw by the total
  // mass keeps sub-normalized states sampling in distribution with
  // SampleCounts instead of over-weighting the last basis state.
  const DVector cdf = CumulativeProbabilities();
  const double target = rng.Uniform() * cdf.back();
  auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
  uint64_t idx = static_cast<uint64_t>(it - cdf.begin());
  if (idx >= dim()) idx = dim() - 1;  // Floating-point slack.
  return idx;
}

std::map<uint64_t, int> StateVector::SampleCounts(Rng& rng, int shots) const {
  QDB_CHECK_GE(shots, 0);
  std::map<uint64_t, int> counts;
  // CDF + binary search: O(2^n + shots log 2^n).
  const DVector cdf = CumulativeProbabilities();
  for (int s = 0; s < shots; ++s) {
    double target = rng.Uniform() * cdf.back();
    auto it = std::upper_bound(cdf.begin(), cdf.end(), target);
    uint64_t idx = static_cast<uint64_t>(it - cdf.begin());
    if (idx >= dim()) idx = dim() - 1;
    ++counts[idx];
  }
  return counts;
}

int StateVector::MeasureQubit(int qubit, Rng& rng) {
  const double p1 = ProbabilityOfOne(qubit);
  const int outcome = rng.Bernoulli(p1) ? 1 : 0;
  const uint64_t mask = uint64_t{1} << BitPos(qubit);
  const uint64_t keep = (outcome == 1) ? mask : uint64_t{0};
  const simd::SimdLevel lvl = simd::ActiveSimdLevel();
  // Fused collapse: one pass zeroes the rejected branch while accumulating
  // the kept branch's probability mass (deterministic chunking above the
  // parallel threshold), then one renormalizing division pass — instead of
  // the old serial zeroing walk plus a full Renormalize re-scan.
  const double kept =
      SumKernelRange<double>(dim(), dim(), [&](uint64_t b, uint64_t e) {
        return simd::CollapseRange(lvl, re_.data(), im_.data(), b, e, mask,
                                   keep);
      });
  QDB_CHECK_GT(kept, 0.0) << "measurement collapsed to a zero-mass branch";
  const double n = std::sqrt(kept);
  ForKernelRange(dim(), dim(), [&](uint64_t b, uint64_t e) {
    simd::DivRange(lvl, re_.data(), im_.data(), b, e, n);
  });
  return outcome;
}

uint64_t StateVector::MeasureAll(Rng& rng) {
  const uint64_t outcome = SampleOnce(rng);
  std::fill(re_.begin(), re_.end(), 0.0);
  std::fill(im_.begin(), im_.end(), 0.0);
  re_[outcome] = 1.0;
  return outcome;
}

std::string StateVector::BitString(uint64_t index) const {
  std::string out(num_qubits_, '0');
  for (int q = 0; q < num_qubits_; ++q) {
    if (index & (uint64_t{1} << BitPos(q))) out[q] = '1';
  }
  return out;
}

}  // namespace qdb
