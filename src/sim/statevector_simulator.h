/// \file statevector_simulator.h
/// \brief Executes circuits on StateVector and computes observable
/// expectation values — the main gate-model substrate of qdb.

#ifndef QDB_SIM_STATEVECTOR_SIMULATOR_H_
#define QDB_SIM_STATEVECTOR_SIMULATOR_H_

#include <functional>
#include <map>
#include <vector>

#include "circuit/circuit.h"
#include "common/result.h"
#include "common/rng.h"
#include "ops/pauli.h"
#include "sim/state_vector.h"

namespace qdb {

/// \brief How RunInPlace executes a circuit.
///
/// kInterpreted walks the gate list with per-gate dispatch; kCompiled looks
/// the circuit up in the global CompilationCache (compiling on first sight)
/// and replays the fused kernel program. kAuto defers to the QDB_COMPILE
/// environment variable ("0" forces interpreted, "1" forces compiled) and
/// otherwise compiles any circuit with at least two gates — the regime where
/// fusion and cached dispatch pay for the one-time lowering.
enum class ExecutionMode {
  kAuto,
  kInterpreted,
  kCompiled,
};

/// \brief Exact (noise-free) state-vector execution of circuits.
///
/// Stateless apart from configuration; safe to share across calls. Gate
/// dispatch picks a specialized kernel per gate class: diagonal gates touch
/// each amplitude once, controlled gates skip the untouched half, generic
/// k-qubit gates fall back to the 2^k-group kernel. In compiled mode (the
/// default for non-trivial circuits, see ExecutionMode) the gate list is
/// lowered and fused once through the CompilationCache and replayed as a
/// flat kernel program.
class StateVectorSimulator {
 public:
  StateVectorSimulator() = default;

  /// Overrides the execution-mode resolution for this instance.
  void set_execution_mode(ExecutionMode mode) { execution_mode_ = mode; }
  ExecutionMode execution_mode() const { return execution_mode_; }

  /// Runs `circuit` from |0...0⟩ with `params` bound to the symbolic
  /// parameters. Fails if fewer parameters are supplied than referenced.
  Result<StateVector> Run(const Circuit& circuit,
                          const DVector& params = {}) const;

  /// Runs `circuit` from the given initial state (in place).
  Status RunInPlace(const Circuit& circuit, StateVector& state,
                    const DVector& params = {}) const;

  /// Applies a single bound gate to `state`.
  Status ApplyGate(const Gate& gate, const DVector& angles,
                   StateVector& state) const;

  // ---- Batched execution -----------------------------------------------------
  //
  // Independent circuit executions fan out across the shared ThreadPool
  // (kernel Gram matrices, parameter-shift gradients, shot batches).
  // Broadcast rule: the batch size is max(circuits.size(),
  // params_list.size()); a 1-element side is reused for every task, and an
  // empty params_list binds no parameters. Tasks run serially inside a
  // worker (nested kernels stay inline), so results match a serial loop
  // bit for bit.

  /// The fused batch primitive: runs each circuit on a worker and hands the
  /// final state to `consume(index, state)` on that worker instead of
  /// keeping all 2^n-amplitude states alive. `consume` must be thread-safe
  /// for distinct indices. Fails with the first (lowest-index) error.
  /// Declares fault point "sim.run" (fault/fault_injector.h), so chaos
  /// runs can fail or delay whole batches beneath the serving layer.
  Status RunBatchReduce(
      const std::vector<Circuit>& circuits,
      const std::vector<DVector>& params_list,
      const StateVector* initial_state,
      const std::function<Status(size_t, StateVector&&)>& consume) const;

  /// Runs every circuit of the batch and returns the final states in batch
  /// order.
  Result<std::vector<StateVector>> RunBatch(
      const std::vector<Circuit>& circuits,
      const std::vector<DVector>& params_list = {},
      const StateVector* initial_state = nullptr) const;

  /// Runs every circuit and samples `shots` outcomes from its final state.
  /// `rng` is split once per task in batch order *before* the fan-out, so
  /// counts are deterministic for a fixed seed regardless of QDB_THREADS.
  Result<std::vector<std::map<uint64_t, int>>> SampleBatch(
      const std::vector<Circuit>& circuits,
      const std::vector<DVector>& params_list, int shots, Rng& rng) const;

 private:
  /// True when the resolved mode says `circuit` should run compiled.
  bool ShouldCompile(const Circuit& circuit) const;

  ExecutionMode execution_mode_ = ExecutionMode::kAuto;
};

/// \brief ⟨ψ|P|ψ⟩ for a single Pauli string (real by Hermiticity).
double Expectation(const StateVector& state, const PauliString& pauli);

/// \brief ⟨ψ|H|ψ⟩ for a Pauli-sum observable.
double Expectation(const StateVector& state, const PauliSum& observable);

/// \brief ⟨ψ|Z_q|ψ⟩ convenience (= 1 − 2·P[q = 1]).
double ExpectationZ(const StateVector& state, int qubit);

}  // namespace qdb

#endif  // QDB_SIM_STATEVECTOR_SIMULATOR_H_
