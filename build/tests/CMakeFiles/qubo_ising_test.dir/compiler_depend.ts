# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for qubo_ising_test.
