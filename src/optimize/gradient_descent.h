/// \file gradient_descent.h
/// \brief Vanilla / momentum gradient descent.

#ifndef QDB_OPTIMIZE_GRADIENT_DESCENT_H_
#define QDB_OPTIMIZE_GRADIENT_DESCENT_H_

#include "optimize/optimizer.h"

namespace qdb {

/// \brief Configuration for gradient descent.
struct GradientDescentOptions {
  double learning_rate = 0.1;
  double momentum = 0.0;       ///< 0 = vanilla; classical momentum otherwise.
  int max_iterations = 200;
  double gradient_tolerance = 1e-6;  ///< Stop when ‖∇f‖∞ falls below this.
};

/// \brief Minimizes `objective` from `initial` using `gradient`.
Result<OptimizeResult> MinimizeGradientDescent(
    const Objective& objective, const GradientFn& gradient,
    const DVector& initial, const GradientDescentOptions& options = {});

}  // namespace qdb

#endif  // QDB_OPTIMIZE_GRADIENT_DESCENT_H_
