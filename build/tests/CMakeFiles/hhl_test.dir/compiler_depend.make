# Empty compiler generated dependencies file for hhl_test.
# This may be replaced when dependencies are built.
