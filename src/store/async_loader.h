/// \file async_loader.h
/// \brief Background artifact prefetcher: loads and builds servables off
/// the request path, with double-buffered promotion into the registry.
///
/// The expensive half of a model rollout — reading the artifact, parsing
/// it, compiling the inference circuit or encoding support-vector states —
/// runs on the loader's worker thread. Only the final O(1) registry insert
/// happens at promotion time, and lookups hand out shared_ptr<const
/// ServableModel>, so a version swap never blocks an in-flight request:
/// requests already dispatched keep the old buffer (the previous servable)
/// until they drop it, while new lookups resolve to the freshly promoted
/// one. Warm() re-residents a paged-out version the same way, making the
/// next Lookup a cache hit instead of a synchronous cold start.
///
/// Each job runs through the "store.prefetch" fault point (scoped by the
/// artifact path or model name), so chaos profiles can stall or fail
/// prefetches without touching the serving path.

#ifndef QDB_STORE_ASYNC_LOADER_H_
#define QDB_STORE_ASYNC_LOADER_H_

#include <condition_variable>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "common/result.h"
#include "serve/model_registry.h"

namespace qdb {
namespace store {

struct AsyncLoaderOptions {
  /// Jobs waiting for the worker; a full queue rejects new prefetches with
  /// kResourceExhausted rather than buffering unboundedly.
  size_t queue_capacity = 256;
};

/// \brief Single-worker async loader over one ModelRegistry.
///
/// Thread-safe. Shutdown() (and the destructor) drains queued jobs before
/// joining, so every returned future settles.
class AsyncModelLoader {
 public:
  using Servable = std::shared_ptr<const serve::ServableModel>;
  using LoadFuture = std::future<Result<Servable>>;

  explicit AsyncModelLoader(serve::ModelRegistry& registry,
                            AsyncLoaderOptions options = {});
  ~AsyncModelLoader();

  AsyncModelLoader(const AsyncModelLoader&) = delete;
  AsyncModelLoader& operator=(const AsyncModelLoader&) = delete;

  /// Starts the worker thread. kFailedPrecondition if already started.
  Status Start();

  /// Drains queued jobs, then stops and joins the worker. Idempotent.
  void Shutdown();

  /// Enqueues "load the artifact at `path` and register it" (the
  /// registry's LoadModel, including its retry and fault points). The
  /// future resolves to the promoted servable.
  LoadFuture Prefetch(std::string path, bool reassign_version = false);

  /// Enqueues "make `name`/`version` resident" (version < 0 = latest): a
  /// registry Lookup on the worker thread, absorbing any cold-start reload
  /// off the request path.
  LoadFuture Warm(std::string name, int version = -1);

  /// Once the loader is drained, submitted == completed + failed; jobs
  /// turned away at Enqueue (queue full or shutting down) count only as
  /// rejected — they were never accepted.
  struct Stats {
    long submitted = 0;  ///< Jobs accepted into the queue.
    long completed = 0;  ///< Futures resolved OK.
    long failed = 0;     ///< Accepted jobs whose future resolved with an error.
    long rejected = 0;   ///< Enqueue refusals (queue full / shutting down).
  };
  Stats stats() const;
  size_t queue_depth() const;

 private:
  struct Job {
    bool warm = false;
    std::string path_or_name;
    int version = -1;
    bool reassign_version = false;
    std::promise<Result<Servable>> promise;
  };

  LoadFuture Enqueue(Job job);
  Result<Servable> RunJob(Job& job);
  void WorkerLoop();

  serve::ModelRegistry& registry_;
  const AsyncLoaderOptions options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  std::thread worker_;
  bool started_ = false;
  bool stopping_ = false;
  Stats stats_;
};

}  // namespace store
}  // namespace qdb

#endif  // QDB_STORE_ASYNC_LOADER_H_
