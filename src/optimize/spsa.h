/// \file spsa.h
/// \brief Simultaneous Perturbation Stochastic Approximation — the
/// gradient-free optimizer of choice on sampled/noisy quantum hardware
/// (two objective evaluations per step regardless of dimension).

#ifndef QDB_OPTIMIZE_SPSA_H_
#define QDB_OPTIMIZE_SPSA_H_

#include "common/rng.h"
#include "optimize/optimizer.h"

namespace qdb {

/// \brief SPSA gain schedules a_k = a/(k+1+A)^alpha, c_k = c/(k+1)^gamma
/// (Spall's standard coefficients).
struct SpsaOptions {
  double a = 0.2;
  double c = 0.1;
  double big_a = 10.0;    ///< Stability constant A.
  double alpha = 0.602;
  double gamma = 0.101;
  int max_iterations = 300;
  uint64_t seed = 7;
};

/// \brief Minimizes `objective` from `initial` with SPSA; tracks and
/// returns the best parameters seen (SPSA iterates are noisy).
Result<OptimizeResult> MinimizeSpsa(const Objective& objective,
                                    const DVector& initial,
                                    const SpsaOptions& options = {});

}  // namespace qdb

#endif  // QDB_OPTIMIZE_SPSA_H_
