// Tests for the common runtime: Status/Result, the PRNG, and strings.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/strings.h"
#include "common/timer.h"

namespace qdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "invalid argument: bad input");
}

TEST(StatusTest, AllFactoryCodes) {
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotConverged("x").code(), StatusCode::kNotConverged);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
}

TEST(StatusTest, ServingCodesRenderDistinctly) {
  EXPECT_EQ(Status::Unavailable("overloaded").ToString(),
            "unavailable: overloaded");
  EXPECT_EQ(Status::DeadlineExceeded("too slow").ToString(),
            "deadline exceeded: too slow");
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chained(int x) {
  QDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chained(1).ok());
  EXPECT_EQ(Chained(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoublePositive(int x) {
  QDB_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(21);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 21);
  EXPECT_EQ(r.ValueOrDie(), 21);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-3);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(99), 99);
}

TEST(ResultTest, AssignOrReturnMacro) {
  EXPECT_EQ(DoublePositive(5).value(), 10);
  EXPECT_FALSE(DoublePositive(0).ok());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(7);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 7);
}

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.Next() != b.Next()) ++differing;
  }
  EXPECT_GT(differing, 30);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntCoversRangeUniformly) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) ++counts[rng.UniformInt(uint64_t{10})];
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(13);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(int64_t{-3}, int64_t{3});
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    double x = rng.Normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.05);
}

TEST(RngTest, NormalWithMeanAndStddev) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += rng.Normal(5.0, 2.0);
  EXPECT_NEAR(sum / n, 5.0, 0.1);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(23);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
  EXPECT_FALSE(rng.Bernoulli(0.0));
  EXPECT_TRUE(rng.Bernoulli(1.0));
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(29);
  std::vector<double> weights = {1.0, 3.0, 0.0, 6.0};
  std::vector<int> counts(4, 0);
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(weights)];
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[0] / 20000.0, 0.1, 0.02);
  EXPECT_NEAR(counts[1] / 20000.0, 0.3, 0.02);
  EXPECT_NEAR(counts[3] / 20000.0, 0.6, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(31);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  auto original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(37);
  Rng b = a.Split();
  // The split stream should not track the parent.
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(TimerTest, MeasuresElapsedTime) {
  Timer timer;
  // Burn a little CPU deterministically.
  volatile double acc = 0.0;
  for (int i = 0; i < 2000000; ++i) acc += std::sqrt(static_cast<double>(i));
  const double elapsed = timer.Seconds();
  EXPECT_GT(elapsed, 0.0);
  EXPECT_LT(elapsed, 10.0);
  EXPECT_NEAR(timer.Millis(), timer.Seconds() * 1e3, timer.Seconds() * 50);
  timer.Reset();
  EXPECT_LT(timer.Seconds(), elapsed + 1.0);
}

TEST(TimerTest, LapRestartsTheWindow) {
  Timer timer;
  volatile double acc = 0.0;
  for (int i = 0; i < 500000; ++i) acc = acc + std::sqrt(static_cast<double>(i));
  const double first_lap = timer.Lap();
  EXPECT_GT(first_lap, 0.0);
  // Lap restarted the window, so the next reading excludes the burn above.
  EXPECT_LT(timer.Seconds(), first_lap + 1.0);
  EXPECT_GE(timer.LapMillis(), 0.0);
}

TEST(StringsTest, StrCat) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StringsTest, StrJoin) {
  EXPECT_EQ(StrJoin(std::vector<int>{1, 2, 3}, ", "), "1, 2, 3");
  EXPECT_EQ(StrJoin(std::vector<int>{}, ","), "");
}

TEST(StringsTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(StrFormat("%.2f", 3.14159), "3.14");
}

TEST(StringsTest, ToStringPrecise) {
  EXPECT_EQ(ToStringPrecise(0.5, 3), "0.5");
  EXPECT_EQ(ToStringPrecise(1.0 / 3.0, 3), "0.333");
}

}  // namespace
}  // namespace qdb
