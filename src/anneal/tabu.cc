#include "anneal/tabu.h"

#include <limits>

#include "anneal/solver_metrics.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace qdb {

Result<SolveResult> TabuSearch(const IsingModel& model,
                               const TabuOptions& options) {
  if (options.max_iterations < 1 || options.num_restarts < 1) {
    return Status::InvalidArgument("iterations and restarts must be >= 1");
  }
  if (options.tenure < 0) {
    return Status::InvalidArgument("tenure must be non-negative");
  }
  QDB_TRACE_SCOPE("TabuSearch", "anneal");
  const int n = model.num_spins();
  Rng rng(options.seed);
  SolveResult result;
  result.best_energy = std::numeric_limits<double>::infinity();

  for (int restart = 0; restart < options.num_restarts; ++restart) {
    std::vector<int8_t> spins(n);
    for (auto& s : spins) s = rng.Bernoulli(0.5) ? 1 : -1;
    double energy = model.Energy(spins);
    if (energy < result.best_energy) {
      result.best_energy = energy;
      result.best_spins = spins;
    }
    std::vector<int> tabu_until(n, -1);

    for (int iter = 0; iter < options.max_iterations; ++iter) {
      int best_move = -1;
      double best_delta = std::numeric_limits<double>::infinity();
      for (int i = 0; i < n; ++i) {
        const double delta = model.FlipDelta(spins, i);
        const bool is_tabu = tabu_until[i] > iter;
        // Aspiration: a tabu move that beats the global best is allowed.
        if (is_tabu && energy + delta >= result.best_energy) continue;
        if (delta < best_delta) {
          best_delta = delta;
          best_move = i;
        }
      }
      if (best_move < 0) break;  // Everything tabu and nothing aspires.
      spins[best_move] = -spins[best_move];
      energy += best_delta;
      tabu_until[best_move] = iter + options.tenure;
      ++result.sweeps;
      // One candidate per spin was examined; only the best was taken.
      ++result.moves_accepted;
      result.moves_rejected += n - 1;
      if (energy < result.best_energy) {
        result.best_energy = energy;
        result.best_spins = spins;
      }
    }
  }
  RecordSolveMetrics("tabu", result);
  return result;
}

}  // namespace qdb
