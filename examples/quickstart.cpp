// Quickstart: circuits, simulation, measurement, observables, and a
// three-line VQE — the tour of qdb's core API.

#include <cstdio>

#include "common/rng.h"
#include "circuit/circuit.h"
#include "sim/statevector_simulator.h"
#include "variational/ansatz.h"
#include "variational/vqe.h"

int main() {
  using namespace qdb;

  // 1. Build a Bell-pair circuit with the fluent builder.
  Circuit bell(2);
  bell.H(0).CX(0, 1);
  std::printf("Circuit:\n%s\n", bell.ToString().c_str());

  // 2. Simulate it exactly.
  StateVectorSimulator simulator;
  StateVector state = simulator.Run(bell).ValueOrDie();
  std::printf("P(|00>) = %.3f, P(|11>) = %.3f\n", state.Probability(0),
              state.Probability(3));

  // 3. Sample measurement shots.
  Rng rng(7);
  auto counts = state.SampleCounts(rng, 1000);
  for (const auto& [outcome, count] : counts) {
    std::printf("  measured %s: %d times\n",
                state.BitString(outcome).c_str(), count);
  }

  // 4. Expectation values of Pauli observables.
  PauliSum zz(2);
  zz.Add(1.0, "ZZ");
  std::printf("<ZZ> on the Bell state = %.3f (expect 1.0)\n",
              Expectation(state, zz));

  // 5. VQE: find the ground state of a tiny transverse-field Ising model.
  PauliSum hamiltonian(2);
  hamiltonian.Add(-1.0, "ZZ").Add(-0.5, "XI").Add(-0.5, "IX");
  Circuit ansatz = EfficientSU2Ansatz(2, 2);
  VqeOptions options;
  options.adam.max_iterations = 150;
  VqeResult result = RunVqe(ansatz, hamiltonian, options).ValueOrDie();
  double exact = ExactGroundStateEnergy(hamiltonian).ValueOrDie();
  std::printf("VQE energy %.6f vs exact %.6f (%ld circuit evaluations)\n",
              result.energy, exact, result.circuit_evaluations);
  return 0;
}
