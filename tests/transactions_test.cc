// Tests for the transaction-scheduling QUBO.

#include <gtest/gtest.h>

#include "anneal/exhaustive.h"
#include "anneal/simulated_annealing.h"
#include "db/transactions.h"

namespace qdb {
namespace {

TxnScheduleInstance TriangleInstance() {
  // Three mutually conflicting transactions, three slots: a proper
  // "coloring" uses all three slots.
  TxnScheduleInstance inst;
  inst.num_transactions = 3;
  inst.num_slots = 3;
  inst.conflicts = {{0, 1}, {1, 2}, {0, 2}};
  return inst;
}

TEST(TxnInstanceTest, ConflictQueries) {
  TxnScheduleInstance inst = TriangleInstance();
  EXPECT_TRUE(inst.Conflicts(0, 1));
  EXPECT_TRUE(inst.Conflicts(1, 0));
  TxnScheduleInstance sparse;
  sparse.num_transactions = 3;
  sparse.num_slots = 2;
  sparse.conflicts = {{0, 2}};
  EXPECT_FALSE(sparse.Conflicts(0, 1));
}

TEST(TxnInstanceTest, ViolationsAndMakespan) {
  TxnScheduleInstance inst = TriangleInstance();
  EXPECT_EQ(inst.ConflictViolations({0, 1, 2}), 0);
  EXPECT_EQ(inst.ConflictViolations({0, 0, 2}), 1);
  EXPECT_EQ(inst.ConflictViolations({0, 0, 0}), 3);
  EXPECT_EQ(inst.Makespan({0, 1, 2}), 3);
  EXPECT_EQ(inst.Makespan({0, 0, 0}), 1);
}

TEST(TxnInstanceTest, RandomGeneratorDensity) {
  Rng rng(3);
  TxnScheduleInstance inst = RandomTxnInstance(20, 4, 0.3, rng);
  const double expected = 0.3 * 20 * 19 / 2;
  EXPECT_NEAR(static_cast<double>(inst.conflicts.size()), expected, 30.0);
}

TEST(TxnQuboTest, GroundStateIsConflictFree) {
  TxnScheduleInstance inst = TriangleInstance();
  auto qubo = TxnScheduleQubo::Create(inst);
  ASSERT_TRUE(qubo.ok());
  auto ground = ExhaustiveSolveQubo(qubo.value().qubo());
  ASSERT_TRUE(ground.ok());
  std::vector<int> slots =
      qubo.value().Decode(SpinsToBits(ground.value().best_spins));
  EXPECT_EQ(inst.ConflictViolations(slots), 0);
  EXPECT_EQ(inst.Makespan(slots), 3);  // Triangle forces all three slots.
}

TEST(TxnQuboTest, GroundStatePrefersEarlySlots) {
  // Two independent transactions, three slots: both should land in slot 0.
  TxnScheduleInstance inst;
  inst.num_transactions = 2;
  inst.num_slots = 3;
  auto qubo = TxnScheduleQubo::Create(inst);
  ASSERT_TRUE(qubo.ok());
  auto ground = ExhaustiveSolveQubo(qubo.value().qubo());
  ASSERT_TRUE(ground.ok());
  std::vector<int> slots =
      qubo.value().Decode(SpinsToBits(ground.value().best_spins));
  EXPECT_EQ(slots, (std::vector<int>{0, 0}));
}

TEST(TxnQuboTest, DecodeRepairsToLeastConflictingSlot) {
  TxnScheduleInstance inst = TriangleInstance();
  auto qubo = TxnScheduleQubo::Create(inst).value();
  std::vector<uint8_t> zeros(9, 0);
  std::vector<int> slots = qubo.Decode(zeros);
  EXPECT_EQ(inst.ConflictViolations(slots), 0);  // Repair can color a triangle.
}

TEST(TxnQuboTest, AnnealedScheduleMatchesGreedyOrBetter) {
  Rng rng(9);
  TxnScheduleInstance inst = RandomTxnInstance(8, 4, 0.35, rng);
  auto qubo = TxnScheduleQubo::Create(inst);
  ASSERT_TRUE(qubo.ok());
  SaOptions opts;
  opts.num_sweeps = 800;
  opts.num_restarts = 4;
  auto annealed = SimulatedAnnealing(qubo.value().qubo().ToIsing(), opts);
  ASSERT_TRUE(annealed.ok());
  std::vector<int> slots =
      qubo.value().Decode(SpinsToBits(annealed.value().best_spins));
  std::vector<int> greedy = GreedyFirstFitSchedule(inst);
  EXPECT_LE(inst.ConflictViolations(slots),
            inst.ConflictViolations(greedy));
}

TEST(TxnGreedyTest, FirstFitIsConflictFreeWhenSlotsSuffice) {
  Rng rng(11);
  TxnScheduleInstance inst = RandomTxnInstance(10, 10, 0.3, rng);
  std::vector<int> slots = GreedyFirstFitSchedule(inst);
  EXPECT_EQ(inst.ConflictViolations(slots), 0);
}

TEST(TxnGreedyTest, OverflowsGracefullyWhenSlotsScarce) {
  TxnScheduleInstance inst = TriangleInstance();
  inst.num_slots = 2;  // Triangle is not 2-colorable.
  std::vector<int> slots = GreedyFirstFitSchedule(inst);
  EXPECT_EQ(slots.size(), 3u);
  EXPECT_GE(inst.ConflictViolations(slots), 1);
}

TEST(TxnQuboTest, Validation) {
  TxnScheduleInstance bad;
  EXPECT_FALSE(TxnScheduleQubo::Create(bad).ok());
  TxnScheduleInstance bad_conflict;
  bad_conflict.num_transactions = 2;
  bad_conflict.num_slots = 2;
  bad_conflict.conflicts = {{0, 5}};
  EXPECT_FALSE(TxnScheduleQubo::Create(bad_conflict).ok());
}

}  // namespace
}  // namespace qdb
