file(REMOVE_RECURSE
  "CMakeFiles/phase_estimation_test.dir/phase_estimation_test.cc.o"
  "CMakeFiles/phase_estimation_test.dir/phase_estimation_test.cc.o.d"
  "phase_estimation_test"
  "phase_estimation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/phase_estimation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
