#include "serve/inference_server.h"

#include "common/strings.h"
#include "obs/obs.h"

namespace qdb {
namespace serve {

namespace {

/// serve.* metric handles, resolved once.
struct ServeMetrics {
  obs::Gauge* queue_depth = obs::GetGauge("serve.queue_depth");
  obs::Counter* requests = obs::GetCounter("serve.requests");
  obs::Counter* rejected = obs::GetCounter("serve.rejected");
  obs::Counter* expired = obs::GetCounter("serve.deadline_expired");
  obs::Counter* cache_hits = obs::GetCounter("serve.cache_hits");
  obs::Counter* cache_misses = obs::GetCounter("serve.cache_misses");
  obs::Counter* batches = obs::GetCounter("serve.batches");
  obs::Histogram* batch_size = obs::GetHistogram(
      "serve.batch_size", {1, 2, 4, 8, 16, 32, 64, 128});
  obs::Histogram* queue_wait_us = obs::GetHistogram("serve.queue_wait_us");
};

ServeMetrics& Metrics() {
  static ServeMetrics metrics;
  return metrics;
}

std::future<Result<InferenceResponse>> ImmediateResult(
    Result<InferenceResponse> result) {
  std::promise<Result<InferenceResponse>> promise;
  promise.set_value(std::move(result));
  return promise.get_future();
}

long MicrosBetween(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  return std::chrono::duration_cast<std::chrono::microseconds>(to - from)
      .count();
}

}  // namespace

InferenceServer::InferenceServer(ModelRegistry& registry,
                                 const ServerOptions& options)
    : registry_(registry),
      options_(options),
      result_cache_(options.result_cache_capacity) {}

InferenceServer::~InferenceServer() { Shutdown(); }

Status InferenceServer::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (shut_down_ || stopping_) {
    return Status::FailedPrecondition("server has been shut down");
  }
  if (started_) {
    return Status::FailedPrecondition("server already started");
  }
  started_ = true;
  const int n = options_.num_dispatchers > 0 ? options_.num_dispatchers : 1;
  dispatchers_.reserve(n);
  for (int i = 0; i < n; ++i) {
    dispatchers_.emplace_back([this] { DispatcherLoop(); });
  }
  return Status::OK();
}

void InferenceServer::Shutdown() {
  std::vector<std::thread> dispatchers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shut_down_) return;
    accepting_ = false;
    stopping_ = true;
    dispatchers.swap(dispatchers_);
  }
  queue_cv_.notify_all();
  for (auto& t : dispatchers) t.join();
  // Anything still queued was admitted but never started (or a dispatcher
  // never existed): fail it rather than leaving futures hanging.
  std::deque<Pending> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    orphans.swap(queue_);
    shut_down_ = true;
  }
  for (auto& pending : orphans) {
    pending.promise.set_value(
        Status::Unavailable("server shut down before the request executed"));
  }
  Metrics().queue_depth->Set(0.0);
}

std::future<Result<InferenceResponse>> InferenceServer::Submit(
    InferenceRequest request) {
  QDB_TRACE_SCOPE("InferenceServer::Submit", "serve");
  Metrics().requests->Increment();
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.submitted;
  }

  // Resolve the model first: unknown names and malformed inputs should
  // fail loudly, not occupy queue space.
  Result<std::shared_ptr<const ServableModel>> servable =
      registry_.Lookup(request.model, request.version);
  if (!servable.ok()) {
    return ImmediateResult(servable.status());
  }
  if (Status valid = servable.value()->ValidateInput(request.kind,
                                                     request.input);
      !valid.ok()) {
    return ImmediateResult(std::move(valid));
  }

  std::string cache_key;
  if (options_.result_cache_capacity > 0) {
    cache_key = ResultCache::MakeKey(servable.value()->name(),
                                     servable.value()->version(),
                                     request.kind, request.input);
    if (std::optional<InferenceValue> hit = result_cache_.Lookup(cache_key)) {
      Metrics().cache_hits->Increment();
      {
        std::lock_guard<std::mutex> lock(stats_mu_);
        ++stats_.cache_hits;
      }
      InferenceResponse response;
      response.result = std::move(*hit);
      response.model_version = servable.value()->version();
      response.from_cache = true;
      return ImmediateResult(std::move(response));
    }
    Metrics().cache_misses->Increment();
  }

  Pending pending;
  pending.servable = std::move(servable).value();
  pending.kind = request.kind;
  pending.input = std::move(request.input);
  pending.cache_key = std::move(cache_key);
  pending.admitted = Clock::now();
  pending.deadline =
      request.timeout_us > 0
          ? pending.admitted + std::chrono::microseconds(request.timeout_us)
          : Clock::time_point::max();
  std::future<Result<InferenceResponse>> future =
      pending.promise.get_future();

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!accepting_) {
      Metrics().rejected->Increment();
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected;
      pending.promise.set_value(
          Status::Unavailable("server is shutting down"));
      return future;
    }
    if (queue_.size() >= options_.queue_capacity) {
      Metrics().rejected->Increment();
      std::lock_guard<std::mutex> stats_lock(stats_mu_);
      ++stats_.rejected;
      pending.promise.set_value(Status::Unavailable(
          StrCat("request queue is full (", options_.queue_capacity,
                 " pending); retry with backoff")));
      return future;
    }
    queue_.push_back(std::move(pending));
    Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
  }
  queue_cv_.notify_one();
  return future;
}

size_t InferenceServer::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

InferenceServer::Stats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

void InferenceServer::DispatcherLoop() {
  while (true) {
    std::vector<Pending> batch = NextBatch();
    if (batch.empty()) return;  // Drained and stopping.
    ExecuteBatch(std::move(batch));
  }
}

std::vector<InferenceServer::Pending> InferenceServer::NextBatch() {
  std::unique_lock<std::mutex> lock(mu_);
  queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
  if (queue_.empty()) return {};  // stopping_ and nothing left to drain.

  std::vector<Pending> batch;
  batch.push_back(std::move(queue_.front()));
  queue_.pop_front();
  const ServableModel* leader = batch.front().servable.get();
  const RequestKind kind = batch.front().kind;
  const Clock::time_point close =
      Clock::now() + std::chrono::microseconds(options_.max_wait_us);

  // Coalesce until the batch is full or the window closes. Each pass pulls
  // every compatible request currently queued; between passes we sleep on
  // the cv so new submissions extend the batch without busy-waiting.
  while (batch.size() < options_.max_batch_size) {
    for (auto it = queue_.begin();
         it != queue_.end() && batch.size() < options_.max_batch_size;) {
      if (it->servable.get() == leader && it->kind == kind) {
        batch.push_back(std::move(*it));
        it = queue_.erase(it);
      } else {
        ++it;
      }
    }
    if (batch.size() >= options_.max_batch_size || stopping_) break;
    if (queue_cv_.wait_until(lock, close) == std::cv_status::timeout) {
      // Window closed; take any stragglers that arrived with the timeout.
      for (auto it = queue_.begin();
           it != queue_.end() && batch.size() < options_.max_batch_size;) {
        if (it->servable.get() == leader && it->kind == kind) {
          batch.push_back(std::move(*it));
          it = queue_.erase(it);
        } else {
          ++it;
        }
      }
      break;
    }
  }
  Metrics().queue_depth->Set(static_cast<double>(queue_.size()));
  if (!queue_.empty()) queue_cv_.notify_one();  // Work left for peers.
  return batch;
}

void InferenceServer::ExecuteBatch(std::vector<Pending> batch) {
  QDB_TRACE_SCOPE("InferenceServer::ExecuteBatch", "serve");
  const Clock::time_point dispatch_time = Clock::now();

  // Cancel expired requests before any simulation happens.
  std::vector<Pending> live;
  live.reserve(batch.size());
  long expired = 0;
  for (auto& pending : batch) {
    if (pending.deadline < dispatch_time) {
      pending.promise.set_value(Status::DeadlineExceeded(StrCat(
          "request deadline expired after ",
          MicrosBetween(pending.admitted, dispatch_time),
          "us in queue; it was cancelled before execution")));
      ++expired;
    } else {
      live.push_back(std::move(pending));
    }
  }
  if (expired > 0) {
    Metrics().expired->Increment(expired);
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.expired += expired;
  }
  if (live.empty()) return;

  Metrics().batches->Increment();
  Metrics().batch_size->Observe(static_cast<double>(live.size()));
  for (const auto& pending : live) {
    Metrics().queue_wait_us->Observe(static_cast<double>(
        MicrosBetween(pending.admitted, dispatch_time)));
  }

  std::vector<DVector> inputs;
  inputs.reserve(live.size());
  for (const auto& pending : live) inputs.push_back(pending.input);

  Result<std::vector<InferenceValue>> results =
      live.front().servable->RunBatch(live.front().kind, inputs);
  if (!results.ok()) {
    for (auto& pending : live) {
      pending.promise.set_value(results.status());
    }
    return;
  }

  for (size_t i = 0; i < live.size(); ++i) {
    if (!live[i].cache_key.empty()) {
      result_cache_.Insert(live[i].cache_key, results.value()[i]);
    }
    InferenceResponse response;
    response.result = std::move(results.value()[i]);
    response.model_version = live[i].servable->version();
    response.batch_size = live.size();
    response.queue_wait_us = MicrosBetween(live[i].admitted, dispatch_time);
    live[i].promise.set_value(std::move(response));
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    stats_.completed += static_cast<long>(live.size());
    ++stats_.batches;
  }
}

}  // namespace serve
}  // namespace qdb
