#include "circuit/passes.h"

#include <cmath>

namespace qdb {
namespace {

bool IsConstantGate(const Gate& g) {
  for (const auto& p : g.params) {
    if (!p.is_constant()) return false;
  }
  return true;
}

bool IsSelfInverse(GateType t) {
  switch (t) {
    case GateType::kI:
    case GateType::kX:
    case GateType::kY:
    case GateType::kZ:
    case GateType::kH:
    case GateType::kCX:
    case GateType::kCY:
    case GateType::kCZ:
    case GateType::kCH:
    case GateType::kSwap:
    case GateType::kCCX:
    case GateType::kCSwap:
    case GateType::kMCX:
    case GateType::kMCZ:
      return true;
    default:
      return false;
  }
}

/// True if the gate's action is invariant under operand reordering.
bool IsSymmetricGate(GateType t) {
  switch (t) {
    case GateType::kCZ:
    case GateType::kCPhase:
    case GateType::kSwap:
    case GateType::kRXX:
    case GateType::kRYY:
    case GateType::kRZZ:
      return true;
    default:
      return false;
  }
}

bool SameOperands(const Gate& a, const Gate& b) {
  if (a.qubits.size() != b.qubits.size()) return false;
  if (a.qubits == b.qubits) return true;
  if (IsSymmetricGate(a.type) && a.qubits.size() == 2) {
    return a.qubits[0] == b.qubits[1] && a.qubits[1] == b.qubits[0];
  }
  return false;
}

/// True when b directly undoes a (assuming b immediately follows a on the
/// same operands).
bool ArePairwiseInverse(const Gate& a, const Gate& b, double tol) {
  if (!SameOperands(a, b)) return false;
  if (a.type == b.type && IsSelfInverse(a.type)) return true;
  if (AdjointType(a.type) == b.type && a.type != b.type) return true;  // S/Sdg, T/Tdg
  if (a.type == b.type && GateParamCount(a.type) == 1) {
    if (IsConstantGate(a) && IsConstantGate(b)) {
      return std::abs(a.params[0].offset + b.params[0].offset) <= tol;
    }
    // Symbolic angles cancel when the expressions are exact negations
    // (same parameter slot, negated multiplier and offset): the composed
    // rotation angle is identically zero for every parameter vector.
    const ParamExpr& pa = a.params[0];
    const ParamExpr& pb = b.params[0];
    return pa.index == pb.index && pa.multiplier == -pb.multiplier &&
           std::abs(pa.offset + pb.offset) <= tol;
  }
  return false;
}

bool IsMergeableRotation(GateType t) {
  switch (t) {
    case GateType::kRX:
    case GateType::kRY:
    case GateType::kRZ:
    case GateType::kPhase:
    case GateType::kCRX:
    case GateType::kCRY:
    case GateType::kCRZ:
    case GateType::kCPhase:
    case GateType::kRXX:
    case GateType::kRYY:
    case GateType::kRZZ:
      return true;
    default:
      return false;
  }
}

Circuit FromGates(int num_qubits, const std::vector<Gate>& gates) {
  Circuit out(num_qubits);
  for (const auto& g : gates) out.Append(g);
  return out;
}

/// Finds the index in `gates` of the previous gate touching any qubit of
/// `gate`, or -1.
int PreviousTouching(const std::vector<Gate>& gates, const Gate& gate) {
  for (int i = static_cast<int>(gates.size()) - 1; i >= 0; --i) {
    for (int q : gates[i].qubits) {
      for (int p : gate.qubits) {
        if (p == q) return i;
      }
    }
  }
  return -1;
}

/// True if the last gate touching every operand qubit of `gate` is the
/// single gate at `idx` — i.e. no other gate interleaves on any operand.
bool IsDirectPredecessor(const std::vector<Gate>& gates, int idx,
                         const Gate& gate) {
  if (idx < 0) return false;
  // The candidate must also not act on qubits outside `gate`'s operand set
  // that saw later gates — operand-set equality is checked by callers via
  // SameOperands, so here idx being the max touching index suffices.
  return PreviousTouching(gates, gate) == idx;
}

}  // namespace

Circuit RemoveIdentities(const Circuit& circuit, double tol) {
  std::vector<Gate> out;
  for (const auto& g : circuit.gates()) {
    if (g.type == GateType::kI) continue;
    // A single-angle rotation whose angle is identically zero — constant
    // zero, or a symbolic expression with zero multiplier — is an identity
    // up to global phase for every gate type in the IR.
    if (GateParamCount(g.type) == 1 &&
        (IsConstantGate(g) || g.params[0].multiplier == 0.0) &&
        std::abs(g.params[0].offset) <= tol) {
      continue;
    }
    out.push_back(g);
  }
  return FromGates(circuit.num_qubits(), out);
}

Circuit CancelAdjacentInverses(const Circuit& circuit, double tol) {
  std::vector<Gate> out;
  out.reserve(circuit.size());
  for (const auto& g : circuit.gates()) {
    int prev = PreviousTouching(out, g);
    if (prev >= 0 && ArePairwiseInverse(out[prev], g, tol) &&
        IsDirectPredecessor(out, prev, g)) {
      // The pair composes to identity; erasing re-exposes earlier gates to
      // later cancellation automatically since we scan forward.
      out.erase(out.begin() + prev);
      continue;
    }
    out.push_back(g);
  }
  return FromGates(circuit.num_qubits(), out);
}

Circuit MergeRotations(const Circuit& circuit, double tol) {
  std::vector<Gate> out;
  out.reserve(circuit.size());
  for (const auto& g : circuit.gates()) {
    int prev = PreviousTouching(out, g);
    if (prev >= 0 && out[prev].type == g.type && IsMergeableRotation(g.type) &&
        SameOperands(out[prev], g) && IsConstantGate(out[prev]) &&
        IsConstantGate(g) && IsDirectPredecessor(out, prev, g)) {
      double merged = out[prev].params[0].offset + g.params[0].offset;
      if (std::abs(merged) <= tol) {
        out.erase(out.begin() + prev);
      } else {
        out[prev].params[0] = ParamExpr::Constant(merged);
      }
      continue;
    }
    out.push_back(g);
  }
  return FromGates(circuit.num_qubits(), out);
}

Circuit OptimizeCircuit(const Circuit& circuit, double tol) {
  Circuit current = circuit;
  while (true) {
    size_t before = current.size();
    current = RemoveIdentities(current, tol);
    current = MergeRotations(current, tol);
    current = CancelAdjacentInverses(current, tol);
    if (current.size() >= before) break;
  }
  return current;
}

std::map<std::string, int> GateCounts(const Circuit& circuit) {
  std::map<std::string, int> counts;
  for (const auto& g : circuit.gates()) ++counts[GateTypeName(g.type)];
  return counts;
}

}  // namespace qdb
