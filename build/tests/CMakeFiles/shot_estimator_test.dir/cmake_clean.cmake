file(REMOVE_RECURSE
  "CMakeFiles/shot_estimator_test.dir/shot_estimator_test.cc.o"
  "CMakeFiles/shot_estimator_test.dir/shot_estimator_test.cc.o.d"
  "shot_estimator_test"
  "shot_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/shot_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
