/// \file simd.h
/// \brief Runtime SIMD dispatch level for the state-vector kernels.
///
/// The amplitude kernels (kernels.h) ship two implementations: a portable
/// scalar path and an AVX2 path compiled with a per-function target
/// attribute, so the binary runs on any x86-64 and lights up AVX2 only when
/// the CPU has it. Both paths execute the same per-element operation
/// sequence (same products, same left-to-right summation order, no FMA
/// contraction), so dispatch never changes results — amplitudes are
/// bit-identical at every level.
///
/// Selection order:
///   1. `QDB_SIMD` env var: "0" / "off" / "scalar" force the scalar path;
///      "1" / "avx2" / "auto" (or unset) pick the best supported level.
///   2. CPUID: AVX2 is used only if the CPU reports it.
/// Tests can override the level in-process via SetActiveSimdLevel.

#ifndef QDB_SIM_SIMD_H_
#define QDB_SIM_SIMD_H_

namespace qdb {
namespace simd {

enum class SimdLevel {
  kScalar = 0,
  kAvx2 = 1,
};

/// Human-readable level name ("scalar" / "avx2").
const char* SimdLevelName(SimdLevel level);

/// True if the executing CPU supports AVX2.
bool CpuSupportsAvx2();

/// The level kernels dispatch on, resolved once from QDB_SIMD + CPUID
/// (subsequent calls are a relaxed atomic load).
SimdLevel ActiveSimdLevel();

/// Test hook: force the dispatch level in-process. Returns false (and
/// leaves the level unchanged) if the CPU cannot execute the requested
/// level. Pass-through for kScalar, CPUID-gated for kAvx2.
bool SetActiveSimdLevel(SimdLevel level);

/// Test hook: drop any override and re-resolve from QDB_SIMD + CPUID.
void ResetSimdLevel();

}  // namespace simd
}  // namespace qdb

#endif  // QDB_SIM_SIMD_H_
