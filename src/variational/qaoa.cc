#include "variational/qaoa.h"

#include <cmath>
#include <limits>

#include "autodiff/expectation.h"
#include "obs/trace.h"
#include "sim/statevector_simulator.h"

namespace qdb {

Qaoa::Qaoa(IsingModel cost, int layers)
    : cost_(std::move(cost)),
      layers_(layers),
      cost_observable_(cost_.ToPauliSum()),
      circuit_(Build()) {
  QDB_CHECK_GE(layers, 1);
}

Circuit Qaoa::Build() const {
  const int n = cost_.num_spins();
  Circuit c(n);
  for (int q = 0; q < n; ++q) c.H(q);
  for (int layer = 0; layer < layers_; ++layer) {
    const int gamma = layer;            // θ[layer]
    const int beta = layers_ + layer;   // θ[p + layer]
    // Cost separator exp(−i γ H_C): Z fields → RZ(2γh), ZZ → RZZ(2γJ).
    for (int i = 0; i < n; ++i) {
      const double h = cost_.field(i);
      if (h != 0.0) c.RZ(i, ParamExpr::Affine(gamma, 2.0 * h, 0.0));
    }
    for (const auto& [ij, j_val] : cost_.couplings()) {
      if (j_val != 0.0) {
        c.RZZ(ij.first, ij.second, ParamExpr::Affine(gamma, 2.0 * j_val, 0.0));
      }
    }
    // Transverse-field mixer exp(−i β Σ X).
    for (int q = 0; q < n; ++q) c.RX(q, ParamExpr::Affine(beta, 2.0, 0.0));
  }
  return c;
}

Result<double> Qaoa::Energy(const DVector& params) const {
  ExpectationFunction f(circuit_, cost_observable_);
  return f.Evaluate(params);
}

Result<std::vector<int8_t>> Qaoa::SampleBest(const DVector& params, int shots,
                                             Rng& rng) const {
  StateVectorSimulator sim;
  QDB_ASSIGN_OR_RETURN(StateVector state, sim.Run(circuit_, params));
  auto counts = state.SampleCounts(rng, shots);
  double best_energy = std::numeric_limits<double>::infinity();
  std::vector<int8_t> best;
  for (const auto& [index, count] : counts) {
    std::vector<int8_t> spins = IndexToSpins(index, cost_.num_spins());
    double e = cost_.Energy(spins);
    if (e < best_energy) {
      best_energy = e;
      best = std::move(spins);
    }
  }
  if (best.empty()) {
    return Status::Internal("no samples drawn");
  }
  return best;
}

Result<QaoaResult> Qaoa::Optimize(const QaoaOptions& options) const {
  QDB_TRACE_SCOPE("Qaoa::Optimize", "train");
  ExpectationFunction f(circuit_, cost_observable_);
  Objective objective = [&f](const DVector& p) { return f.Evaluate(p); };

  Rng rng(options.seed);
  QaoaResult result;
  result.expected_energy = std::numeric_limits<double>::infinity();
  // Scale the γ init range by the coupling magnitude so the phase separator
  // starts in a non-trivial regime for weighted instances.
  const double scale = std::max(cost_.MaxAbsCoefficient(), 1e-9);
  for (int r = 0; r < std::max(options.restarts, 1); ++r) {
    DVector init(2 * layers_);
    for (int k = 0; k < layers_; ++k) {
      init[k] = rng.Uniform(0.0, M_PI / scale);        // γ
      init[layers_ + k] = rng.Uniform(0.0, M_PI / 2);  // β
    }
    QDB_ASSIGN_OR_RETURN(
        OptimizeResult opt,
        MinimizeNelderMead(objective, init, options.nelder_mead));
    if (opt.value < result.expected_energy) {
      result.expected_energy = opt.value;
      result.params = std::move(opt.params);
      result.history = std::move(opt.history);
    }
  }

  QDB_ASSIGN_OR_RETURN(result.best_spins,
                       SampleBest(result.params, options.sample_shots, rng));
  result.best_energy = cost_.Energy(result.best_spins);
  result.circuit_evaluations = f.evaluation_count();
  return result;
}

}  // namespace qdb
