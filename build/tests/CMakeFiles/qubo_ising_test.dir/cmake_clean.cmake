file(REMOVE_RECURSE
  "CMakeFiles/qubo_ising_test.dir/qubo_ising_test.cc.o"
  "CMakeFiles/qubo_ising_test.dir/qubo_ising_test.cc.o.d"
  "qubo_ising_test"
  "qubo_ising_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qubo_ising_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
