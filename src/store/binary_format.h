/// \file binary_format.h
/// \brief Versioned binary on-disk format for model artifacts, plus the
/// shared crash-safe file I/O the storage tier runs on.
///
/// Layout (format version 1, little-endian, all offsets from byte 0):
///
///     [ 0..64)   header (64 bytes)
///       [ 0.. 8)  magic "QDBSTOR1"
///       [ 8..12)  u32 format_version
///       [12..16)  u32 flags (reserved, must be 0)
///       [16..20)  u32 section_count
///       [20..24)  u32 reserved (must be 0)
///       [24..32)  u64 file_size (total bytes, detects truncation)
///       [32..40)  u64 header_checksum — FNV-1a over the header (with this
///                 field zeroed) and the whole section table, so *any*
///                 flipped header/table byte fails closed
///       [40..64)  zero padding (covered by the checksum)
///     [64..64+32·n)  section table: n entries of
///       { u32 type; u32 reserved; u64 offset; u64 size; u64 checksum }
///     [...]      section payloads, each offset aligned to 64 bytes and
///                individually FNV-1a checksummed
///
/// Section types: meta (scalars + name — always present), params,
/// circuit fingerprint, support vectors (stored SoA: all coefficients,
/// then the feature matrix row-major — one memcpy each on load), and QUBO
/// config pairs. Unknown section types whose checksums verify are skipped,
/// so minor format extensions stay readable by old binaries; incompatible
/// changes bump format_version and fail with kUnimplemented. The fixed
/// header, 64-byte alignment, and SoA numeric payloads make the layout
/// mmap-friendly: every numeric array can be pointed at in place.
///
/// Corruption anywhere — header, table, or payload — fails with
/// kInvalidArgument; a valid file never deserializes to a silently wrong
/// model. The text format of model_artifact.h remains a read-compatible
/// fallback: LoadArtifact sniffs the magic and routes to the right reader.

#ifndef QDB_STORE_BINARY_FORMAT_H_
#define QDB_STORE_BINARY_FORMAT_H_

#include <string>

#include "common/result.h"
#include "serve/model_artifact.h"

namespace qdb {
namespace store {

/// On-disk encodings SaveArtifact can write. Readers accept both.
enum class ArtifactFormat {
  kText,    ///< Line-oriented format of model_artifact.h (version 1).
  kBinary,  ///< Sectioned binary format of this header (version 1).
};

const char* ArtifactFormatName(ArtifactFormat format);

/// Serializes to the binary format (version 1).
std::string SerializeBinary(const serve::ModelArtifact& artifact);

/// Parses the binary format. Corrupted input (bad magic, damaged header or
/// table, failed section checksum, truncation, implausible counts) returns
/// kInvalidArgument; a structurally valid file with an unsupported
/// format_version returns kUnimplemented.
Result<serve::ModelArtifact> DeserializeBinary(const std::string& bytes);

/// True when `bytes` begins with the binary magic (routing hint only — the
/// reader still validates everything).
bool LooksBinary(const std::string& bytes);

/// Crash-safe whole-file write: payload goes to `<path>.tmp`, is fsync'd,
/// then renamed into place (with a best-effort fsync of the parent
/// directory), so the destination is only ever absent or complete — across
/// process crashes and, on filesystems honoring fsync, power loss. Runs
/// the "artifact.save" fault point (scoped by `fault_scope`): injected
/// errors abort before any byte is written and torn writes persist only a
/// payload prefix of the temp file before a simulated crash.
Status AtomicWriteFile(const std::string& path, const std::string& payload,
                       const std::string& fault_scope);

/// Reads a whole file through the "store.read" fault point (scoped by
/// `path`): errors fail the read, latency stalls it, and torn_write faults
/// model a torn *read* by keeping only a prefix of the bytes. Missing
/// files return kNotFound.
Result<std::string> ReadFileBytes(const std::string& path);

/// Loads an artifact from disk in either format, sniffing the magic.
/// Increments the store.artifact_loads{format=...} counter on success.
Result<serve::ModelArtifact> LoadArtifact(const std::string& path);

/// Saves an artifact crash-safely in the requested format.
Status SaveArtifact(const serve::ModelArtifact& artifact,
                    const std::string& path, ArtifactFormat format);

}  // namespace store
}  // namespace qdb

#endif  // QDB_STORE_BINARY_FORMAT_H_
