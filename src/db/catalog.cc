#include "db/catalog.h"

#include "common/strings.h"

namespace qdb {

Status Catalog::AddTable(const std::string& name, double cardinality) {
  if (name.empty()) {
    return Status::InvalidArgument("table name must be non-empty");
  }
  if (cardinality <= 0.0) {
    return Status::InvalidArgument(
        StrCat("cardinality for '", name, "' must be positive, got ",
               cardinality));
  }
  if (index_.count(name)) {
    return Status::AlreadyExists(StrCat("table '", name, "' already registered"));
  }
  index_[name] = static_cast<int>(tables_.size());
  tables_.push_back(TableStats{name, cardinality});
  return Status::OK();
}

Status Catalog::SetSelectivity(const std::string& a, const std::string& b,
                               double selectivity) {
  QDB_ASSIGN_OR_RETURN(int ia, TableIndex(a));
  QDB_ASSIGN_OR_RETURN(int ib, TableIndex(b));
  if (ia == ib) {
    return Status::InvalidArgument("selectivity needs two distinct tables");
  }
  if (selectivity <= 0.0 || selectivity > 1.0) {
    return Status::InvalidArgument(
        StrCat("selectivity must be in (0, 1], got ", selectivity));
  }
  selectivities_[{std::min(ia, ib), std::max(ia, ib)}] = selectivity;
  return Status::OK();
}

Result<TableStats> Catalog::GetTable(const std::string& name) const {
  QDB_ASSIGN_OR_RETURN(int i, TableIndex(name));
  return tables_[i];
}

Result<double> Catalog::GetSelectivity(const std::string& a,
                                       const std::string& b) const {
  QDB_ASSIGN_OR_RETURN(int ia, TableIndex(a));
  QDB_ASSIGN_OR_RETURN(int ib, TableIndex(b));
  auto it = selectivities_.find({std::min(ia, ib), std::max(ia, ib)});
  return it == selectivities_.end() ? 1.0 : it->second;
}

Result<JoinQueryGraph> Catalog::BuildJoinGraph(
    const std::vector<std::pair<std::string, std::string>>& joins) const {
  if (tables_.size() < 2) {
    return Status::FailedPrecondition(
        "building a join graph needs at least two registered tables");
  }
  std::vector<double> cards;
  cards.reserve(tables_.size());
  for (const auto& t : tables_) cards.push_back(t.cardinality);
  QDB_ASSIGN_OR_RETURN(JoinQueryGraph graph,
                       JoinQueryGraph::Create(std::move(cards)));
  for (const auto& [a, b] : joins) {
    QDB_ASSIGN_OR_RETURN(int ia, TableIndex(a));
    QDB_ASSIGN_OR_RETURN(int ib, TableIndex(b));
    QDB_ASSIGN_OR_RETURN(double sel, GetSelectivity(a, b));
    QDB_RETURN_IF_ERROR(graph.AddJoin(ia, ib, sel));
  }
  return graph;
}

Result<int> Catalog::TableIndex(const std::string& name) const {
  auto it = index_.find(name);
  if (it == index_.end()) {
    return Status::NotFound(StrCat("table '", name, "' not in catalog"));
  }
  return it->second;
}

}  // namespace qdb
