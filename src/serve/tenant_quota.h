/// \file tenant_quota.h
/// \brief Per-tenant token-bucket admission quotas for the serving tier.
///
/// Every tenant owns a token bucket: capacity `burst` tokens, refilled
/// continuously at `rate_per_s` tokens per second. Admitting a request
/// costs one token; a tenant with an empty bucket is rejected with
/// kResourceExhausted *before* the request touches the model registry,
/// the circuit breakers, or a shard queue — quota shedding is the first
/// admission rung, so a tenant over its budget can neither fill queues
/// nor trip another tenant's breaker.
///
/// Determinism: the manager reads time through an injectable microsecond
/// clock, so tests drive refill with a hand-advanced counter and assert
/// token arithmetic exactly. Production servers use the default
/// steady_clock-backed reader.
///
/// Cardinality is bounded the same way obs::LabeledFamily bounds label
/// sets: the first `max_tenants` distinct tenant ids get their own bucket,
/// every later tenant shares one overflow bucket (so an adversarial
/// tenant-id stream degrades to a coarse shared budget instead of growing
/// the map without bound).

#ifndef QDB_SERVE_TENANT_QUOTA_H_
#define QDB_SERVE_TENANT_QUOTA_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qdb {
namespace serve {

/// One tenant's token-bucket parameters. `rate_per_s <= 0` means the
/// bucket never refills *and* never limits — the tenant is unmetered
/// (useful for a default-open policy where only named tenants are
/// throttled). `burst` is clamped to >= 1 so a metered tenant can always
/// admit at least one request from a full bucket.
struct TokenBucketSpec {
  double rate_per_s = 0.0;  ///< Sustained tokens per second (<= 0: unmetered).
  double burst = 16.0;      ///< Bucket capacity (peak admission run).
};

/// Quota-manager configuration: the spec applied to tenants without an
/// explicit override, per-tenant overrides, and the distinct-tenant cap.
struct TenantQuotaOptions {
  TokenBucketSpec default_spec;
  std::map<std::string, TokenBucketSpec> per_tenant;
  size_t max_tenants = 256;
};

/// \brief Thread-safe token-bucket registry keyed by tenant id.
class TenantQuotaManager {
 public:
  /// Microsecond monotonic clock; injectable for deterministic tests.
  using ClockFn = std::function<int64_t()>;

  /// `clock` defaults to a steady_clock-backed microsecond reader.
  explicit TenantQuotaManager(TenantQuotaOptions options,
                              ClockFn clock = nullptr);

  /// Spends one token from `tenant`'s bucket (creating it full on first
  /// touch). Returns false — and tallies a rejection — when the bucket is
  /// empty. Unmetered tenants (rate_per_s <= 0 and no override) always
  /// admit.
  bool TryAcquire(const std::string& tenant);

  /// Point-in-time view of one bucket, for Statusz and tests.
  struct TenantState {
    std::string tenant;
    double tokens = 0.0;      ///< Tokens after refill at snapshot time.
    double rate_per_s = 0.0;
    double burst = 0.0;
    bool metered = true;      ///< False: this tenant always admits.
    long admitted = 0;
    long rejected = 0;
  };

  /// Every known bucket, sorted by tenant id (the overflow bucket, when
  /// present, reports under kOverflowTenant).
  std::vector<TenantState> Snapshot() const;

  /// Distinct (non-overflow) tenants seen so far.
  size_t tenant_count() const;

  /// Tenant id under which past-the-cap tenants share one bucket.
  static constexpr const char* kOverflowTenant = "__overflow__";

 private:
  struct Bucket {
    TokenBucketSpec spec;
    double tokens = 0.0;
    int64_t last_refill_us = 0;
    long admitted = 0;
    long rejected = 0;
  };

  /// Refills `bucket` up to `now_us` (no-op for unmetered specs).
  static void RefillLocked(Bucket& bucket, int64_t now_us);
  static bool Metered(const TokenBucketSpec& spec) {
    return spec.rate_per_s > 0.0;
  }
  /// The spec for `tenant`: the per-tenant override or the default.
  const TokenBucketSpec& SpecFor(const std::string& tenant) const;
  Bucket& BucketForLocked(const std::string& tenant, int64_t now_us);

  const TenantQuotaOptions options_;
  const ClockFn clock_;

  mutable std::mutex mu_;
  std::map<std::string, Bucket> buckets_;
};

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_TENANT_QUOTA_H_
