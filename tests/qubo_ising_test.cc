// Tests for the QUBO and Ising models: energies, flip deltas, conversions.

#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "ops/ising.h"
#include "ops/pauli.h"
#include "ops/qubo.h"

namespace qdb {
namespace {

Qubo RandomQubo(int n, Rng& rng, double density = 0.5) {
  Qubo q(n);
  for (int i = 0; i < n; ++i) q.AddLinear(i, rng.Uniform(-2.0, 2.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(density)) q.AddQuadratic(i, j, rng.Uniform(-2.0, 2.0));
    }
  }
  q.AddOffset(rng.Uniform(-1.0, 1.0));
  return q;
}

IsingModel RandomIsing(int n, Rng& rng, double density = 0.5) {
  IsingModel m(n);
  for (int i = 0; i < n; ++i) m.AddField(i, rng.Uniform(-2.0, 2.0));
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      if (rng.Bernoulli(density)) m.AddCoupling(i, j, rng.Uniform(-2.0, 2.0));
    }
  }
  m.AddOffset(rng.Uniform(-1.0, 1.0));
  return m;
}

TEST(QuboTest, EnergyHandComputed) {
  Qubo q(3);
  q.AddLinear(0, 1.0);
  q.AddLinear(2, -2.0);
  q.AddQuadratic(0, 1, 3.0);
  q.AddQuadratic(1, 2, -1.0);
  q.AddOffset(0.5);
  // x = (1, 1, 0): 1 + 3 + 0.5 = 4.5.
  EXPECT_NEAR(q.Energy({1, 1, 0}), 4.5, 1e-12);
  // x = (1, 1, 1): 1 − 2 + 3 − 1 + 0.5 = 1.5.
  EXPECT_NEAR(q.Energy({1, 1, 1}), 1.5, 1e-12);
  EXPECT_NEAR(q.Energy({0, 0, 0}), 0.5, 1e-12);
}

TEST(QuboTest, DiagonalQuadraticFoldsToLinear) {
  Qubo q(2);
  q.AddQuadratic(1, 1, 4.0);  // x² = x.
  EXPECT_NEAR(q.linear(1), 4.0, 1e-12);
  EXPECT_TRUE(q.quadratic().empty());
}

TEST(QuboTest, QuadraticAccumulatesAcrossOrderings) {
  Qubo q(2);
  q.AddQuadratic(0, 1, 1.0);
  q.AddQuadratic(1, 0, 2.0);
  ASSERT_EQ(q.quadratic().size(), 1u);
  EXPECT_NEAR(q.quadratic().at({0, 1}), 3.0, 1e-12);
  EXPECT_EQ(q.Neighbors(0).size(), 1u);
  EXPECT_NEAR(q.Neighbors(0)[0].second, 3.0, 1e-12);
}

class QuboPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(QuboPropertyTest, FlipDeltaMatchesEnergyDifference) {
  Rng rng(GetParam());
  const int n = 6;
  Qubo q = RandomQubo(n, rng);
  std::vector<uint8_t> bits(n);
  for (auto& b : bits) b = rng.Bernoulli(0.5);
  for (int i = 0; i < n; ++i) {
    const double before = q.Energy(bits);
    const double delta = q.FlipDelta(bits, i);
    bits[i] ^= 1;
    EXPECT_NEAR(q.Energy(bits) - before, delta, 1e-10);
    bits[i] ^= 1;
  }
}

TEST_P(QuboPropertyTest, IsingRoundTripPreservesEnergies) {
  // QUBO → Ising → QUBO preserves the energy of every assignment.
  Rng rng(100 + GetParam());
  const int n = 5;
  Qubo q = RandomQubo(n, rng);
  Qubo round_trip = q.ToIsing().ToQubo();
  std::vector<uint8_t> bits(n);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    for (int i = 0; i < n; ++i) bits[i] = (mask >> i) & 1;
    EXPECT_NEAR(q.Energy(bits), round_trip.Energy(bits), 1e-9) << mask;
  }
}

TEST_P(QuboPropertyTest, QuboIsingEnergiesAgreeUnderVariableMap) {
  // E_qubo(x) == E_ising(s) with s = 2x − 1, for every assignment.
  Rng rng(200 + GetParam());
  const int n = 5;
  Qubo q = RandomQubo(n, rng);
  IsingModel ising = q.ToIsing();
  std::vector<uint8_t> bits(n);
  for (uint64_t mask = 0; mask < (uint64_t{1} << n); ++mask) {
    for (int i = 0; i < n; ++i) bits[i] = (mask >> i) & 1;
    EXPECT_NEAR(q.Energy(bits), ising.Energy(BitsToSpins(bits)), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QuboPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

TEST(IsingTest, EnergyHandComputed) {
  IsingModel m(2);
  m.AddField(0, 0.5);
  m.AddCoupling(0, 1, -1.0);
  m.AddOffset(2.0);
  EXPECT_NEAR(m.Energy({1, 1}), 0.5 - 1.0 + 2.0, 1e-12);
  EXPECT_NEAR(m.Energy({-1, 1}), -0.5 + 1.0 + 2.0, 1e-12);
}

class IsingPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IsingPropertyTest, FlipDeltaMatchesEnergyDifference) {
  Rng rng(300 + GetParam());
  const int n = 6;
  IsingModel m = RandomIsing(n, rng);
  std::vector<int8_t> spins(n);
  for (auto& s : spins) s = rng.Bernoulli(0.5) ? 1 : -1;
  for (int i = 0; i < n; ++i) {
    const double before = m.Energy(spins);
    const double delta = m.FlipDelta(spins, i);
    spins[i] = -spins[i];
    EXPECT_NEAR(m.Energy(spins) - before, delta, 1e-10);
    spins[i] = -spins[i];
  }
}

TEST_P(IsingPropertyTest, PauliSumDiagonalMatchesEnergies) {
  // The ToPauliSum Hamiltonian's diagonal entry at basis index i equals the
  // Ising energy of the measurement-mapped spin configuration.
  Rng rng(400 + GetParam());
  const int n = 4;
  IsingModel m = RandomIsing(n, rng);
  PauliSum h = m.ToPauliSum();
  ASSERT_TRUE(h.IsDiagonal());
  auto diag = h.DiagonalValues();
  ASSERT_TRUE(diag.ok());
  for (uint64_t i = 0; i < (uint64_t{1} << n); ++i) {
    EXPECT_NEAR(diag.value()[i], m.Energy(IndexToSpins(i, n)), 1e-9) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IsingPropertyTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

TEST(IsingTest, MaxAbsCoefficient) {
  IsingModel m(3);
  m.AddField(0, -0.5);
  m.AddCoupling(1, 2, 3.5);
  EXPECT_NEAR(m.MaxAbsCoefficient(), 3.5, 1e-12);
}

TEST(SpinBitConversionTest, AlgebraicMapsAreInverse) {
  std::vector<uint8_t> bits = {0, 1, 1, 0};
  EXPECT_EQ(SpinsToBits(BitsToSpins(bits)), bits);
  std::vector<int8_t> spins = {1, -1, -1, 1};
  EXPECT_EQ(BitsToSpins(SpinsToBits(spins)), spins);
}

TEST(SpinBitConversionTest, MeasurementMapConvention) {
  // Index 0b10 on two qubits: qubit 0 reads 1 (spin −1), qubit 1 reads 0.
  std::vector<int8_t> spins = IndexToSpins(0b10, 2);
  EXPECT_EQ(spins[0], -1);
  EXPECT_EQ(spins[1], 1);
}

}  // namespace
}  // namespace qdb
