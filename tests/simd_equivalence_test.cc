// Scalar-vs-AVX2 dispatch equivalence: every gate kernel, probability
// reduction, and the cache-blocked compiled executor must produce
// bit-identical amplitudes at every SIMD level and thread width, at sizes on
// both sides of kParallelAmplitudeThreshold. The kernels are written to the
// same-operations/same-order contract (sim/kernels.h); this test is the
// enforcement.

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "common/thread_pool.h"
#include "linalg/random_unitary.h"
#include "sim/compiled_circuit.h"
#include "sim/simd.h"
#include "sim/state_vector.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

/// Restores auto-resolved dispatch and single-threaded execution however a
/// test exits.
class DispatchGuard {
 public:
  ~DispatchGuard() {
    simd::ResetSimdLevel();
    ThreadPool::SetGlobalThreads(1);
  }
};

struct Config {
  simd::SimdLevel level;
  int threads;
};

/// The non-scalar configurations to compare against the scalar/1-thread
/// baseline. AVX2 configs are dropped when the CPU lacks it (the dispatch
/// refuses the override), so the test degrades to a thread-width sweep.
std::vector<Config> ComparisonConfigs() {
  std::vector<Config> configs = {{simd::SimdLevel::kScalar, 4}};
  if (simd::SetActiveSimdLevel(simd::SimdLevel::kAvx2)) {
    configs.push_back({simd::SimdLevel::kAvx2, 1});
    configs.push_back({simd::SimdLevel::kAvx2, 4});
  }
  simd::SetActiveSimdLevel(simd::SimdLevel::kScalar);
  return configs;
}

/// Applies a deterministic sequence covering every StateVector kernel at
/// strides that exercise both the vectorized bodies and their small-stride
/// scalar fallbacks (qubit 0 = MSB ⇒ largest stride; qubit n-1 ⇒ stride 1).
void ApplyKernelSweep(StateVector& s) {
  const int n = s.num_qubits();
  Rng mats(4242);  // Same seed every call: identical unitaries everywhere.
  const Matrix u4 = RandomUnitary(4, mats);
  const Matrix u8 = RandomUnitary(8, mats);
  const Matrix h = GateMatrix(GateType::kH, {});

  for (int q = 0; q < n; ++q) s.Apply1Q(q, h);
  // Dense 1Q: vector path (large stride) and scalar fallback (stride < 4).
  s.Apply1Q(0, GateMatrix(GateType::kRY, {0.37}));
  s.Apply1Q(n - 1, GateMatrix(GateType::kRY, {0.53}));
  s.Apply1Q(n - 2, GateMatrix(GateType::kRX, {0.29}));
  // Diagonal 1Q at both extremes (predicated vector body handles any mask).
  s.ApplyDiagonal1Q(0, Complex(std::cos(0.3), std::sin(0.3)), Complex(1, 0));
  s.ApplyDiagonal1Q(n - 1, Complex(1, 0), Complex(std::cos(0.7), std::sin(0.7)));
  // Controlled 1Q: control above target (vector path), control below target
  // (scalar fallback), target stride < 4 (scalar fallback).
  s.ApplyControlled1Q(0, 2, Complex(0, 0), Complex(1, 0), Complex(1, 0),
                      Complex(0, 0));
  s.ApplyControlled1Q(n - 1, 0, Complex(std::cos(0.2), std::sin(0.2)),
                      Complex(0, 0), Complex(0, 0), Complex(1, 0));
  s.ApplyControlled1Q(0, n - 1, Complex(1, 0), Complex(0, 0), Complex(0, 0),
                      Complex(std::cos(0.4), std::sin(0.4)));
  // Diagonal 2Q at both extremes.
  s.ApplyDiagonal2Q(0, 1, Complex(1, 0), Complex(0, 1), Complex(-1, 0),
                    Complex(0, -1));
  s.ApplyDiagonal2Q(n - 2, n - 1, Complex(1, 0), Complex(1, 0), Complex(1, 0),
                    Complex(-1, 0));
  // Dense 2Q: quad-contiguous vector path (both operands high) and the
  // lo_pos < 2 scalar fallback (operand at the LSB end).
  s.Apply2Q(0, 1, u4);
  s.Apply2Q(n - 2, n - 1, u4);
  s.Apply2Q(1, n - 1, u4);
  // Serial kernels ride along so the sweep covers the whole gate surface.
  s.ApplySwap(0, n - 1);
  s.ApplyMCX({0, 1}, 2);
  s.ApplyMCZ({0}, 1);
  s.ApplyKQ({0, 1, 2}, u8);
}

/// Fails unless both states have bit-identical planes.
void ExpectBitIdentical(const StateVector& a, const StateVector& b,
                        const char* what) {
  ASSERT_EQ(a.dim(), b.dim());
  const double* ar = a.reals();
  const double* ai = a.imags();
  const double* br = b.reals();
  const double* bi = b.imags();
  for (uint64_t i = 0; i < a.dim(); ++i) {
    ASSERT_EQ(ar[i], br[i]) << what << ": re mismatch at index " << i;
    ASSERT_EQ(ai[i], bi[i]) << what << ": im mismatch at index " << i;
  }
}

// 13 qubits (2^13 amps) stays below kParallelAmplitudeThreshold = 2^14;
// 15 qubits sits above it, so both serial and pooled kernel paths run.
class SimdEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(SimdEquivalenceTest, GateKernelsBitIdenticalAcrossDispatch) {
  DispatchGuard guard;
  const int n = GetParam();

  ASSERT_TRUE(simd::SetActiveSimdLevel(simd::SimdLevel::kScalar));
  ThreadPool::SetGlobalThreads(1);
  StateVector baseline(n);
  ApplyKernelSweep(baseline);
  const DVector base_probs = baseline.Probabilities();
  const double base_p1 = baseline.ProbabilityOfOne(1);
  const double base_norm = baseline.NormValue();

  for (const Config& config : ComparisonConfigs()) {
    ASSERT_TRUE(simd::SetActiveSimdLevel(config.level));
    ThreadPool::SetGlobalThreads(config.threads);
    StateVector other(n);
    ApplyKernelSweep(other);
    const std::string what =
        std::string(simd::SimdLevelName(config.level)) + "/t" +
        std::to_string(config.threads);
    ExpectBitIdentical(baseline, other, what.c_str());

    const DVector probs = other.Probabilities();
    for (uint64_t i = 0; i < other.dim(); ++i) {
      ASSERT_EQ(base_probs[i], probs[i]) << what << ": prob at " << i;
    }
    ASSERT_EQ(base_p1, other.ProbabilityOfOne(1)) << what;
    ASSERT_EQ(base_norm, other.NormValue()) << what;
  }
}

TEST_P(SimdEquivalenceTest, MeasurementCollapseBitIdenticalAcrossDispatch) {
  DispatchGuard guard;
  const int n = GetParam();

  ASSERT_TRUE(simd::SetActiveSimdLevel(simd::SimdLevel::kScalar));
  ThreadPool::SetGlobalThreads(1);
  StateVector baseline(n);
  ApplyKernelSweep(baseline);
  Rng rng_base(99);
  const int outcome_base = baseline.MeasureQubit(2, rng_base);

  for (const Config& config : ComparisonConfigs()) {
    ASSERT_TRUE(simd::SetActiveSimdLevel(config.level));
    ThreadPool::SetGlobalThreads(config.threads);
    StateVector other(n);
    ApplyKernelSweep(other);
    Rng rng(99);
    const int outcome = other.MeasureQubit(2, rng);
    const std::string what =
        std::string("measure ") + simd::SimdLevelName(config.level) + "/t" +
        std::to_string(config.threads);
    ASSERT_EQ(outcome_base, outcome) << what;
    ExpectBitIdentical(baseline, other, what.c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(BelowAndAboveParallelThreshold, SimdEquivalenceTest,
                         ::testing::Values(13, 15));

/// A dense brick-pattern circuit whose lowered ops include long blockable
/// runs plus MSB-operand barriers, mirroring the benchmark workload.
Circuit BrickCircuit(int n, int layers) {
  Circuit c(n);
  Rng rng(7);
  for (int l = 0; l < layers; ++l) {
    for (int q = 0; q < n; ++q) {
      c.RX(q, rng.Uniform() * 3.0);
      c.RY(q, rng.Uniform() * 3.0);
      c.H(q);
    }
    for (int q = l % 2; q + 1 < n; q += 2) c.CX(q, q + 1);
  }
  return c;
}

TEST(CacheBlockedExecutionTest, BlockedReplayMatchesInterpreterBitwise) {
  DispatchGuard guard;
  // 17 qubits: dim = 2^17 > the 2^16-amplitude block, so compiled replay
  // runs the blocked path while the interpreter applies ops one at a time
  // over the full state. Without fusion both execute the identical op list,
  // so amplitudes must match bit for bit — at every dispatch config.
  const int n = 17;
  const Circuit circuit = BrickCircuit(n, 2);

  StateVectorSimulator interpreter;
  interpreter.set_execution_mode(ExecutionMode::kInterpreted);

  const CompiledCircuit compiled =
      CompiledCircuit::Compile(circuit, CompileOptions{/*fuse=*/false});

  std::vector<Config> configs = {{simd::SimdLevel::kScalar, 1}};
  for (const Config& c : ComparisonConfigs()) configs.push_back(c);
  for (const Config& config : configs) {
    ASSERT_TRUE(simd::SetActiveSimdLevel(config.level));
    ThreadPool::SetGlobalThreads(config.threads);

    StateVector interpreted(n);
    ASSERT_TRUE(interpreter.RunInPlace(circuit, interpreted).ok());
    StateVector blocked(n);
    ASSERT_TRUE(compiled.Execute(blocked, {}).ok());

    const std::string what =
        std::string("blocked ") + simd::SimdLevelName(config.level) + "/t" +
        std::to_string(config.threads);
    ExpectBitIdentical(interpreted, blocked, what.c_str());
  }
}

TEST(CacheBlockedExecutionTest, FusedBlockedReplayBitIdenticalAcrossDispatch) {
  DispatchGuard guard;
  // With fusion on, the compiled program differs from the interpreter's op
  // list — but it must still be bit-identical to itself across every SIMD
  // level and thread width.
  const int n = 17;
  const Circuit circuit = BrickCircuit(n, 2);
  const CompiledCircuit compiled =
      CompiledCircuit::Compile(circuit, CompileOptions{/*fuse=*/true});

  ASSERT_TRUE(simd::SetActiveSimdLevel(simd::SimdLevel::kScalar));
  ThreadPool::SetGlobalThreads(1);
  StateVector baseline(n);
  ASSERT_TRUE(compiled.Execute(baseline, {}).ok());

  for (const Config& config : ComparisonConfigs()) {
    ASSERT_TRUE(simd::SetActiveSimdLevel(config.level));
    ThreadPool::SetGlobalThreads(config.threads);
    StateVector other(n);
    ASSERT_TRUE(compiled.Execute(other, {}).ok());
    const std::string what =
        std::string("fused ") + simd::SimdLevelName(config.level) + "/t" +
        std::to_string(config.threads);
    ExpectBitIdentical(baseline, other, what.c_str());
  }
}

}  // namespace
}  // namespace qdb
