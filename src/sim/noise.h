/// \file noise.h
/// \brief Kraus channels and the NoiseModel used by the density-matrix
/// simulator — the stand-in for NISQ hardware noise.

#ifndef QDB_SIM_NOISE_H_
#define QDB_SIM_NOISE_H_

#include <vector>

#include "common/result.h"
#include "linalg/matrix.h"

namespace qdb {

/// \brief A completely-positive trace-preserving map given by Kraus
/// operators {K_k}: ρ → Σ_k K_k ρ K_k†.
class KrausChannel {
 public:
  /// Validates Σ K†K = I within `tol` and wraps the operators. All Kraus
  /// matrices must be square with equal power-of-two dimension.
  static Result<KrausChannel> Create(std::vector<Matrix> kraus_ops,
                                     double tol = 1e-9);

  const std::vector<Matrix>& operators() const { return ops_; }

  /// Number of qubits the channel acts on (log2 of operator dimension).
  int num_qubits() const { return num_qubits_; }

 private:
  KrausChannel(std::vector<Matrix> ops, int num_qubits)
      : ops_(std::move(ops)), num_qubits_(num_qubits) {}

  std::vector<Matrix> ops_;
  int num_qubits_;
};

/// Depolarizing channel: with probability p replace the qubit state by I/2
/// (Kraus: √(1−3p/4)·I, √(p/4)·{X, Y, Z}). Requires p ∈ [0, 1].
Result<KrausChannel> DepolarizingChannel(double p);

/// Amplitude damping with decay probability gamma ∈ [0, 1] (T1-type decay).
Result<KrausChannel> AmplitudeDampingChannel(double gamma);

/// Phase damping with probability lambda ∈ [0, 1] (T2-type dephasing).
Result<KrausChannel> PhaseDampingChannel(double lambda);

/// Bit flip (X) with probability p.
Result<KrausChannel> BitFlipChannel(double p);

/// Phase flip (Z) with probability p.
Result<KrausChannel> PhaseFlipChannel(double p);

/// \brief Noise attached to circuit execution: a 1-qubit channel applied to
/// every operand qubit after each gate (with separate rates for 1-qubit and
/// multi-qubit gates), plus a symmetric readout flip probability.
struct NoiseModel {
  /// Channel applied to the operand of each 1-qubit gate (empty = none).
  std::vector<KrausChannel> after_1q;
  /// Channel applied to every operand of each ≥2-qubit gate (empty = none).
  std::vector<KrausChannel> after_2q;
  /// Probability that a measured bit is reported flipped.
  double readout_flip_probability = 0.0;

  /// True when no channel nor readout error is configured.
  bool IsNoiseless() const {
    return after_1q.empty() && after_2q.empty() &&
           readout_flip_probability == 0.0;
  }

  /// Standard NISQ preset: depolarizing p1 after 1q gates, p2 after 2q
  /// gates, readout flip r.
  static Result<NoiseModel> Depolarizing(double p1, double p2, double r = 0.0);
};

}  // namespace qdb

#endif  // QDB_SIM_NOISE_H_
