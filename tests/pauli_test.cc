// Tests for Pauli strings and Pauli-sum observables.

#include <gtest/gtest.h>

#include "ops/pauli.h"

namespace qdb {
namespace {

TEST(PauliStringTest, ParseValidLabels) {
  auto p = PauliString::Parse("XIZY");
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p.value().num_qubits(), 4);
  EXPECT_EQ(p.value().op(0), PauliOp::kX);
  EXPECT_EQ(p.value().op(1), PauliOp::kI);
  EXPECT_EQ(p.value().op(2), PauliOp::kZ);
  EXPECT_EQ(p.value().op(3), PauliOp::kY);
  EXPECT_EQ(p.value().ToString(), "XIZY");
}

TEST(PauliStringTest, ParseRejectsBadInput) {
  EXPECT_FALSE(PauliString::Parse("").ok());
  EXPECT_FALSE(PauliString::Parse("XQ").ok());
  EXPECT_FALSE(PauliString::Parse("xyz").ok());
}

TEST(PauliStringTest, SingleFactory) {
  PauliString p = PauliString::Single(3, 1, PauliOp::kY);
  EXPECT_EQ(p.ToString(), "IYI");
}

TEST(PauliStringTest, WeightCountsNonIdentity) {
  EXPECT_EQ(PauliString::Parse("IIII").value().Weight(), 0);
  EXPECT_EQ(PauliString::Parse("XYZI").value().Weight(), 3);
}

TEST(PauliStringTest, DiagonalDetection) {
  EXPECT_TRUE(PauliString::Parse("IZZI").value().IsDiagonal());
  EXPECT_FALSE(PauliString::Parse("IXZI").value().IsDiagonal());
  EXPECT_FALSE(PauliString::Parse("YIII").value().IsDiagonal());
}

TEST(PauliStringTest, MatrixOfZZ) {
  Matrix zz = PauliString::Parse("ZZ").value().ToMatrix();
  EXPECT_EQ(zz(0, 0), Complex(1, 0));
  EXPECT_EQ(zz(1, 1), Complex(-1, 0));
  EXPECT_EQ(zz(2, 2), Complex(-1, 0));
  EXPECT_EQ(zz(3, 3), Complex(1, 0));
}

TEST(PauliStringTest, MatrixOfXYIsKron) {
  Matrix expected =
      PauliMatrix(PauliOp::kX).Kron(PauliMatrix(PauliOp::kY));
  EXPECT_TRUE(PauliString::Parse("XY").value().ToMatrix().ApproxEqual(expected));
}

TEST(PauliStringTest, OrderingOperator) {
  auto a = PauliString::Parse("XI").value();
  auto b = PauliString::Parse("XZ").value();
  EXPECT_TRUE(a < b);
  EXPECT_FALSE(b < a);
  EXPECT_TRUE(a == a);
}

TEST(PauliSumTest, AddAndRender) {
  PauliSum h(2);
  h.Add(1.5, "ZZ").Add(-0.5, "XI");
  EXPECT_EQ(h.size(), 2u);
  EXPECT_NE(h.ToString().find("1.5*ZZ"), std::string::npos);
}

TEST(PauliSumTest, SimplifiedCombinesDuplicates) {
  PauliSum h(2);
  h.Add(1.0, "ZZ").Add(2.0, "ZZ").Add(0.5, "XX").Add(-0.5, "XX");
  PauliSum s = h.Simplified();
  ASSERT_EQ(s.size(), 1u);
  EXPECT_NEAR(s.terms()[0].coefficient, 3.0, 1e-12);
  EXPECT_EQ(s.terms()[0].pauli.ToString(), "ZZ");
}

TEST(PauliSumTest, ArithmeticOperators) {
  PauliSum a(1);
  a.Add(1.0, "Z");
  PauliSum b(1);
  b.Add(2.0, "X");
  PauliSum c = (a + b) * 3.0;
  EXPECT_EQ(c.size(), 2u);
  EXPECT_NEAR(c.terms()[0].coefficient, 3.0, 1e-12);
  EXPECT_NEAR(c.terms()[1].coefficient, 6.0, 1e-12);
}

TEST(PauliSumTest, ToMatrixMatchesTermSum) {
  PauliSum h(2);
  h.Add(0.5, "ZI").Add(0.25, "XX").Add(-1.0, "II");
  Matrix expected =
      PauliString::Parse("ZI").value().ToMatrix() * Complex(0.5, 0) +
      PauliString::Parse("XX").value().ToMatrix() * Complex(0.25, 0) +
      Matrix::Identity(4) * Complex(-1.0, 0);
  EXPECT_TRUE(h.ToMatrix().ApproxEqual(expected));
}

TEST(PauliSumTest, DiagonalValuesMatchMatrixDiagonal) {
  PauliSum h(3);
  h.Add(0.7, "ZIZ").Add(-0.2, "IZI").Add(1.1, "III").Add(0.4, "ZZZ");
  ASSERT_TRUE(h.IsDiagonal());
  auto diag = h.DiagonalValues();
  ASSERT_TRUE(diag.ok());
  Matrix m = h.ToMatrix();
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(diag.value()[i], m(i, i).real(), 1e-12) << i;
  }
}

TEST(PauliSumTest, DiagonalValuesRejectsOffDiagonal) {
  PauliSum h(1);
  h.Add(1.0, "X");
  EXPECT_FALSE(h.DiagonalValues().ok());
}

TEST(PauliSumTest, IsDiagonalAggregates) {
  PauliSum h(2);
  h.Add(1.0, "ZZ");
  EXPECT_TRUE(h.IsDiagonal());
  h.Add(1.0, "XI");
  EXPECT_FALSE(h.IsDiagonal());
}

TEST(PauliMatrixTest, AllFourMatrices) {
  EXPECT_TRUE(PauliMatrix(PauliOp::kI).ApproxEqual(Matrix::Identity(2)));
  Matrix x = PauliMatrix(PauliOp::kX);
  Matrix y = PauliMatrix(PauliOp::kY);
  Matrix z = PauliMatrix(PauliOp::kZ);
  // XY = iZ.
  EXPECT_TRUE((x * y).ApproxEqual(z * Complex(0, 1)));
  // Each squares to identity.
  EXPECT_TRUE((x * x).ApproxEqual(Matrix::Identity(2)));
  EXPECT_TRUE((y * y).ApproxEqual(Matrix::Identity(2)));
  EXPECT_TRUE((z * z).ApproxEqual(Matrix::Identity(2)));
}

}  // namespace
}  // namespace qdb
