/// \file join_order_dp.h
/// \brief Exact join-order optimization by dynamic programming over
/// relation subsets — the classical optimal baselines of E7.

#ifndef QDB_DB_JOIN_ORDER_DP_H_
#define QDB_DB_JOIN_ORDER_DP_H_

#include <vector>

#include "common/result.h"
#include "db/cost_model.h"
#include "db/query_graph.h"

namespace qdb {

/// \brief Result of an exact plan search.
struct DpPlanResult {
  double cost = 0.0;            ///< Optimal C_out.
  std::vector<int> order;       ///< Left-deep order (left-deep DP only).
  long subproblems = 0;         ///< DP table entries filled.
};

/// \brief Optimal left-deep plan by Selinger-style DP over subsets
/// (n ≤ 20). Cross products are allowed so every permutation is feasible —
/// the same search space the QUBO encodes.
Result<DpPlanResult> OptimalLeftDeepPlan(const JoinQueryGraph& graph);

/// \brief Optimal bushy plan cost by DPsub over connected complements
/// (n ≤ 16); cross products allowed when the graph is disconnected.
Result<double> OptimalBushyCost(const JoinQueryGraph& graph);

}  // namespace qdb

#endif  // QDB_DB_JOIN_ORDER_DP_H_
