#include "circuit/qasm.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <sstream>
#include <tuple>
#include <vector>

#include "common/strings.h"

namespace qdb {
namespace {

/// Shortest decimal string that round-trips the double exactly.
std::string Angle(const ParamExpr& p) {
  QDB_CHECK(p.is_constant());
  char buffer[32];
  auto [end, ec] = std::to_chars(buffer, buffer + sizeof(buffer), p.offset);
  QDB_CHECK(ec == std::errc());
  return std::string(buffer, end);
}

std::string Q(int qubit) { return StrCat("q[", qubit, "]"); }

/// Emits one gate; returns false if the gate cannot be represented.
Status EmitGate(const Gate& g, std::ostringstream& os) {
  const auto& q = g.qubits;
  switch (g.type) {
    case GateType::kI:
      os << "id " << Q(q[0]) << ";\n";
      return Status::OK();
    case GateType::kX:
    case GateType::kY:
    case GateType::kZ:
    case GateType::kH:
    case GateType::kS:
    case GateType::kSdg:
    case GateType::kT:
    case GateType::kTdg:
    case GateType::kSX:
      os << GateTypeName(g.type) << " " << Q(q[0]) << ";\n";
      return Status::OK();
    case GateType::kRX:
    case GateType::kRY:
    case GateType::kRZ:
      os << GateTypeName(g.type) << "(" << Angle(g.params[0]) << ") "
         << Q(q[0]) << ";\n";
      return Status::OK();
    case GateType::kPhase:
      // qelib1's u1 is the phase gate.
      os << "u1(" << Angle(g.params[0]) << ") " << Q(q[0]) << ";\n";
      return Status::OK();
    case GateType::kU:
      os << "u3(" << Angle(g.params[0]) << "," << Angle(g.params[1]) << ","
         << Angle(g.params[2]) << ") " << Q(q[0]) << ";\n";
      return Status::OK();
    case GateType::kCX:
    case GateType::kCY:
    case GateType::kCZ:
    case GateType::kCH:
      os << GateTypeName(g.type) << " " << Q(q[0]) << "," << Q(q[1]) << ";\n";
      return Status::OK();
    case GateType::kSwap:
      os << "swap " << Q(q[0]) << "," << Q(q[1]) << ";\n";
      return Status::OK();
    case GateType::kCRX:
    case GateType::kCRY:
    case GateType::kCRZ:
      os << GateTypeName(g.type) << "(" << Angle(g.params[0]) << ") "
         << Q(q[0]) << "," << Q(q[1]) << ";\n";
      return Status::OK();
    case GateType::kCPhase:
      os << "cu1(" << Angle(g.params[0]) << ") " << Q(q[0]) << "," << Q(q[1])
         << ";\n";
      return Status::OK();
    case GateType::kRXX:
      os << "rxx(" << Angle(g.params[0]) << ") " << Q(q[0]) << "," << Q(q[1])
         << ";\n";
      return Status::OK();
    case GateType::kRZZ:
      os << "rzz(" << Angle(g.params[0]) << ") " << Q(q[0]) << "," << Q(q[1])
         << ";\n";
      return Status::OK();
    case GateType::kRYY:
      // qelib1 lacks ryy; use the standard RX-conjugated RZZ identity:
      // RYY(θ) = (RX(π/2)⊗RX(π/2)) RZZ(θ) (RX(−π/2)⊗RX(−π/2)).
      os << "rx(pi/2) " << Q(q[0]) << ";\nrx(pi/2) " << Q(q[1]) << ";\n"
         << "rzz(" << Angle(g.params[0]) << ") " << Q(q[0]) << "," << Q(q[1])
         << ";\n"
         << "rx(-pi/2) " << Q(q[0]) << ";\nrx(-pi/2) " << Q(q[1]) << ";\n";
      return Status::OK();
    case GateType::kCCX:
      os << "ccx " << Q(q[0]) << "," << Q(q[1]) << "," << Q(q[2]) << ";\n";
      return Status::OK();
    case GateType::kCSwap:
      os << "cswap " << Q(q[0]) << "," << Q(q[1]) << "," << Q(q[2]) << ";\n";
      return Status::OK();
    case GateType::kMCX: {
      const size_t controls = q.size() - 1;
      if (controls == 1) {
        os << "cx " << Q(q[0]) << "," << Q(q[1]) << ";\n";
        return Status::OK();
      }
      if (controls == 2) {
        os << "ccx " << Q(q[0]) << "," << Q(q[1]) << "," << Q(q[2]) << ";\n";
        return Status::OK();
      }
      return Status::Unimplemented(
          StrCat("OpenQASM 2 export of mcx with ", controls, " controls"));
    }
    case GateType::kMCZ: {
      const size_t controls = q.size() - 1;
      if (controls == 1) {
        os << "cz " << Q(q[0]) << "," << Q(q[1]) << ";\n";
        return Status::OK();
      }
      if (controls == 2) {
        // CCZ = H(target) CCX H(target).
        os << "h " << Q(q[2]) << ";\nccx " << Q(q[0]) << "," << Q(q[1]) << ","
           << Q(q[2]) << ";\nh " << Q(q[2]) << ";\n";
        return Status::OK();
      }
      return Status::Unimplemented(
          StrCat("OpenQASM 2 export of mcz with ", controls, " controls"));
    }
  }
  return Status::Internal("unhandled gate type");
}

}  // namespace

namespace {

/// Parses one angle token: [−]?(number | pi)(/number)? (the grammar this
/// exporter emits).
Result<double> ParseAngle(std::string token) {
  double sign = 1.0;
  if (!token.empty() && token[0] == '-') {
    sign = -1.0;
    token = token.substr(1);
  }
  double denominator = 1.0;
  const size_t slash = token.find('/');
  if (slash != std::string::npos) {
    try {
      denominator = std::stod(token.substr(slash + 1));
    } catch (...) {
      return Status::InvalidArgument(StrCat("bad angle denominator: ", token));
    }
    token = token.substr(0, slash);
  }
  double numerator;
  if (token == "pi") {
    numerator = M_PI;
  } else {
    try {
      size_t used = 0;
      numerator = std::stod(token, &used);
      if (used != token.size()) {
        return Status::InvalidArgument(StrCat("bad angle: ", token));
      }
    } catch (...) {
      return Status::InvalidArgument(StrCat("bad angle: ", token));
    }
  }
  if (denominator == 0.0) {
    return Status::InvalidArgument("zero angle denominator");
  }
  return sign * numerator / denominator;
}

/// Splits "a,b,c" on commas, trimming blanks.
std::vector<std::string> SplitList(const std::string& text) {
  std::vector<std::string> out;
  std::string current;
  for (char c : text) {
    if (c == ',') {
      out.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current.push_back(c);
    }
  }
  if (!current.empty()) out.push_back(current);
  return out;
}

Result<int> ParseQubitRef(const std::string& token) {
  // Expect q[<index>].
  if (token.size() < 4 || token.substr(0, 2) != "q[" || token.back() != ']') {
    return Status::InvalidArgument(StrCat("bad qubit reference: ", token));
  }
  try {
    return std::stoi(token.substr(2, token.size() - 3));
  } catch (...) {
    return Status::InvalidArgument(StrCat("bad qubit index: ", token));
  }
}

Status ApplyParsedGate(Circuit& circuit, const std::string& name,
                       const DVector& angles, const std::vector<int>& qubits) {
  auto expect = [&](size_t nq, size_t na) -> Status {
    if (qubits.size() != nq || angles.size() != na) {
      return Status::InvalidArgument(
          StrCat("gate '", name, "' expects ", nq, " qubits and ", na,
                 " angles"));
    }
    return Status::OK();
  };
  if (name == "id") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.I(qubits[0]); return Status::OK(); }
  if (name == "x") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.X(qubits[0]); return Status::OK(); }
  if (name == "y") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.Y(qubits[0]); return Status::OK(); }
  if (name == "z") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.Z(qubits[0]); return Status::OK(); }
  if (name == "h") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.H(qubits[0]); return Status::OK(); }
  if (name == "s") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.S(qubits[0]); return Status::OK(); }
  if (name == "sdg") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.Sdg(qubits[0]); return Status::OK(); }
  if (name == "t") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.T(qubits[0]); return Status::OK(); }
  if (name == "tdg") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.Tdg(qubits[0]); return Status::OK(); }
  if (name == "sx") { QDB_RETURN_IF_ERROR(expect(1, 0)); circuit.SX(qubits[0]); return Status::OK(); }
  if (name == "rx") { QDB_RETURN_IF_ERROR(expect(1, 1)); circuit.RX(qubits[0], angles[0]); return Status::OK(); }
  if (name == "ry") { QDB_RETURN_IF_ERROR(expect(1, 1)); circuit.RY(qubits[0], angles[0]); return Status::OK(); }
  if (name == "rz") { QDB_RETURN_IF_ERROR(expect(1, 1)); circuit.RZ(qubits[0], angles[0]); return Status::OK(); }
  if (name == "u1" || name == "p") { QDB_RETURN_IF_ERROR(expect(1, 1)); circuit.P(qubits[0], angles[0]); return Status::OK(); }
  if (name == "u3" || name == "u") {
    QDB_RETURN_IF_ERROR(expect(1, 3));
    circuit.U(qubits[0], ParamExpr::Constant(angles[0]),
              ParamExpr::Constant(angles[1]), ParamExpr::Constant(angles[2]));
    return Status::OK();
  }
  if (name == "cx") { QDB_RETURN_IF_ERROR(expect(2, 0)); circuit.CX(qubits[0], qubits[1]); return Status::OK(); }
  if (name == "cy") { QDB_RETURN_IF_ERROR(expect(2, 0)); circuit.CY(qubits[0], qubits[1]); return Status::OK(); }
  if (name == "cz") { QDB_RETURN_IF_ERROR(expect(2, 0)); circuit.CZ(qubits[0], qubits[1]); return Status::OK(); }
  if (name == "ch") { QDB_RETURN_IF_ERROR(expect(2, 0)); circuit.CH(qubits[0], qubits[1]); return Status::OK(); }
  if (name == "swap") { QDB_RETURN_IF_ERROR(expect(2, 0)); circuit.Swap(qubits[0], qubits[1]); return Status::OK(); }
  if (name == "crx") { QDB_RETURN_IF_ERROR(expect(2, 1)); circuit.CRX(qubits[0], qubits[1], angles[0]); return Status::OK(); }
  if (name == "cry") { QDB_RETURN_IF_ERROR(expect(2, 1)); circuit.CRY(qubits[0], qubits[1], angles[0]); return Status::OK(); }
  if (name == "crz") { QDB_RETURN_IF_ERROR(expect(2, 1)); circuit.CRZ(qubits[0], qubits[1], angles[0]); return Status::OK(); }
  if (name == "cu1" || name == "cp") { QDB_RETURN_IF_ERROR(expect(2, 1)); circuit.CP(qubits[0], qubits[1], angles[0]); return Status::OK(); }
  if (name == "rxx") { QDB_RETURN_IF_ERROR(expect(2, 1)); circuit.RXX(qubits[0], qubits[1], angles[0]); return Status::OK(); }
  if (name == "ryy") { QDB_RETURN_IF_ERROR(expect(2, 1)); circuit.RYY(qubits[0], qubits[1], angles[0]); return Status::OK(); }
  if (name == "rzz") { QDB_RETURN_IF_ERROR(expect(2, 1)); circuit.RZZ(qubits[0], qubits[1], angles[0]); return Status::OK(); }
  if (name == "ccx") { QDB_RETURN_IF_ERROR(expect(3, 0)); circuit.CCX(qubits[0], qubits[1], qubits[2]); return Status::OK(); }
  if (name == "cswap") { QDB_RETURN_IF_ERROR(expect(3, 0)); circuit.CSwap(qubits[0], qubits[1], qubits[2]); return Status::OK(); }
  if (name == "barrier" || name == "gate" || name == "if") {
    return Status::Unimplemented(StrCat("QASM statement '", name, "'"));
  }
  return Status::InvalidArgument(StrCat("unknown gate '", name, "'"));
}

}  // namespace

Result<Circuit> ParseQasm(const std::string& source) {
  std::istringstream lines(source);
  std::string line;
  int num_qubits = -1;
  std::vector<std::tuple<std::string, DVector, std::vector<int>>> pending;

  while (std::getline(lines, line)) {
    // Strip comments and whitespace.
    const size_t comment = line.find("//");
    if (comment != std::string::npos) line = line.substr(0, comment);
    size_t start = line.find_first_not_of(" \t\r");
    if (start == std::string::npos) continue;
    size_t end = line.find_last_not_of(" \t\r");
    line = line.substr(start, end - start + 1);
    if (line.empty()) continue;
    if (line.back() != ';') {
      return Status::InvalidArgument(StrCat("missing ';': ", line));
    }
    line.pop_back();

    if (line.rfind("OPENQASM", 0) == 0 || line.rfind("include", 0) == 0 ||
        line.rfind("creg", 0) == 0 || line.rfind("measure", 0) == 0) {
      continue;
    }
    if (line.rfind("qreg", 0) == 0) {
      const size_t lb = line.find('[');
      const size_t rb = line.find(']');
      if (lb == std::string::npos || rb == std::string::npos || rb <= lb) {
        return Status::InvalidArgument(StrCat("bad qreg: ", line));
      }
      try {
        num_qubits = std::stoi(line.substr(lb + 1, rb - lb - 1));
      } catch (...) {
        return Status::InvalidArgument(StrCat("bad qreg size: ", line));
      }
      continue;
    }

    // Gate statement: name[(angles)] operands.
    std::string name, angle_text, operand_text;
    const size_t paren = line.find('(');
    if (paren != std::string::npos) {
      const size_t close = line.find(')', paren);
      if (close == std::string::npos) {
        return Status::InvalidArgument(StrCat("unbalanced '(': ", line));
      }
      name = line.substr(0, paren);
      angle_text = line.substr(paren + 1, close - paren - 1);
      operand_text = line.substr(close + 1);
    } else {
      const size_t space = line.find_first_of(" \t");
      if (space == std::string::npos) {
        return Status::InvalidArgument(StrCat("bad gate statement: ", line));
      }
      name = line.substr(0, space);
      operand_text = line.substr(space + 1);
    }
    DVector angles;
    if (!angle_text.empty()) {
      for (const auto& token : SplitList(angle_text)) {
        QDB_ASSIGN_OR_RETURN(double angle, ParseAngle(token));
        angles.push_back(angle);
      }
    }
    std::vector<int> qubits;
    for (const auto& token : SplitList(operand_text)) {
      QDB_ASSIGN_OR_RETURN(int q, ParseQubitRef(token));
      qubits.push_back(q);
    }
    pending.emplace_back(name, std::move(angles), std::move(qubits));
  }

  if (num_qubits <= 0) {
    return Status::InvalidArgument("no qreg declaration found");
  }
  Circuit circuit(num_qubits);
  for (const auto& [name, angles, qubits] : pending) {
    for (int q : qubits) {
      if (q < 0 || q >= num_qubits) {
        return Status::OutOfRange(StrCat("qubit ", q, " out of range"));
      }
    }
    QDB_RETURN_IF_ERROR(ApplyParsedGate(circuit, name, angles, qubits));
  }
  return circuit;
}

Result<std::string> ToQasm(const Circuit& circuit, bool measure_all) {
  if (circuit.num_parameters() > 0) {
    return Status::FailedPrecondition(
        "OpenQASM 2 export requires a fully bound circuit; call Bind() first");
  }
  std::ostringstream os;
  os << "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  os << "qreg q[" << circuit.num_qubits() << "];\n";
  if (measure_all) os << "creg c[" << circuit.num_qubits() << "];\n";
  for (const auto& gate : circuit.gates()) {
    QDB_RETURN_IF_ERROR(EmitGate(gate, os));
  }
  if (measure_all) os << "measure q -> c;\n";
  return os.str();
}

}  // namespace qdb
