// Tests for the SMO support-vector machine.

#include <gtest/gtest.h>

#include <cmath>

#include "classical/metrics.h"
#include "classical/svm.h"
#include "kernel/quantum_kernel.h"

namespace qdb {
namespace {

Dataset SeparableData(int n, Rng& rng) {
  return MakeBlobs(n, 2, /*separation=*/4.0, /*stddev=*/0.4, rng);
}

double TrainAccuracy(const Svm& svm, const Dataset& data) {
  std::vector<int> preds;
  for (const auto& x : data.features) {
    auto p = svm.Predict(x);
    EXPECT_TRUE(p.ok());
    preds.push_back(p.value());
  }
  return Accuracy(data.labels, preds);
}

TEST(SvmTest, LinearSeparableReaches100Percent) {
  Rng rng(3);
  Dataset data = SeparableData(40, rng);
  SvmOptions opts;
  opts.kernel = SvmKernel::kLinear;
  opts.c = 10.0;
  auto svm = Svm::Train(data, opts);
  ASSERT_TRUE(svm.ok()) << svm.status();
  EXPECT_NEAR(TrainAccuracy(svm.value(), data), 1.0, 1e-12);
  EXPECT_GT(svm.value().NumSupportVectors(), 0);
}

TEST(SvmTest, RbfSolvesCircles) {
  Rng rng(5);
  Dataset data = MakeCircles(60, 0.05, 0.5, rng);
  SvmOptions opts;
  opts.kernel = SvmKernel::kRbf;
  opts.gamma = 2.0;
  opts.c = 10.0;
  auto svm = Svm::Train(data, opts);
  ASSERT_TRUE(svm.ok());
  EXPECT_GE(TrainAccuracy(svm.value(), data), 0.9);
}

TEST(SvmTest, LinearCannotSolveCircles) {
  Rng rng(5);
  Dataset data = MakeCircles(60, 0.05, 0.5, rng);
  SvmOptions opts;
  opts.kernel = SvmKernel::kLinear;
  auto svm = Svm::Train(data, opts);
  ASSERT_TRUE(svm.ok());
  EXPECT_LE(TrainAccuracy(svm.value(), data), 0.8);
}

TEST(SvmTest, PrecomputedKernelMatchesRbf) {
  Rng rng(7);
  Dataset data = SeparableData(30, rng);
  const double gamma = 1.5;
  // Build the RBF Gram matrix manually.
  const size_t n = data.size();
  Matrix gram(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      double d2 = 0.0;
      for (size_t f = 0; f < data.features[i].size(); ++f) {
        const double d = data.features[i][f] - data.features[j][f];
        d2 += d * d;
      }
      gram(i, j) = Complex(std::exp(-gamma * d2), 0.0);
    }
  }
  SvmOptions pre_opts;
  pre_opts.kernel = SvmKernel::kPrecomputed;
  pre_opts.c = 5.0;
  auto pre_svm = Svm::Train(data, pre_opts, &gram);
  ASSERT_TRUE(pre_svm.ok());

  SvmOptions rbf_opts;
  rbf_opts.kernel = SvmKernel::kRbf;
  rbf_opts.gamma = gamma;
  rbf_opts.c = 5.0;
  auto rbf_svm = Svm::Train(data, rbf_opts);
  ASSERT_TRUE(rbf_svm.ok());

  // Predictions on the training set via kernel rows must match the direct
  // RBF path (same kernel, same data, same seed → same SMO trajectory).
  for (size_t i = 0; i < n; ++i) {
    DVector row(n);
    for (size_t j = 0; j < n; ++j) row[j] = gram(i, j).real();
    auto direct = rbf_svm.value().Predict(data.features[i]);
    ASSERT_TRUE(direct.ok());
    EXPECT_EQ(pre_svm.value().PredictFromKernelRow(row), direct.value());
  }
}

TEST(SvmTest, QuantumKernelPipeline) {
  // Smoke test of the E3 pipeline: angle kernel + precomputed SVM.
  Rng rng(9);
  Dataset data = MakeBlobs(24, 2, 3.0, 0.3, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  FidelityQuantumKernel kernel = MakeAngleKernel();
  auto gram = kernel.GramMatrix(data.features);
  ASSERT_TRUE(gram.ok());
  SvmOptions opts;
  opts.kernel = SvmKernel::kPrecomputed;
  opts.c = 10.0;
  auto svm = Svm::Train(data, opts, &gram.value());
  ASSERT_TRUE(svm.ok());
  int correct = 0;
  for (size_t i = 0; i < data.size(); ++i) {
    DVector row(data.size());
    for (size_t j = 0; j < data.size(); ++j) {
      row[j] = gram.value()(i, j).real();
    }
    if (svm.value().PredictFromKernelRow(row) == data.labels[i]) ++correct;
  }
  EXPECT_GE(correct, static_cast<int>(data.size() * 0.9));
}

TEST(SvmTest, InputValidation) {
  Dataset tiny;
  tiny.features = {{0.0}};
  tiny.labels = {1};
  EXPECT_FALSE(Svm::Train(tiny, {}).ok());  // Too few samples.

  Rng rng(1);
  Dataset one_class = MakeBlobs(10, 2, 2.0, 0.3, rng);
  for (auto& y : one_class.labels) y = 1;
  EXPECT_FALSE(Svm::Train(one_class, {}).ok());  // Single class.

  Dataset bad_labels = MakeBlobs(10, 2, 2.0, 0.3, rng);
  bad_labels.labels[0] = 3;
  EXPECT_FALSE(Svm::Train(bad_labels, {}).ok());

  Dataset ok_data = MakeBlobs(10, 2, 2.0, 0.3, rng);
  SvmOptions pre;
  pre.kernel = SvmKernel::kPrecomputed;
  EXPECT_FALSE(Svm::Train(ok_data, pre).ok());  // Missing Gram.
  Matrix wrong(3, 3);
  EXPECT_FALSE(Svm::Train(ok_data, pre, &wrong).ok());  // Wrong shape.

  SvmOptions bad_c;
  bad_c.c = 0.0;
  EXPECT_FALSE(Svm::Train(ok_data, bad_c).ok());
}

TEST(SvmTest, PrecomputedRejectsRawPredict) {
  Rng rng(11);
  Dataset data = MakeBlobs(10, 2, 3.0, 0.3, rng);
  Matrix gram(10, 10);
  for (int i = 0; i < 10; ++i) gram(i, i) = Complex(1, 0);
  SvmOptions opts;
  opts.kernel = SvmKernel::kPrecomputed;
  auto svm = Svm::Train(data, opts, &gram);
  ASSERT_TRUE(svm.ok());
  EXPECT_FALSE(svm.value().Predict(data.features[0]).ok());
}

}  // namespace
}  // namespace qdb
