#include "obs/obs.h"

#include <cstdio>

#include "common/strings.h"

namespace qdb {
namespace obs {

std::string SummaryText() { return MetricsRegistry::Global().ExportText(); }

Status WriteMetricsJson(const std::string& path) {
  const std::string json = MetricsRegistry::Global().ExportJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::InvalidArgument(StrCat("cannot open ", path, " for write"));
  }
  const size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const int close_rc = std::fclose(f);
  if (written != json.size() || close_rc != 0) {
    return Status::Internal(StrCat("short write to ", path));
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace qdb
