file(REMOVE_RECURSE
  "CMakeFiles/tfim_phase_scan.dir/tfim_phase_scan.cpp.o"
  "CMakeFiles/tfim_phase_scan.dir/tfim_phase_scan.cpp.o.d"
  "tfim_phase_scan"
  "tfim_phase_scan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tfim_phase_scan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
