#include "autodiff/adjoint.h"

#include <cmath>

#include "common/strings.h"
#include "sim/state_vector.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

/// t = P·in for a Pauli string given as bit masks (qubit 0 = MSB):
/// P|i⟩ = phase(i)|i ^ xmask⟩ with the Y/Z sign bookkeeping of
/// sim/statevector_simulator.cc.
CVector ApplyPauliMasks(const CVector& in, uint64_t xmask, uint64_t ymask,
                        uint64_t zmask) {
  Complex i_power(1.0, 0.0);
  switch (__builtin_popcountll(ymask) & 3) {
    case 0: i_power = {1.0, 0.0}; break;
    case 1: i_power = {0.0, 1.0}; break;
    case 2: i_power = {-1.0, 0.0}; break;
    case 3: i_power = {0.0, -1.0}; break;
  }
  CVector out(in.size(), Complex(0.0, 0.0));
  for (uint64_t i = 0; i < in.size(); ++i) {
    const int sign =
        (__builtin_popcountll(i & ymask) + __builtin_popcountll(i & zmask)) & 1;
    out[i ^ xmask] = i_power * (sign ? -1.0 : 1.0) * in[i];
  }
  return out;
}

void PauliStringMasks(const PauliString& pauli, uint64_t* xmask,
                      uint64_t* ymask, uint64_t* zmask) {
  const int n = pauli.num_qubits();
  *xmask = *ymask = *zmask = 0;
  for (int q = 0; q < n; ++q) {
    const uint64_t bit = uint64_t{1} << (n - 1 - q);
    switch (pauli.op(q)) {
      case PauliOp::kI: break;
      case PauliOp::kX: *xmask |= bit; break;
      case PauliOp::kY: *xmask |= bit; *ymask |= bit; break;
      case PauliOp::kZ: *zmask |= bit; break;
    }
  }
}

/// φ = H·ψ for a Pauli-sum observable.
CVector ApplyObservable(const PauliSum& observable, const CVector& psi) {
  CVector phi(psi.size(), Complex(0.0, 0.0));
  for (const auto& term : observable.terms()) {
    uint64_t xm, ym, zm;
    PauliStringMasks(term.pauli, &xm, &ym, &zm);
    CVector t = ApplyPauliMasks(psi, xm, ym, zm);
    for (size_t i = 0; i < phi.size(); ++i) {
      phi[i] += term.coefficient * t[i];
    }
  }
  return phi;
}

Complex InnerOf(const CVector& a, const CVector& b) {
  Complex acc(0.0, 0.0);
  for (size_t i = 0; i < a.size(); ++i) acc += std::conj(a[i]) * b[i];
  return acc;
}

/// Single-qubit bit mask for `qubit` in an n-qubit register.
uint64_t BitOf(int n, int qubit) { return uint64_t{1} << (n - 1 - qubit); }

/// ⟨φ| G |ψ⟩ for the gate's generator written as e^{−i·angle·G}; returns
/// the contribution via grad_angle = 2·Im⟨φ|G|ψ⟩.
Result<double> GeneratorGradient(const Gate& gate, int n, const CVector& psi,
                                 const CVector& phi) {
  auto pauli_grad = [&](uint64_t xm, uint64_t ym, uint64_t zm) {
    // G = P/2 ⇒ 2·Im⟨φ|G|ψ⟩ = Im⟨φ|P|ψ⟩.
    CVector t = ApplyPauliMasks(psi, xm, ym, zm);
    return InnerOf(phi, t).imag();
  };
  switch (gate.type) {
    case GateType::kRX:
      return pauli_grad(BitOf(n, gate.qubits[0]), 0, 0);
    case GateType::kRY: {
      const uint64_t bit = BitOf(n, gate.qubits[0]);
      return pauli_grad(bit, bit, 0);
    }
    case GateType::kRZ:
      return pauli_grad(0, 0, BitOf(n, gate.qubits[0]));
    case GateType::kRXX:
      return pauli_grad(BitOf(n, gate.qubits[0]) | BitOf(n, gate.qubits[1]),
                        0, 0);
    case GateType::kRYY: {
      const uint64_t bits =
          BitOf(n, gate.qubits[0]) | BitOf(n, gate.qubits[1]);
      return pauli_grad(bits, bits, 0);
    }
    case GateType::kRZZ:
      return pauli_grad(0, 0,
                        BitOf(n, gate.qubits[0]) | BitOf(n, gate.qubits[1]));
    case GateType::kPhase:
    case GateType::kCPhase: {
      // U = e^{+iλΠ} with Π projecting onto all-ones of the operands:
      // ∂E = 2·Re⟨φ|iΠψ⟩ = −2·Im⟨φ|Πψ⟩.
      uint64_t mask = 0;
      for (int q : gate.qubits) mask |= BitOf(n, q);
      Complex acc(0.0, 0.0);
      for (uint64_t i = 0; i < psi.size(); ++i) {
        if ((i & mask) == mask) acc += std::conj(phi[i]) * psi[i];
      }
      return -2.0 * acc.imag();
    }
    case GateType::kCRX:
    case GateType::kCRY:
    case GateType::kCRZ: {
      // U = e^{−iθ(Π_c ⊗ P_t)/2}: grad = Im⟨φ|(Π_c ⊗ P_t)ψ⟩.
      const uint64_t cmask = BitOf(n, gate.qubits[0]);
      const uint64_t tbit = BitOf(n, gate.qubits[1]);
      uint64_t xm = 0, ym = 0, zm = 0;
      if (gate.type == GateType::kCRX) xm = tbit;
      if (gate.type == GateType::kCRY) { xm = tbit; ym = tbit; }
      if (gate.type == GateType::kCRZ) zm = tbit;
      // Project onto control = 1 before applying the target Pauli.
      CVector projected(psi.size(), Complex(0.0, 0.0));
      for (uint64_t i = 0; i < psi.size(); ++i) {
        if (i & cmask) projected[i] = psi[i];
      }
      CVector t = ApplyPauliMasks(projected, xm, ym, zm);
      return InnerOf(phi, t).imag();
    }
    default:
      return Status::Unimplemented(
          StrCat("adjoint gradient for gate '", GateTypeName(gate.type),
                 "' with symbolic parameters"));
  }
}

}  // namespace

Result<AdjointResult> AdjointGradient(const Circuit& circuit,
                                      const PauliSum& observable,
                                      const DVector& params) {
  if (observable.num_qubits() != circuit.num_qubits()) {
    return Status::InvalidArgument("observable width mismatch");
  }
  if (static_cast<int>(params.size()) < circuit.num_parameters()) {
    return Status::InvalidArgument("too few parameters bound");
  }
  const int n = circuit.num_qubits();
  StateVectorSimulator sim;

  // Forward pass.
  StateVector psi(n);
  QDB_RETURN_IF_ERROR(sim.RunInPlace(circuit, psi, params));

  AdjointResult result;
  result.gradient.assign(
      std::max<size_t>(params.size(), circuit.num_parameters()), 0.0);

  // φ = H ψ; E = ⟨ψ|φ⟩.
  CVector psi_amps = psi.ToAmplitudes();
  CVector phi_amps = ApplyObservable(observable, psi_amps);
  result.value = InnerOf(psi_amps, phi_amps).real();
  auto phi_sv = StateVector(n);
  phi_sv.SetAmplitudes(phi_amps);  // Not unit norm; kernels are linear so
                                   // this is fine.

  // Backward pass.
  for (int k = static_cast<int>(circuit.size()) - 1; k >= 0; --k) {
    const Gate& gate = circuit.gates()[k];
    DVector angles = circuit.EvaluateAngles(k, params);

    // Gradient contribution at ψ_k (before rewinding this gate).
    for (size_t slot = 0; slot < gate.params.size(); ++slot) {
      const ParamExpr& expr = gate.params[slot];
      if (expr.is_constant() || expr.multiplier == 0.0) continue;
      QDB_ASSIGN_OR_RETURN(
          double dangle,
          GeneratorGradient(gate, n, psi.ToAmplitudes(), phi_sv.ToAmplitudes()));
      result.gradient[expr.index] += expr.multiplier * dangle;
      // All supported gates have exactly one angle slot, and the generator
      // gradient above is with respect to that angle.
      (void)slot;
    }

    // Rewind ψ and φ through U_k†.
    Circuit single(n);
    Gate bound = gate;
    for (size_t s = 0; s < bound.params.size(); ++s) {
      bound.params[s] = ParamExpr::Constant(angles[s]);
    }
    single.Append(bound);
    Circuit inverse = single.Inverse();
    for (size_t gi = 0; gi < inverse.gates().size(); ++gi) {
      DVector inv_angles = inverse.EvaluateAngles(gi, {});
      QDB_RETURN_IF_ERROR(sim.ApplyGate(inverse.gates()[gi], inv_angles, psi));
      QDB_RETURN_IF_ERROR(
          sim.ApplyGate(inverse.gates()[gi], inv_angles, phi_sv));
    }
  }
  return result;
}

}  // namespace qdb
