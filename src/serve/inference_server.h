/// \file inference_server.h
/// \brief The serving runtime: a bounded request queue, dispatcher threads
/// that coalesce compatible requests into micro-batches, admission control,
/// per-request deadlines, and a result cache.
///
/// Request lifecycle:
///
///   Submit ──▶ admission (resolve model, validate input, cache lookup,
///              queue-capacity check — overflow fails fast with
///              kUnavailable) ──▶ bounded queue ──▶ dispatcher pops a
///              leader, coalesces every queued request for the same
///              (model version, request kind) for up to max_wait_us or
///              max_batch_size ──▶ expired requests are cancelled with
///              kDeadlineExceeded before touching the simulator ──▶ one
///              ServableModel::RunBatch executes the whole micro-batch ──▶
///              promises resolve, results enter the cache.
///
/// Batching invariant: a micro-batch only ever contains requests for one
/// servable (one model version) and one request kind, so the whole batch is
/// B parameter bindings of the same compiled circuit (or B points of one
/// CrossFromEncoded call). Dispatchers are dedicated threads — not pool
/// workers — so the batch execution itself still fans out across the shared
/// qdb::ThreadPool.
///
/// Shutdown is a graceful drain: admission stops (new Submits get
/// kUnavailable), dispatchers finish everything already queued, then join.
///
/// Resilience: batch execution is retried under ServerOptions::retry for
/// transient (kUnavailable) failures, with deadline-aware backoff — a
/// request whose deadline cannot survive the next sleep resolves with
/// kDeadlineExceeded immediately. A per-servable circuit breaker
/// (fault/circuit_breaker.h) sheds load for a model whose batches keep
/// failing, and the degradation ladder kicks in under breaker-open or
/// queue pressure: bounded-staleness cache serving, shrunken coalescing
/// windows, and (inside ServableModel) compiled→interpreted fallback.

#ifndef QDB_SERVE_INFERENCE_SERVER_H_
#define QDB_SERVE_INFERENCE_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "fault/circuit_breaker.h"
#include "obs/slo.h"
#include "obs/trace.h"
#include "serve/model_registry.h"
#include "serve/result_cache.h"
#include "serve/servable.h"

namespace qdb {
namespace serve {

/// \brief Serving-runtime knobs.
struct ServerOptions {
  /// Maximum queued (admitted, not yet executing) requests; Submit beyond
  /// this fails with kUnavailable.
  size_t queue_capacity = 256;
  /// Largest micro-batch a dispatcher will coalesce.
  size_t max_batch_size = 16;
  /// How long a dispatcher holds an under-full batch open waiting for
  /// compatible requests, measured from when the leader was popped.
  long max_wait_us = 200;
  /// Dispatcher threads. One is enough for most workloads (execution fans
  /// out across the ThreadPool regardless); more reduce head-of-line
  /// blocking across models.
  int num_dispatchers = 1;
  /// Result-cache entries; 0 disables the cache.
  size_t result_cache_capacity = 1024;

  /// Batch-execution retry for transient failures (default: retry
  /// kUnavailable up to 4 attempts with jittered exponential backoff).
  RetryPolicy retry;
  /// Seed for the backoff-jitter streams (per-batch streams are derived
  /// from it, so retry schedules are deterministic for a fixed seed).
  uint64_t retry_jitter_seed = 0x7E575EEDull;

  /// Per-servable circuit breakers on the admission path.
  bool enable_breaker = true;
  fault::CircuitBreakerOptions breaker;

  /// Fresh-path cache TTL: entries older than this are only eligible for
  /// degraded (stale) serving. 0 = cache entries never go stale, which
  /// also disables stale serving (the fresh path already returns them).
  long result_cache_ttl_us = 0;
  /// Staleness bound for degraded serving under breaker-open or queue
  /// pressure; 0 = any age is acceptable when degraded.
  long max_stale_age_us = 0;

  /// Queue-fill fraction above which dispatchers shrink the batch
  /// coalescing window to max_wait_us / 4 (throughput over batch quality
  /// under pressure). <= 0 disables the shrink.
  double pressure_watermark = 0.5;

  /// Per-model SLO tracking: every terminal resolution records into an
  /// obs::SloTracker and burn rates surface as slo.* gauges (after a
  /// Statusz or SloReport call) and in Statusz().
  bool enable_slo = true;
  /// Default objective for models without an explicit SetObjective.
  obs::SloObjective slo;
  /// Burn-rate look-back windows, seconds, strictly increasing.
  std::vector<long> slo_windows_s = {300, 3600};
};

/// \brief One inference request. `version` < 0 serves the latest registered
/// version; `timeout_us` > 0 sets a deadline relative to Submit — a request
/// still queued past it is cancelled with kDeadlineExceeded and never
/// reaches the simulator.
struct InferenceRequest {
  std::string model;
  int version = -1;
  RequestKind kind = RequestKind::kPredict;
  DVector input;
  long timeout_us = 0;
};

/// \brief Per-request timing breakdown returned with the response. All
/// timings are wall-clock microseconds; trace_id is 0 when tracing was
/// disabled at Submit time (the timings are still filled in).
struct TraceSummary {
  uint64_t trace_id = 0;       ///< Grep key into the Chrome-trace export.
  long queue_wait_us = 0;      ///< Admission → dispatch.
  long exec_us = 0;            ///< Sum of execution attempts.
  long retry_backoff_us = 0;   ///< Sum of backoff sleeps the request rode.
  int attempts = 0;            ///< Execution attempts (0 = never executed).
  long total_us = 0;           ///< Submit → resolution.
};

/// \brief A completed inference plus serving metadata.
struct InferenceResponse {
  InferenceValue result;
  int model_version = 0;
  bool from_cache = false;
  /// True when the response came from the degradation ladder (e.g. a
  /// stale cache entry served while the model's breaker was open).
  bool degraded = false;
  /// Execution attempts the batch took (0 for cache hits, >1 = retried).
  int attempts = 0;
  /// Micro-batch size this request executed in (0 for cache hits).
  size_t batch_size = 0;
  /// Time from admission to dispatch (0 for cache hits).
  long queue_wait_us = 0;
  /// Where the time went (and the trace id to find the span tree).
  TraceSummary trace;
};

/// \brief Dynamic micro-batching inference server over a ModelRegistry.
///
/// Thread-safe: any number of client threads may Submit concurrently.
/// Requests admitted before Start() queue up and execute once started.
class InferenceServer {
 public:
  /// `registry` must outlive the server.
  explicit InferenceServer(ModelRegistry& registry,
                           const ServerOptions& options = {});
  /// Drains and joins (see Shutdown).
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Spawns the dispatcher threads. Fails with kFailedPrecondition if
  /// already started or already shut down.
  Status Start();

  /// Graceful drain: stops admission (subsequent Submits fail with
  /// kUnavailable), lets dispatchers finish every queued request, joins
  /// them. Requests admitted but never started (Start was not called) fail
  /// with kUnavailable. Idempotent.
  void Shutdown();

  /// Admits a request and returns a future for its response. Admission
  /// failures (unknown model, bad input, full queue, shut down) and cache
  /// hits resolve the future immediately.
  std::future<Result<InferenceResponse>> Submit(InferenceRequest request);

  /// Requests currently queued (admitted, not yet dispatched).
  size_t queue_depth() const;

  /// Monotonic serving tallies (process-lifetime metrics live in qdb::obs;
  /// these are per-server and race-free to read in tests). Every submitted
  /// request lands in exactly one terminal bucket:
  ///   submitted == completed + cache_hits + degraded + rejected
  ///                + expired + failed.
  struct Stats {
    long submitted = 0;       ///< Admission attempts.
    long completed = 0;       ///< Futures resolved with an executed result.
    long cache_hits = 0;      ///< Resolved fresh from the result cache.
    long degraded = 0;        ///< Resolved stale via the degradation ladder.
    long rejected = 0;        ///< Terminal at admission (invalid, overflow,
                              ///< breaker shed, shut down).
    long expired = 0;         ///< Cancelled with kDeadlineExceeded.
    long failed = 0;          ///< Execution failed after retries.
    long batches = 0;         ///< Micro-batches executed successfully.
  };
  Stats stats() const;

  const ResultCache& result_cache() const { return result_cache_; }

  /// The circuit breaker guarding (model, version), or null if that pair
  /// has not been submitted to yet (or breakers are disabled).
  const fault::CircuitBreaker* breaker(const std::string& model,
                                       int version) const;

  /// The SLO tracker (null when options.enable_slo is false).
  const obs::SloTracker* slo_tracker() const { return slo_.get(); }

  /// Human-readable introspection page: queue depth, stats buckets,
  /// breaker states, degradation tallies, cache stats, per-model SLO burn
  /// rates, and the slowest recent request traces.
  std::string Statusz() const;

  /// OK while the server can make progress: started, not shut down, queue
  /// below capacity, and no model in SLO breach. Otherwise the status
  /// message names the first failing condition.
  Status Healthz() const;

 private:
  using Clock = std::chrono::steady_clock;

  /// A queued request: resolved servable + promise + timing + trace.
  struct Pending {
    std::shared_ptr<const ServableModel> servable;
    RequestKind kind = RequestKind::kPredict;
    DVector input;
    std::string cache_key;  ///< Empty when the cache is disabled.
    Clock::time_point admitted;
    Clock::time_point deadline;  ///< Clock::time_point::max() = none.
    /// Root trace context minted at Submit (invalid if tracing was off).
    obs::RequestContext ctx;
    int64_t submit_trace_us = 0;  ///< Root-span start (trace clock).
    long retry_backoff_us = 0;    ///< Backoff sleeps ridden so far.
    std::promise<Result<InferenceResponse>> promise;
  };

  void DispatcherLoop();
  /// Pops a leader and every compatible queued request (same servable, same
  /// kind), holding the batch open up to max_wait_us (shrunk under queue
  /// pressure). Returns an empty vector when the server is fully drained
  /// and stopping.
  std::vector<Pending> NextBatch();
  /// Runs the batch with per-attempt fault injection, breaker outcome
  /// recording, and deadline-aware retry; resolves every promise.
  void ExecuteBatch(std::vector<Pending> batch);

  /// Lazily creates the breaker for this servable's (name, version).
  fault::CircuitBreaker* BreakerFor(const ServableModel& servable);
  /// Resolves `pending` from a stale cache entry within max_stale_age_us,
  /// marking the response degraded. False when nothing stale is usable.
  bool TryServeStale(Pending& pending);
  /// Cancels every request in `live` whose deadline precedes `cutoff` with
  /// kDeadlineExceeded (`why` names the retry context for the message).
  void CancelExpired(std::vector<Pending>& live, Clock::time_point cutoff,
                     const char* why);

  /// Terminal accounting shared by every resolution path: labeled
  /// serve.requests / serve.latency_us children, SLO sample, and — when the
  /// request carries a trace — the outcome marker plus the root
  /// "serve.request" span. `outcome` must be a string literal.
  void RecordTerminal(const char* outcome, const std::string& model,
                      RequestKind kind, const obs::RequestContext& ctx,
                      int64_t submit_trace_us, long latency_us, bool ok);

  ModelRegistry& registry_;
  const ServerOptions options_;
  ResultCache result_cache_;

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  /// Dedicated wakeup for backoff sleeps: Shutdown notifies it so retrying
  /// dispatchers cut their sleeps short, and retry waits never consume a
  /// Submit notify meant to hand queue_cv_ work to an idle dispatcher.
  std::condition_variable shutdown_cv_;
  std::deque<Pending> queue_;
  bool accepting_ = true;
  bool started_ = false;
  bool stopping_ = false;
  bool shut_down_ = false;
  std::vector<std::thread> dispatchers_;

  /// name:version → breaker; breakers are created on first submit and live
  /// for the server lifetime (an evicted model's breaker is just idle).
  mutable std::mutex breakers_mu_;
  std::map<std::string, std::unique_ptr<fault::CircuitBreaker>> breakers_;

  /// Per-batch jitter-stream discriminator for retry backoff.
  std::atomic<uint64_t> batch_seq_{0};

  /// Per-model SLO burn tracking (null when disabled).
  std::unique_ptr<obs::SloTracker> slo_;

  // Stats tallies (guarded by stats_mu_ so Stats reads are consistent).
  mutable std::mutex stats_mu_;
  Stats stats_;
};

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_INFERENCE_SERVER_H_
