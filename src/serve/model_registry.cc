#include "serve/model_registry.h"

#include <algorithm>
#include <chrono>

#include "common/strings.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"

namespace qdb {
namespace serve {

namespace {

obs::Gauge* RegisteredGauge() {
  static obs::Gauge* gauge = obs::GetGauge("serve.registry_models");
  return gauge;
}

obs::Gauge* ResidentBytesGauge() {
  static obs::Gauge* gauge = obs::GetGauge("store.resident_bytes");
  return gauge;
}

obs::Gauge* BudgetBytesGauge() {
  static obs::Gauge* gauge = obs::GetGauge("store.budget_bytes");
  return gauge;
}

obs::Gauge* ResidentModelsGauge() {
  static obs::Gauge* gauge = obs::GetGauge("store.resident_models");
  return gauge;
}

obs::Counter* EvictionsCounter() {
  static obs::Counter* counter = obs::GetCounter("store.evictions");
  return counter;
}

obs::Counter* ReloadsCounter() {
  static obs::Counter* counter = obs::GetCounter("store.reloads");
  return counter;
}

/// Cold-start latency (µs): artifact read + parse + servable build when a
/// Lookup hits a paged-out model.
obs::Histogram* ColdStartHistogram() {
  static obs::Histogram* histogram = obs::GetHistogram(
      "store.cold_start_us",
      {50, 100, 250, 500, 1000, 2500, 5000, 10000, 25000, 50000, 100000,
       250000, 1000000});
  return histogram;
}

std::string EntryKey(const std::string& name, int version) {
  return StrCat(name, ":", version);
}

/// Inverse of EntryKey. The version is everything after the *last* colon,
/// so model names containing ':' survive the round trip.
void SplitEntryKey(const std::string& key, std::string& name, int& version) {
  const size_t colon = key.rfind(':');
  name = key.substr(0, colon);
  version = std::stoi(key.substr(colon + 1));
}

}  // namespace

RetryPolicy DefaultArtifactLoadRetry() {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.initial_backoff_us = 1000;
  policy.max_backoff_us = 20000;
  // A torn read of a file being rewritten surfaces as kInvalidArgument
  // ("artifact corrupted") or kNotFound (tmp not yet renamed), not just
  // kUnavailable — all three are worth one more look.
  policy.retryable = [](const Status& status) {
    return status.code() == StatusCode::kUnavailable ||
           status.code() == StatusCode::kNotFound ||
           status.code() == StatusCode::kInvalidArgument;
  };
  return policy;
}

ModelRegistry::ModelRegistry(const RegistryOptions& options)
    : options_(options) {
  options_.num_slices = std::max(1, options_.num_slices);
  const size_t n = static_cast<size_t>(options_.num_slices);
  // Each slice enforces an equal share of the budget independently, so
  // slices never take each other's locks. A nonzero budget smaller than
  // the slice count still budgets each slice (1 byte ≠ unlimited).
  const size_t per_slice =
      options_.store_budget_bytes == 0
          ? 0
          : std::max<size_t>(1, options_.store_budget_bytes / n);
  slices_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    slices_.push_back(std::make_unique<Slice>(per_slice));
  }
  BudgetBytesGauge()->Set(static_cast<double>(options_.store_budget_bytes));
  // Register the cold-start histogram with its µs bounds now, before any
  // later GetHistogram("store.cold_start_us") call (e.g. Statusz) could
  // claim the name with default bounds.
  ColdStartHistogram();
}

ModelRegistry::Slice& ModelRegistry::SliceFor(const std::string& name) const {
  return *slices_[Fnv1a64(name) % slices_.size()];
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::Register(
    ModelArtifact artifact) {
  if (artifact.name.empty()) {
    return Status::InvalidArgument("artifact has no name");
  }
  if (artifact.version < 0) {
    return Status::InvalidArgument("artifact version must be >= 0");
  }
  Slice& slice = SliceFor(artifact.name);
  // Resolve the version under the lock, but build the servable outside it:
  // Create() simulates support-vector encodings and compiles circuits,
  // which must not serialize against lookups. The slot is re-checked on
  // insert in case of a racing Register on the same name.
  int version = artifact.version;
  if (version == 0) {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.models.find(artifact.name);
    version = it == slice.models.end() || it->second.empty()
                  ? 1
                  : it->second.rbegin()->first + 1;
  }
  artifact.version = version;
  QDB_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                       ServableModel::Create(std::move(artifact)));
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto& versions = slice.models[servable->name()];
    Entry entry;
    entry.servable = servable;
    entry.type = servable->type();
    entry.num_features = servable->num_features();
    entry.resident_bytes = servable->ResidentBytes();
    if (!versions.emplace(version, std::move(entry)).second) {
      return Status::AlreadyExists(
          StrCat("model '", servable->name(), "' version ", version,
                 " is already registered"));
    }
    const std::string key = EntryKey(servable->name(), version);
    // In-memory registrations have no artifact file to reload from, so
    // they are charged but never paged out (soft budget).
    slice.budget.Add(key, servable->ResidentBytes(), /*evictable=*/false);
    EnforceBudgetLocked(slice, key);
  }
  PublishGauges();
  return servable;
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::ColdStartLoad(
    const std::string& path, const std::string& name, int version,
    const std::string& file_name, int file_version) const {
  QDB_ASSIGN_OR_RETURN(
      ModelArtifact artifact,
      RetryResult<ModelArtifact>(
          DefaultArtifactLoadRetry(),
          [&path](int) -> Result<ModelArtifact> {
            return store::LoadArtifact(path);
          }));
  // The file must still hold the artifact this entry was registered from.
  // That identity was recorded at MarkFileBacked time and can lag the
  // registered version (reassign_version loads, files stored with version
  // 0); a swapped or repurposed artifact file must not serve under a stale
  // (name, version).
  if (artifact.name != file_name || artifact.version != file_version) {
    return Status::FailedPrecondition(
        StrCat("artifact file '", path, "' now holds '", artifact.name,
               "' v", artifact.version, ", not '", file_name, "' v",
               file_version, " — refusing to serve it as '", name, "' v",
               version));
  }
  // Serve under the registered identity, exactly as Register stamped it.
  artifact.name = name;
  artifact.version = version;
  return ServableModel::Create(std::move(artifact));
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::Lookup(
    const std::string& name, int version) const {
  Slice& slice = SliceFor(name);
  std::string path, file_name;
  int resolved_version = 0, file_version = 0;
  {
    std::unique_lock<std::mutex> lock(slice.mu);
    for (;;) {
      auto it = slice.models.find(name);
      if (it == slice.models.end() || it->second.empty()) {
        return Status::NotFound(StrCat("no model named '", name, "'"));
      }
      std::map<int, Entry>::iterator vit;
      if (version < 0) {
        vit = std::prev(it->second.end());
      } else {
        vit = it->second.find(version);
        if (vit == it->second.end()) {
          return Status::NotFound(
              StrCat("model '", name, "' has no version ", version));
        }
      }
      Entry& entry = vit->second;
      if (entry.servable != nullptr) {
        slice.budget.Touch(EntryKey(name, vit->first));
        return entry.servable;
      }
      if (entry.artifact_path.empty()) {
        return Status::Internal(
            StrCat("model '", name, "' version ", vit->first,
                   " is paged out but has no artifact path"));
      }
      if (!entry.loading) {
        // Claim the cold start: this thread reloads, off-lock.
        entry.loading = true;
        path = entry.artifact_path;
        file_name = entry.file_name;
        file_version = entry.file_version;
        resolved_version = vit->first;
        break;
      }
      // Another lookup is already reloading this version. Wait for it to
      // settle, then re-resolve from scratch — by the time we wake the
      // entry may be resident, failed (we retry the claim), or erased.
      slice.cv.wait(lock);
    }
  }
  // Cold start: the budget paged this version out. File I/O, retry
  // backoff, and the servable build all run outside the slice lock, so a
  // slow or failing artifact only stalls lookups of this model — the rest
  // of the slice keeps serving. The loading latch above keeps concurrent
  // lookups of the same version from stampeding the file.
  const auto start = std::chrono::steady_clock::now();
  Result<std::shared_ptr<const ServableModel>> result =
      ColdStartLoad(path, name, resolved_version, file_name, file_version);
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.models.find(name);
    if (it != slice.models.end()) {
      auto vit = it->second.find(resolved_version);
      if (vit != it->second.end()) {
        Entry& entry = vit->second;
        entry.loading = false;
        // Install unless the entry was concurrently erased (Evict) — the
        // caller still gets the servable it loaded either way.
        if (result.ok() && entry.servable == nullptr) {
          entry.servable = result.value();
          entry.resident_bytes = result.value()->ResidentBytes();
          const std::string key = EntryKey(name, resolved_version);
          slice.budget.Add(key, entry.resident_bytes, /*evictable=*/true,
                           entry.pinned);
          slice.reloads++;
          ReloadsCounter()->Increment();
          ColdStartHistogram()->Observe(static_cast<double>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  std::chrono::steady_clock::now() - start)
                  .count()));
          EnforceBudgetLocked(slice, key);
        }
      }
    }
  }
  slice.cv.notify_all();
  // Gauges refresh only after a cold start (outside the slice lock —
  // PublishGauges walks every slice); the warm path stays lock-light.
  if (result.ok()) PublishGauges();
  return result;
}

void ModelRegistry::EnforceBudgetLocked(
    Slice& slice, const std::string& protect_key) const {
  for (const std::string& victim : slice.budget.PlanEvictions(protect_key)) {
    std::string name;
    int version = 0;
    SplitEntryKey(victim, name, version);
    auto it = slice.models.find(name);
    if (it == slice.models.end()) continue;
    auto vit = it->second.find(version);
    if (vit == it->second.end()) continue;
    vit->second.servable.reset();
    vit->second.resident_bytes = 0;
    slice.budget.Drop(victim);
    slice.evictions++;
    EvictionsCounter()->Increment();
  }
}

Status ModelRegistry::Evict(const std::string& name, int version) {
  Slice& slice = SliceFor(name);
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.models.find(name);
    if (it == slice.models.end() || it->second.empty()) {
      return Status::NotFound(StrCat("no model named '", name, "'"));
    }
    if (version < 0) {
      for (const auto& [v, entry] : it->second) {
        slice.budget.Drop(EntryKey(name, v));
      }
      slice.models.erase(it);
    } else {
      if (it->second.erase(version) == 0) {
        return Status::NotFound(
            StrCat("model '", name, "' has no version ", version));
      }
      slice.budget.Drop(EntryKey(name, version));
      if (it->second.empty()) slice.models.erase(it);
    }
  }
  PublishGauges();
  return Status::OK();
}

Status ModelRegistry::SetPinned(const std::string& name, int version,
                                bool pinned) {
  Slice& slice = SliceFor(name);
  {
    std::lock_guard<std::mutex> lock(slice.mu);
    auto it = slice.models.find(name);
    if (it == slice.models.end()) {
      return Status::NotFound(StrCat("no model named '", name, "'"));
    }
    auto vit = it->second.find(version);
    if (vit == it->second.end()) {
      return Status::NotFound(
          StrCat("model '", name, "' has no version ", version));
    }
    vit->second.pinned = pinned;
    slice.budget.SetPinned(EntryKey(name, version), pinned);
    // Unpinning may make an over-budget slice collectable again.
    if (!pinned) EnforceBudgetLocked(slice, "");
  }
  PublishGauges();
  return Status::OK();
}

std::vector<ModelEntry> ModelRegistry::List() const {
  std::vector<ModelEntry> out;
  for (const auto& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice->mu);
    for (const auto& [name, versions] : slice->models) {
      for (const auto& [version, entry] : versions) {
        ModelEntry row;
        row.name = name;
        row.version = version;
        row.type = entry.type;
        row.num_features = entry.num_features;
        row.resident = entry.servable != nullptr;
        row.pinned = entry.pinned;
        out.push_back(std::move(row));
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const ModelEntry& a, const ModelEntry& b) {
              return a.name != b.name ? a.name < b.name
                                      : a.version < b.version;
            });
  return out;
}

size_t ModelRegistry::size() const {
  size_t n = 0;
  for (const auto& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice->mu);
    for (const auto& [name, versions] : slice->models) n += versions.size();
  }
  return n;
}

void ModelRegistry::MarkFileBacked(const std::string& name, int version,
                                   const std::string& path,
                                   const std::string& file_name,
                                   int file_version) const {
  Slice& slice = SliceFor(name);
  std::lock_guard<std::mutex> lock(slice.mu);
  auto it = slice.models.find(name);
  if (it == slice.models.end()) return;
  auto vit = it->second.find(version);
  if (vit == it->second.end()) return;
  Entry& entry = vit->second;
  entry.artifact_path = path;
  entry.file_name = file_name;
  entry.file_version = file_version;
  if (entry.servable != nullptr) {
    const std::string key = EntryKey(name, version);
    slice.budget.Add(key, entry.resident_bytes, /*evictable=*/true,
                     entry.pinned);
    // Now that this entry is reloadable it may be paged out — but not
    // immediately after the save/load that created it.
    EnforceBudgetLocked(slice, key);
  }
}

Status ModelRegistry::SaveModel(const std::string& name, int version,
                                const std::string& path) const {
  QDB_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                       Lookup(name, version));
  QDB_RETURN_IF_ERROR(
      store::SaveArtifact(servable->artifact(), path, options_.save_format));
  // The file was written from the registered artifact, so the file identity
  // IS the registered identity.
  MarkFileBacked(name, servable->version(), path, servable->name(),
                 servable->version());
  PublishGauges();
  return Status::OK();
}

Result<std::shared_ptr<const ServableModel>> ModelRegistry::LoadModel(
    const std::string& path, bool reassign_version,
    const RetryPolicy& retry) {
  QDB_ASSIGN_OR_RETURN(
      ModelArtifact artifact,
      RetryResult<ModelArtifact>(
          retry, [&path](int) -> Result<ModelArtifact> {
            // Fault point "artifact.load" (scoped by path) sits inside the
            // retry loop, so injected transient errors exercise it;
            // store::LoadArtifact adds the lower-level "store.read" point.
            QDB_RETURN_IF_ERROR(
                fault::MaybeInject("artifact.load", path));
            return store::LoadArtifact(path);
          }));
  // Remember the identity the file actually holds *before* Register
  // reassigns or auto-assigns the registered version: reloads after a
  // page-out re-read this same file and must match it as-is on disk.
  const std::string file_name = artifact.name;
  const int file_version = artifact.version;
  if (reassign_version) artifact.version = 0;
  QDB_ASSIGN_OR_RETURN(std::shared_ptr<const ServableModel> servable,
                       Register(std::move(artifact)));
  MarkFileBacked(servable->name(), servable->version(), path, file_name,
                 file_version);
  PublishGauges();
  return servable;
}

StoreStatus ModelRegistry::store_status() const {
  StoreStatus status;
  status.budget_bytes = options_.store_budget_bytes;
  status.num_slices = static_cast<int>(slices_.size());
  for (const auto& slice : slices_) {
    std::lock_guard<std::mutex> lock(slice->mu);
    status.resident_bytes += slice->budget.resident_bytes();
    status.evictions += slice->evictions;
    status.reloads += slice->reloads;
    for (const auto& [name, versions] : slice->models) {
      for (const auto& [version, entry] : versions) {
        status.registered_models++;
        if (entry.servable != nullptr) {
          status.resident_models++;
        } else {
          status.evicted_models++;
        }
      }
    }
  }
  return status;
}

void ModelRegistry::PublishGauges() const {
  const StoreStatus status = store_status();
  RegisteredGauge()->Set(static_cast<double>(status.registered_models));
  ResidentBytesGauge()->Set(static_cast<double>(status.resident_bytes));
  ResidentModelsGauge()->Set(static_cast<double>(status.resident_models));
  BudgetBytesGauge()->Set(static_cast<double>(status.budget_bytes));
}

}  // namespace serve
}  // namespace qdb
