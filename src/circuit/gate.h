/// \file gate.h
/// \brief Gate vocabulary of the circuit IR: gate types, parameter
/// expressions, and dense matrix realizations.

#ifndef QDB_CIRCUIT_GATE_H_
#define QDB_CIRCUIT_GATE_H_

#include <string>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// Kinds of gates the IR understands. Multi-controlled X/Z take an
/// arbitrary number of qubits (controls..., target).
enum class GateType {
  // 1-qubit fixed gates.
  kI,
  kX,
  kY,
  kZ,
  kH,
  kS,
  kSdg,
  kT,
  kTdg,
  kSX,
  // 1-qubit parameterized gates.
  kRX,
  kRY,
  kRZ,
  kPhase,  ///< P(λ) = diag(1, e^{iλ})
  kU,      ///< generic U(θ, φ, λ)
  // 2-qubit fixed gates.
  kCX,
  kCY,
  kCZ,
  kCH,
  kSwap,
  // 2-qubit parameterized gates.
  kCRX,
  kCRY,
  kCRZ,
  kCPhase,
  kRXX,  ///< exp(-i θ/2 X⊗X)
  kRYY,  ///< exp(-i θ/2 Y⊗Y)
  kRZZ,  ///< exp(-i θ/2 Z⊗Z)
  // 3-qubit fixed gates.
  kCCX,    ///< Toffoli
  kCSwap,  ///< Fredkin
  // Variadic gates: qubits = (controls..., target).
  kMCX,
  kMCZ,
};

/// \brief A parameter expression: value(θ) = multiplier·θ[index] + offset,
/// or a plain constant `offset` when index < 0.
///
/// This is the minimal symbolic layer needed for variational circuits and
/// data re-uploading encodings (scaled feature angles).
struct ParamExpr {
  int index = -1;
  double multiplier = 1.0;
  double offset = 0.0;

  /// A constant (non-trainable) angle.
  static ParamExpr Constant(double value) { return {-1, 0.0, value}; }
  /// The raw trainable parameter θ[i].
  static ParamExpr Variable(int i) { return {i, 1.0, 0.0}; }
  /// A scaled/shifted parameter: m·θ[i] + b.
  static ParamExpr Affine(int i, double m, double b) { return {i, m, b}; }

  bool is_constant() const { return index < 0; }

  /// Evaluates against a bound parameter vector.
  double Evaluate(const DVector& params) const;
};

/// \brief One gate instance: type, qubit operands, and angle expressions.
struct Gate {
  GateType type;
  std::vector<int> qubits;
  std::vector<ParamExpr> params;

  /// Returns the gate with all angle expressions negated — the adjoint for
  /// rotation-type gates (callers handle the discrete S/T adjoints).
  Gate WithNegatedParams() const;
};

/// Human-readable lower-case gate name (e.g. "cx", "rzz").
const char* GateTypeName(GateType type);

/// Number of qubit operands for fixed-arity gate types; 0 for variadic
/// (kMCX / kMCZ).
int GateArity(GateType type);

/// Number of angle parameters the gate type expects.
int GateParamCount(GateType type);

/// True for gates whose matrix is diagonal in the computational basis.
bool IsDiagonalGate(GateType type);

/// \brief Dense unitary matrix of the gate for bound angle values.
///
/// For fixed-arity gates returns the 2^k x 2^k matrix with the convention
/// that qubits[0] is the most significant bit of the matrix index. Variadic
/// kMCX/kMCZ are not supported here (the simulator applies them directly);
/// calling with those types aborts.
Matrix GateMatrix(GateType type, const DVector& angles);

/// \brief Maps a gate type to its adjoint type for the discrete gates whose
/// inverse is a different type (S→Sdg, T→Tdg, and vice versa). Returns the
/// input type for self-inverse and rotation gates.
GateType AdjointType(GateType type);

}  // namespace qdb

#endif  // QDB_CIRCUIT_GATE_H_
