/// \file state_vector.h
/// \brief Pure-state amplitude vector with in-place gate kernels.
///
/// Convention used across qdb: qubit 0 is the *most significant* bit of the
/// basis index, matching the Kronecker order of GateMatrix and
/// PauliString::ToMatrix (state ⊗ order q0 ⊗ q1 ⊗ ... ⊗ q_{n-1}).
///
/// Storage is structure-of-arrays: two 64-byte-aligned double planes hold
/// the real and imaginary amplitude components separately, so the SIMD
/// kernels (sim/kernels.h) stream homogeneous doubles instead of
/// interleaved std::complex. The complex-vector API survives as a
/// conversion shim (ToAmplitudes / FromAmplitudes / SetAmplitudes);
/// serialized artifacts and callers that want CVector are unchanged.

#ifndef QDB_SIM_STATE_VECTOR_H_
#define QDB_SIM_STATE_VECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/aligned.h"
#include "common/result.h"
#include "common/rng.h"
#include "linalg/matrix.h"
#include "linalg/types.h"

namespace qdb {

/// States with at least this many amplitudes run their gate kernels and
/// probability reductions on the shared ThreadPool; smaller states stay
/// serial so tiny circuits pay no dispatch cost. Reductions at or above the
/// threshold always use the pool's fixed chunking, so results are
/// bit-identical for every QDB_THREADS setting.
inline constexpr uint64_t kParallelAmplitudeThreshold = uint64_t{1} << 14;

/// \brief The amplitudes of an n-qubit pure state plus the low-level gate
/// application kernels the simulators are built on.
class StateVector {
 public:
  /// Initializes |0...0⟩ on `num_qubits` qubits.
  explicit StateVector(int num_qubits);

  /// Wraps existing amplitudes; the size must be a power of two and the
  /// norm must be 1 within `norm_tol`.
  static Result<StateVector> FromAmplitudes(CVector amplitudes,
                                            double norm_tol = 1e-8);

  /// Initializes the computational basis state |index⟩.
  static StateVector BasisState(int num_qubits, uint64_t index);

  int num_qubits() const { return num_qubits_; }
  uint64_t dim() const { return uint64_t{1} << num_qubits_; }

  // ---- Amplitude access ------------------------------------------------------

  /// Raw real/imag planes (length dim(), 64-byte aligned).
  const double* reals() const { return re_.data(); }
  double* reals() { return re_.data(); }
  const double* imags() const { return im_.data(); }
  double* imags() { return im_.data(); }

  Complex amplitude(uint64_t index) const;
  void set_amplitude(uint64_t index, Complex value);

  /// Materializes the interleaved complex amplitude vector (copy).
  CVector ToAmplitudes() const;

  /// Overwrites the state from an interleaved complex vector of exactly
  /// dim() entries. Trusted internal shim: no norm check — callers that
  /// need validation go through FromAmplitudes.
  void SetAmplitudes(const CVector& amplitudes);

  /// |amplitude|² of one basis state.
  double Probability(uint64_t index) const;

  /// All 2^n basis-state probabilities.
  DVector Probabilities() const;

  /// Probability that measuring `qubit` yields 1.
  double ProbabilityOfOne(int qubit) const;

  /// L2 norm of the amplitude vector (should be 1).
  double NormValue() const;

  /// Rescales to unit norm; aborts on the zero vector.
  void Renormalize();

  /// ⟨this|other⟩.
  Complex InnerProductWith(const StateVector& other) const;

  // ---- Gate kernels (in-place) ---------------------------------------------

  /// Applies a single-qubit unitary given by its four entries.
  void Apply1Q(int qubit, Complex m00, Complex m01, Complex m10, Complex m11);

  /// Applies a single-qubit unitary matrix (2x2).
  void Apply1Q(int qubit, const Matrix& u);

  /// Applies a controlled single-qubit unitary.
  void ApplyControlled1Q(int control, int target, Complex m00, Complex m01,
                         Complex m10, Complex m11);

  /// Applies a two-qubit unitary matrix (4x4; qubit `a` = high bit).
  void Apply2Q(int a, int b, const Matrix& u);

  /// Applies a diagonal two-qubit gate given by its four diagonal entries.
  void ApplyDiagonal2Q(int a, int b, Complex d0, Complex d1, Complex d2,
                       Complex d3);

  /// Applies a diagonal single-qubit gate diag(d0, d1).
  void ApplyDiagonal1Q(int qubit, Complex d0, Complex d1);

  /// Swaps qubits a and b.
  void ApplySwap(int a, int b);

  /// Applies a k-qubit unitary matrix (2^k x 2^k; qubits[0] = high bit).
  /// Intended for k ≤ 3 gates; cost grows as 4^k per amplitude group.
  void ApplyKQ(const std::vector<int>& qubits, const Matrix& u);

  /// X on `target` conditioned on all `controls` being |1⟩.
  void ApplyMCX(const std::vector<int>& controls, int target);

  /// Phase −1 where all of controls ∪ {target} are |1⟩.
  void ApplyMCZ(const std::vector<int>& controls, int target);

  // ---- Measurement -----------------------------------------------------------

  /// Samples one full-register outcome without collapsing.
  uint64_t SampleOnce(Rng& rng) const;

  /// Samples `shots` outcomes without collapsing; returns outcome → count.
  std::map<uint64_t, int> SampleCounts(Rng& rng, int shots) const;

  /// Projectively measures one qubit: returns 0/1 and collapses the state.
  /// Collapse and kept-branch norm accumulation are fused into one pass,
  /// parallel above kParallelAmplitudeThreshold with the pool's
  /// deterministic chunking.
  int MeasureQubit(int qubit, Rng& rng);

  /// Projectively measures all qubits: returns the basis index and
  /// collapses to that basis state.
  uint64_t MeasureAll(Rng& rng);

  /// Renders a bitstring like "q0q1...q_{n-1}" for a basis index.
  std::string BitString(uint64_t index) const;

 private:
  /// Bit position (from LSB) of `qubit` in the basis index.
  int BitPos(int qubit) const { return num_qubits_ - 1 - qubit; }

  /// Running prefix sums of basis-state probabilities, accumulated serially
  /// in index order (shared by SampleOnce and SampleCounts so both draw
  /// from the identical CDF).
  DVector CumulativeProbabilities() const;

  int num_qubits_;
  AlignedDVector re_;
  AlignedDVector im_;
};

}  // namespace qdb

#endif  // QDB_SIM_STATE_VECTOR_H_
