/// \file simulated_annealing.h
/// \brief Metropolis simulated annealing over Ising instances — the
/// classical thermal baseline the quantum annealer is compared against
/// (figure 2A of the annealing discussion).

#ifndef QDB_ANNEAL_SIMULATED_ANNEALING_H_
#define QDB_ANNEAL_SIMULATED_ANNEALING_H_

#include "common/result.h"
#include "ops/ising.h"
#include "anneal/types.h"

namespace qdb {

/// \brief Simulated-annealing schedule and budget.
struct SaOptions {
  int num_sweeps = 1000;    ///< Full single-spin-flip sweeps per restart.
  int num_restarts = 1;
  double beta_initial = 0.1;  ///< Inverse temperature at the start...
  double beta_final = 10.0;   ///< ...and at the end (geometric ramp).
  /// Divide the β schedule by the instance's max |coefficient| so the same
  /// schedule works across problem scales.
  bool scale_to_coefficients = true;
  uint64_t seed = 41;
};

/// \brief Runs SA and returns the best configuration over all restarts.
Result<SolveResult> SimulatedAnnealing(const IsingModel& model,
                                       const SaOptions& options = {});

}  // namespace qdb

#endif  // QDB_ANNEAL_SIMULATED_ANNEALING_H_
