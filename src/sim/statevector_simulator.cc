#include "sim/statevector_simulator.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <optional>

#include "common/strings.h"
#include "common/thread_pool.h"
#include "fault/fault_injector.h"
#include "obs/obs.h"
#include "sim/compiled_circuit.h"

namespace qdb {

namespace {

/// Per-gate-class apply counts plus an amplitude-touch tally. Registry
/// lookups happen once (function-local static); the hot path pays one
/// relaxed atomic add per gate, negligible next to the O(2^n) kernel work.
struct SimCounters {
  obs::Counter* runs = obs::GetCounter("sim.runs");
  obs::Counter* batches = obs::GetCounter("sim.batches");
  obs::Counter* batch_circuits = obs::GetCounter("sim.batch_circuits");
  obs::Counter* diagonal_1q = obs::GetCounter("sim.gates.diagonal_1q");
  obs::Counter* generic_1q = obs::GetCounter("sim.gates.generic_1q");
  obs::Counter* controlled_1q = obs::GetCounter("sim.gates.controlled_1q");
  obs::Counter* diagonal_2q = obs::GetCounter("sim.gates.diagonal_2q");
  obs::Counter* generic_2q = obs::GetCounter("sim.gates.generic_2q");
  obs::Counter* swap = obs::GetCounter("sim.gates.swap");
  obs::Counter* multi_controlled = obs::GetCounter("sim.gates.multi_controlled");
  obs::Counter* generic_kq = obs::GetCounter("sim.gates.generic_kq");
  /// Amplitudes read-modify-written across all gate applications (the
  /// simulator's memory-traffic proxy: diagonal and generic kernels touch
  /// every amplitude; controlled / swap kernels touch half).
  obs::Counter* amplitude_touches = obs::GetCounter("sim.amplitude_touches");
};

SimCounters& Counters() {
  static SimCounters counters;
  return counters;
}

/// QDB_COMPILE environment override, read once: "0" forces interpreted,
/// "1" forces compiled, unset/other defers to the auto heuristic.
std::optional<bool> CompileEnvOverride() {
  static const std::optional<bool> value = []() -> std::optional<bool> {
    const char* env = std::getenv("QDB_COMPILE");
    if (env == nullptr) return std::nullopt;
    if (env[0] == '0' && env[1] == '\0') return false;
    if (env[0] == '1' && env[1] == '\0') return true;
    return std::nullopt;
  }();
  return value;
}

}  // namespace

bool StateVectorSimulator::ShouldCompile(const Circuit& circuit) const {
  switch (execution_mode_) {
    case ExecutionMode::kInterpreted:
      return false;
    case ExecutionMode::kCompiled:
      return true;
    case ExecutionMode::kAuto:
      break;
  }
  if (const std::optional<bool> env = CompileEnvOverride(); env.has_value()) {
    return *env;
  }
  // Single-gate circuits gain nothing from lowering; everything else wins
  // from fusion and/or the compile-once-replay-many cache.
  return circuit.size() >= 2;
}

Result<StateVector> StateVectorSimulator::Run(const Circuit& circuit,
                                              const DVector& params) const {
  StateVector state(circuit.num_qubits());
  QDB_RETURN_IF_ERROR(RunInPlace(circuit, state, params));
  return state;
}

Status StateVectorSimulator::RunInPlace(const Circuit& circuit,
                                        StateVector& state,
                                        const DVector& params) const {
  if (state.num_qubits() != circuit.num_qubits()) {
    return Status::InvalidArgument(
        StrCat("state has ", state.num_qubits(), " qubits but circuit has ",
               circuit.num_qubits()));
  }
  if (static_cast<int>(params.size()) < circuit.num_parameters()) {
    return Status::InvalidArgument(
        StrCat("circuit references ", circuit.num_parameters(),
               " parameters but only ", params.size(), " were bound"));
  }
  QDB_TRACE_SCOPE("StateVectorSimulator::Run", "sim");
  Counters().runs->Increment();
  if (ShouldCompile(circuit)) {
    std::shared_ptr<const CompiledCircuit> program =
        CompilationCache::Global().GetOrCompile(circuit);
    return program->Execute(state, params);
  }
  for (size_t i = 0; i < circuit.gates().size(); ++i) {
    const Gate& gate = circuit.gates()[i];
    DVector angles = circuit.EvaluateAngles(i, params);
    QDB_RETURN_IF_ERROR(ApplyGate(gate, angles, state));
  }
  return Status::OK();
}

Status StateVectorSimulator::RunBatchReduce(
    const std::vector<Circuit>& circuits,
    const std::vector<DVector>& params_list,
    const StateVector* initial_state,
    const std::function<Status(size_t, StateVector&&)>& consume) const {
  const size_t nc = circuits.size();
  const size_t np = params_list.size();
  if (nc == 0) return Status::OK();
  if (nc > 1 && np > 1 && np != nc) {
    return Status::InvalidArgument(
        StrCat("batch has ", nc, " circuits but ", np,
               " parameter vectors (need 0, 1, or one per circuit)"));
  }
  const size_t count = std::max(nc, np);
  // Fault point "sim.run": lets chaos runs fail or delay whole simulator
  // batches below the serving layer, exercising its retry path end to end.
  QDB_FAULT_POINT("sim.run");
  QDB_TRACE_SCOPE("StateVectorSimulator::RunBatch", "sim");
  Counters().batches->Increment();
  Counters().batch_circuits->Increment(static_cast<long>(count));
  // Broadcast batches replay one circuit `count` times: compile it before
  // the fan-out so workers hit the cache instead of serializing on the
  // first-miss compile inside the cache lock.
  if (nc == 1 && ShouldCompile(circuits[0])) {
    CompilationCache::Global().GetOrCompile(circuits[0]);
  }
  static const DVector kNoParams;
  std::vector<Status> statuses(count);
  ThreadPool::Global().RunTasks(count, [&](size_t i) {
    QDB_TRACE_SCOPE("StateVectorSimulator::RunBatchTask", "sim");
    const Circuit& circuit = circuits[nc == 1 ? 0 : i];
    const DVector& params =
        np == 0 ? kNoParams : params_list[np == 1 ? 0 : i];
    StateVector state = initial_state != nullptr
                            ? *initial_state
                            : StateVector(circuit.num_qubits());
    Status status = RunInPlace(circuit, state, params);
    if (status.ok()) status = consume(i, std::move(state));
    statuses[i] = std::move(status);
  });
  for (Status& status : statuses) {
    if (!status.ok()) return std::move(status);
  }
  return Status::OK();
}

Result<std::vector<StateVector>> StateVectorSimulator::RunBatch(
    const std::vector<Circuit>& circuits,
    const std::vector<DVector>& params_list,
    const StateVector* initial_state) const {
  const size_t count = std::max(circuits.size(), params_list.size());
  std::vector<std::optional<StateVector>> slots(count);
  QDB_RETURN_IF_ERROR(RunBatchReduce(
      circuits, params_list, initial_state,
      [&slots](size_t i, StateVector&& state) {
        slots[i].emplace(std::move(state));
        return Status::OK();
      }));
  std::vector<StateVector> out;
  out.reserve(count);
  for (auto& slot : slots) out.push_back(std::move(*slot));
  return out;
}

Result<std::vector<std::map<uint64_t, int>>> StateVectorSimulator::SampleBatch(
    const std::vector<Circuit>& circuits,
    const std::vector<DVector>& params_list, int shots, Rng& rng) const {
  if (shots < 0) {
    return Status::InvalidArgument("shots must be non-negative");
  }
  const size_t count = std::max(circuits.size(), params_list.size());
  // Split the caller's stream once per task, in batch order, before any
  // task runs: each task then owns a decorrelated generator whose seed does
  // not depend on scheduling, so counts are reproducible at any QDB_THREADS.
  std::vector<Rng> rngs;
  rngs.reserve(count);
  for (size_t i = 0; i < count; ++i) rngs.push_back(rng.Split());
  std::vector<std::map<uint64_t, int>> counts(count);
  QDB_RETURN_IF_ERROR(RunBatchReduce(
      circuits, params_list, nullptr,
      [&counts, &rngs, shots](size_t i, StateVector&& state) {
        counts[i] = state.SampleCounts(rngs[i], shots);
        return Status::OK();
      }));
  return counts;
}

Status StateVectorSimulator::ApplyGate(const Gate& gate, const DVector& angles,
                                       StateVector& state) const {
  SimCounters& counters = Counters();
  const long dim = static_cast<long>(state.dim());
  switch (gate.type) {
    case GateType::kI:
      return Status::OK();
    case GateType::kMCX: {
      std::vector<int> controls(gate.qubits.begin(), gate.qubits.end() - 1);
      state.ApplyMCX(controls, gate.qubits.back());
      counters.multi_controlled->Increment();
      counters.amplitude_touches->Increment(
          dim >> std::min<size_t>(controls.size(), 62));
      return Status::OK();
    }
    case GateType::kMCZ: {
      std::vector<int> controls(gate.qubits.begin(), gate.qubits.end() - 1);
      state.ApplyMCZ(controls, gate.qubits.back());
      counters.multi_controlled->Increment();
      counters.amplitude_touches->Increment(
          dim >> std::min<size_t>(controls.size() + 1, 62));
      return Status::OK();
    }
    case GateType::kSwap:
      state.ApplySwap(gate.qubits[0], gate.qubits[1]);
      counters.swap->Increment();
      counters.amplitude_touches->Increment(dim / 2);
      return Status::OK();
    case GateType::kCX:
      state.ApplyControlled1Q(gate.qubits[0], gate.qubits[1], {0, 0}, {1, 0},
                              {1, 0}, {0, 0});
      counters.controlled_1q->Increment();
      counters.amplitude_touches->Increment(dim / 2);
      return Status::OK();
    case GateType::kCZ:
      state.ApplyDiagonal2Q(gate.qubits[0], gate.qubits[1], {1, 0}, {1, 0},
                            {1, 0}, {-1, 0});
      counters.diagonal_2q->Increment();
      counters.amplitude_touches->Increment(dim);
      return Status::OK();
    default:
      break;
  }

  const Matrix u = GateMatrix(gate.type, angles);
  const int arity = static_cast<int>(gate.qubits.size());
  if (arity == 1) {
    if (IsDiagonalGate(gate.type)) {
      state.ApplyDiagonal1Q(gate.qubits[0], u(0, 0), u(1, 1));
      counters.diagonal_1q->Increment();
    } else {
      state.Apply1Q(gate.qubits[0], u);
      counters.generic_1q->Increment();
    }
    counters.amplitude_touches->Increment(dim);
    return Status::OK();
  }
  if (arity == 2) {
    if (IsDiagonalGate(gate.type)) {
      state.ApplyDiagonal2Q(gate.qubits[0], gate.qubits[1], u(0, 0), u(1, 1),
                            u(2, 2), u(3, 3));
      counters.diagonal_2q->Increment();
      counters.amplitude_touches->Increment(dim);
    } else {
      switch (gate.type) {
        case GateType::kCY:
        case GateType::kCH:
        case GateType::kCRX:
        case GateType::kCRY:
        case GateType::kCRZ:
          // Controlled forms: the 2x2 block lives at rows/cols {2, 3}.
          state.ApplyControlled1Q(gate.qubits[0], gate.qubits[1], u(2, 2),
                                  u(2, 3), u(3, 2), u(3, 3));
          counters.controlled_1q->Increment();
          counters.amplitude_touches->Increment(dim / 2);
          break;
        default:
          state.Apply2Q(gate.qubits[0], gate.qubits[1], u);
          counters.generic_2q->Increment();
          counters.amplitude_touches->Increment(dim);
          break;
      }
    }
    return Status::OK();
  }
  state.ApplyKQ(gate.qubits, u);
  counters.generic_kq->Increment();
  counters.amplitude_touches->Increment(dim);
  return Status::OK();
}

double Expectation(const StateVector& state, const PauliString& pauli) {
  QDB_CHECK_EQ(pauli.num_qubits(), state.num_qubits());
  const int n = state.num_qubits();
  uint64_t xmask = 0;  // bits flipped by X or Y
  uint64_t ymask = 0;
  uint64_t zmask = 0;
  for (int q = 0; q < n; ++q) {
    const uint64_t bit = uint64_t{1} << (n - 1 - q);
    switch (pauli.op(q)) {
      case PauliOp::kI:
        break;
      case PauliOp::kX:
        xmask |= bit;
        break;
      case PauliOp::kY:
        xmask |= bit;
        ymask |= bit;
        break;
      case PauliOp::kZ:
        zmask |= bit;
        break;
    }
  }
  const double* re = state.reals();
  const double* im = state.imags();
  const uint64_t dim = state.dim();
  Complex acc(0.0, 0.0);
  const int y_count = __builtin_popcountll(ymask);
  // P|i⟩ = phase(i)|i ^ xmask⟩ with
  // phase(i) = i^{y_count} · (−1)^{popcount(i & ymask)} · (−1)^{popcount(i & zmask)}
  // (each Y contributes i·(−1)^{bit}; each Z contributes (−1)^{bit}).
  Complex i_power(1.0, 0.0);
  switch (y_count & 3) {
    case 0: i_power = {1.0, 0.0}; break;
    case 1: i_power = {0.0, 1.0}; break;
    case 2: i_power = {-1.0, 0.0}; break;
    case 3: i_power = {0.0, -1.0}; break;
  }
  auto chunk_sum = [&](uint64_t begin, uint64_t end) {
    // Plane arithmetic replicating conj(a[i^xmask]) * phase * a[i] with the
    // std::complex product order, minus its per-product Annex-G branches.
    double part_r = 0.0, part_i = 0.0;
    for (uint64_t i = begin; i < end; ++i) {
      const int sign_bits =
          (__builtin_popcountll(i & ymask) + __builtin_popcountll(i & zmask)) &
          1;
      const double flip = sign_bits ? -1.0 : 1.0;
      const double pr = i_power.real() * flip;
      const double pi = i_power.imag() * flip;
      const uint64_t j = i ^ xmask;
      const double t1r = re[j] * pr + im[j] * pi;   // (conj(a_j) * phase).re
      const double t1i = re[j] * pi - im[j] * pr;   // (conj(a_j) * phase).im
      part_r += t1r * re[i] - t1i * im[i];
      part_i += t1r * im[i] + t1i * re[i];
    }
    return Complex(part_r, part_i);
  };
  // Read-only fan-out; chunked accumulation above the threshold keeps the
  // combine order fixed for every thread count.
  acc = dim >= kParallelAmplitudeThreshold
            ? ParallelSum<Complex>(ThreadPool::Global(), 0, dim, chunk_sum)
            : chunk_sum(0, dim);
  return acc.real();
}

double Expectation(const StateVector& state, const PauliSum& observable) {
  QDB_CHECK_EQ(observable.num_qubits(), state.num_qubits());
  double total = 0.0;
  for (const auto& term : observable.terms()) {
    total += term.coefficient * Expectation(state, term.pauli);
  }
  return total;
}

double ExpectationZ(const StateVector& state, int qubit) {
  return 1.0 - 2.0 * state.ProbabilityOfOne(qubit);
}

}  // namespace qdb
