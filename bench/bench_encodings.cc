// E13 — Data-encoding comparison.
//
// Regenerates the encoding-choice table of the tutorial's data-loading
// section: for angle, ZZ feature-map, and amplitude encodings, report (a)
// centered kernel-target alignment on circles/XOR, (b) downstream
// quantum-kernel SVM accuracy, and (c) circuit depth / 2-qubit gate cost.
// Expected shape: angle encoding is cheap but low-rank (underfits XOR);
// the ZZ map buys alignment on structured data at quadratic gate cost;
// amplitude encoding compresses dimensions but its kernel (plain squared
// inner product) is the weakest learner here.

#include <benchmark/benchmark.h>

#include <cmath>

#include "classical/metrics.h"
#include "classical/svm.h"
#include "encoding/encodings.h"
#include "kernel/alignment.h"
#include "kernel/quantum_kernel.h"

namespace qdb {
namespace {

enum DatasetKind { kCircles = 0, kXor = 1 };
enum EncodingKind { kAngle = 0, kZZ = 1, kAmplitude = 2 };

const char* Label(int dataset, int encoding) {
  static std::string label;
  label = std::string(dataset == kCircles ? "circles" : "xor") + "/" +
          (encoding == kAngle ? "angle"
           : encoding == kZZ  ? "zzmap"
                              : "amplitude");
  return label.c_str();
}

FidelityQuantumKernel MakeKernel(int encoding) {
  switch (encoding) {
    case kAngle: return MakeAngleKernel();
    case kZZ: return MakeZZFeatureMapKernel(2);
    default: return MakeAmplitudeKernel();
  }
}

void BM_EncodingQuality(benchmark::State& state) {
  const int dataset = static_cast<int>(state.range(0));
  const int encoding = static_cast<int>(state.range(1));
  Rng rng(19);
  Dataset all = dataset == kCircles ? MakeCircles(56, 0.08, 0.5, rng)
                                    : MakeXor(56, 0.15, rng);
  auto [train, test] = TrainTestSplit(all, 0.25, rng);
  // Amplitude encoding needs non-zero vectors: shift into [0.2, π].
  MinMaxScale(train, test, 0.2, M_PI);
  MinMaxScale(train, train, 0.2, M_PI);

  FidelityQuantumKernel kernel = MakeKernel(encoding);
  double alignment = 0.0, test_acc = 0.0;
  for (auto _ : state) {
    auto gram = kernel.GramMatrix(train.features);
    if (!gram.ok()) {
      state.SkipWithError(gram.status().ToString().c_str());
      return;
    }
    alignment =
        CenteredKernelAlignment(gram.value(), train.labels).ValueOrDie();
    SvmOptions opts;
    opts.kernel = SvmKernel::kPrecomputed;
    opts.c = 20.0;
    auto svm = Svm::Train(train, opts, &gram.value());
    if (!svm.ok()) {
      state.SkipWithError(svm.status().ToString().c_str());
      return;
    }
    auto cross = kernel.CrossMatrix(test.features, train.features);
    if (!cross.ok()) {
      state.SkipWithError(cross.status().ToString().c_str());
      return;
    }
    std::vector<int> preds;
    for (size_t i = 0; i < test.size(); ++i) {
      DVector row(train.size());
      for (size_t j = 0; j < train.size(); ++j) {
        row[j] = cross.value()(i, j).real();
      }
      preds.push_back(svm.value().PredictFromKernelRow(row));
    }
    test_acc = Accuracy(test.labels, preds);
  }

  // Circuit-cost columns for this encoding on a representative point.
  Circuit probe = encoding == kAngle ? AngleEncoding(train.features[0])
                  : encoding == kZZ  ? ZZFeatureMap(train.features[0], 2)
                                     : AmplitudeEncoding(train.features[0])
                                           .ValueOrDie();
  state.SetLabel(Label(dataset, encoding));
  state.counters["alignment"] = alignment;
  state.counters["test_acc"] = test_acc;
  state.counters["circuit_depth"] = probe.Depth();
  state.counters["two_qubit_gates"] = probe.TwoQubitGateCount();
  state.counters["qubits"] = probe.num_qubits();
}

BENCHMARK(BM_EncodingQuality)
    ->ArgsProduct({{kCircles, kXor}, {kAngle, kZZ, kAmplitude}})
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

void BM_AmplitudeEncodingCost(benchmark::State& state) {
  // Gate cost of exact amplitude state preparation vs vector length:
  // Θ(2^n) CX gates — the data-loading bottleneck the tutorial flags.
  const int length = static_cast<int>(state.range(0));
  Rng rng(23);
  DVector x(length);
  for (auto& v : x) v = rng.Uniform(0.1, 1.0);
  Circuit circuit = AmplitudeEncoding(x).ValueOrDie();
  for (auto _ : state) {
    benchmark::DoNotOptimize(AmplitudeEncoding(x));
  }
  state.counters["vector_len"] = length;
  state.counters["qubits"] = circuit.num_qubits();
  state.counters["cx_gates"] = circuit.TwoQubitGateCount();
  state.counters["depth"] = circuit.Depth();
}

BENCHMARK(BM_AmplitudeEncodingCost)
    ->Arg(4)
    ->Arg(16)
    ->Arg(64)
    ->Arg(256)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
