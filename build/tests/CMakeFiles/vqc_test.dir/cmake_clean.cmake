file(REMOVE_RECURSE
  "CMakeFiles/vqc_test.dir/vqc_test.cc.o"
  "CMakeFiles/vqc_test.dir/vqc_test.cc.o.d"
  "vqc_test"
  "vqc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vqc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
