#!/usr/bin/env python3
"""Compare two benchmark snapshot JSONs (google-benchmark format).

Prints a per-benchmark before/after table for the names present in both
files and flags regressions where real_time grew by more than the
threshold (default 10%). Exits non-zero when any regression is flagged —
or when a benchmark or rate counter present in the baseline is missing
from the candidate (a vanished metric must not silently dodge the gate) —
so CI and PR workflows can cite the table and fail loudly. Metrics that
exist only in the candidate are the opposite case: a new benchmark or
counter starting its history is reported as an informational addition and
never fails the comparison:

    ./scripts/bench_compare.py BENCH_simulator.json /tmp/new/BENCH_simulator.json
    ./scripts/bench_compare.py --threshold 0.05 old.json new.json

When a benchmark (or one of its counters) was deliberately renamed, map
the baseline name forward instead of losing its history or tripping the
vanished-metric check:

    ./scripts/bench_compare.py --renames 'BM_Old/8=BM_New/8' old.json new.json
    ./scripts/bench_compare.py \
        --renames 'BM_A=BM_B,old_counter=new_counter' old.json new.json

Each mapping is old=new; repeat --renames or separate mappings with
commas. Whole-benchmark names and counter keys share one namespace.
"""

import argparse
import json
import sys


# Throughput counters (bigger is better): a drop beyond the threshold is a
# regression, mirroring the real_time check. The serving suite (E18,
# BENCH_serve.json) reports req_per_s as its primary metric.
RATE_COUNTERS = ("req_per_s",)


def load_benchmarks(path):
    """name -> (real_time, time_unit, counters), keeping the first occurrence.

    Aggregate entries (mean/median/stddev repetitions) are skipped so the
    comparison is raw-run vs raw-run.
    """
    with open(path) as f:
        doc = json.load(f)
    out = {}
    for bench in doc.get("benchmarks", []):
        if bench.get("run_type") == "aggregate":
            continue
        name = bench.get("name")
        if name is None or name in out:
            continue
        counters = {
            key: float(bench[key])
            for key in RATE_COUNTERS
            if isinstance(bench.get(key), (int, float))
        }
        out[name] = (float(bench["real_time"]), bench.get("time_unit", "ns"),
                     counters)
    return out


def parse_renames(entries):
    """old -> new from repeated/comma-separated old=new mappings."""
    renames = {}
    for entry in entries:
        for mapping in entry.split(","):
            mapping = mapping.strip()
            if not mapping:
                continue
            old, sep, new = mapping.partition("=")
            if not sep or not old or not new:
                raise SystemExit(
                    f"--renames mapping '{mapping}' must be old=new")
            if old in renames and renames[old] != new:
                raise SystemExit(
                    f"--renames maps '{old}' to both '{renames[old]}' "
                    f"and '{new}'")
            renames[old] = new
    return renames


def apply_renames(base, renames):
    """Rewrites baseline benchmark names and counter keys to candidate names.

    Only the baseline moves: the candidate defines the current naming, and
    the comparison then lines up as if the baseline had always used it.
    """
    out = {}
    for name, (real_time, unit, counters) in base.items():
        new_name = renames.get(name, name)
        if new_name in out:
            raise SystemExit(
                f"--renames collides: two baseline benchmarks map to "
                f"'{new_name}'")
        new_counters = {}
        for key, value in counters.items():
            new_key = renames.get(key, key)
            if new_key in new_counters:
                raise SystemExit(
                    f"--renames collides: two counters of '{name}' map to "
                    f"'{new_key}'")
            new_counters[new_key] = value
        out[new_name] = (real_time, unit, new_counters)
    return out


def build_context(path):
    """The build type the snapshot was recorded from.

    Prefers the qdb_build_type stamp written by bench_snapshot.sh (the
    build type of this repo's library); context.library_build_type only
    describes how the installed google-benchmark library was compiled.
    """
    with open(path) as f:
        ctx = json.load(f).get("context", {})
    return ctx.get("qdb_build_type",
                   ctx.get("library_build_type", "unknown"))


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline", help="older snapshot JSON")
    parser.add_argument("candidate", help="newer snapshot JSON")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative real_time growth that counts as a regression "
        "(default 0.10 = 10%%)",
    )
    parser.add_argument(
        "--renames",
        action="append",
        default=[],
        metavar="OLD=NEW[,OLD=NEW...]",
        help="map baseline benchmark names / counter keys to their renamed "
        "candidate equivalents before comparing (repeatable)",
    )
    args = parser.parse_args()

    base = load_benchmarks(args.baseline)
    cand = load_benchmarks(args.candidate)
    renames = parse_renames(args.renames)
    if renames:
        base = apply_renames(base, renames)
    shared = sorted(set(base) & set(cand))
    if not shared:
        print("no shared benchmark names between the two snapshots",
              file=sys.stderr)
        return 2

    for path in (args.baseline, args.candidate):
        build = build_context(path)
        if build.lower() != "release":
            print(f"warning: {path} was recorded with "
                  f"library_build_type={build}", file=sys.stderr)

    name_w = max(len(n) for n in shared)
    print(f"{'benchmark':<{name_w}}  {'before':>12}  {'after':>12}  "
          f"{'delta':>8}")
    regressions = []
    missing = []
    added = []
    for name in shared:
        before, unit_b, counters_b = base[name]
        after, unit_a, counters_a = cand[name]
        if unit_b != unit_a:
            print(f"{name:<{name_w}}  (time_unit mismatch: "
                  f"{unit_b} vs {unit_a})")
            continue
        delta = (after - before) / before if before > 0 else float("inf")
        marker = ""
        if delta > args.threshold:
            marker = "  << REGRESSION"
            regressions.append((name, delta))
        print(f"{name:<{name_w}}  {before:>10.1f}{unit_b:<2}  "
              f"{after:>10.1f}{unit_a:<2}  {delta:>+7.1%}{marker}")
        # A counter the baseline reported must not vanish from the
        # candidate: a silently dropped req_per_s would otherwise skip the
        # throughput check entirely.
        for key in sorted(set(counters_b) - set(counters_a)):
            missing.append(f"{name} [{key}] (counter gone from candidate)")
        # A counter only the candidate reports is an *addition* — a new
        # metric starting its history, not a vanished baseline. It is
        # reported for visibility but never fails the gate (there is no
        # baseline value to regress against).
        for key in sorted(set(counters_a) - set(counters_b)):
            added.append(f"{name} [{key}]")
        # Rate counters compare in the opposite direction: a drop is bad.
        for key in sorted(set(counters_b) & set(counters_a)):
            rate_b, rate_a = counters_b[key], counters_a[key]
            if rate_b <= 0:
                continue
            rate_delta = (rate_a - rate_b) / rate_b
            marker = ""
            if rate_delta < -args.threshold:
                marker = "  << REGRESSION"
                regressions.append((f"{name} [{key}]", rate_delta))
            print(f"{'  ' + key:<{name_w}}  {rate_b:>10.1f}/s  "
                  f"{rate_a:>10.1f}/s  {rate_delta:>+7.1%}{marker}")

    only_base = sorted(set(base) - set(cand))
    only_cand = sorted(set(cand) - set(base))
    missing.extend(f"{name} (benchmark gone from candidate)"
                   for name in only_base)
    added.extend(f"{name} (new benchmark)" for name in only_cand)
    if added:
        print(f"\nnew in candidate ({len(added)}, informational): "
              + ", ".join(added[:8])
              + (" …" if len(added) > 8 else ""))

    if missing:
        print(f"\nERROR: {len(missing)} baseline metric(s) disappeared from "
              f"the candidate snapshot:", file=sys.stderr)
        for entry in missing:
            print(f"  {entry}", file=sys.stderr)
        print("A removed benchmark or counter silently exempts itself from "
              "regression checks; rename deliberately (update the baseline "
              "snapshot in the same change) or restore it.", file=sys.stderr)
        return 1

    if regressions:
        print(f"\n{len(regressions)} regression(s) above "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, delta in regressions:
            print(f"  {name}: {delta:+.1%}", file=sys.stderr)
        return 1
    print(f"\nno regressions above {args.threshold:.0%} "
          f"across {len(shared)} shared benchmarks")
    return 0


if __name__ == "__main__":
    sys.exit(main())
