/// \file passes.h
/// \brief Circuit optimization passes: identity removal, adjacent-inverse
/// cancellation, constant-rotation merging, and gate statistics.
///
/// Passes are semantics-preserving: the optimized circuit implements the
/// same unitary (tests verify this against the UnitarySimulator).

#ifndef QDB_CIRCUIT_PASSES_H_
#define QDB_CIRCUIT_PASSES_H_

#include <map>
#include <string>

#include "circuit/circuit.h"

namespace qdb {

/// \brief Drops identity gates and constant rotations with angle ≈ 0.
Circuit RemoveIdentities(const Circuit& circuit, double tol = 1e-12);

/// \brief Cancels adjacent gate pairs that compose to the identity
/// (H·H, X·X, CX·CX, S·S†, constant Rθ·R−θ, ...). Adjacency means no
/// intervening gate touches any operand qubit. Runs to fixpoint.
Circuit CancelAdjacentInverses(const Circuit& circuit, double tol = 1e-12);

/// \brief Merges runs of same-axis constant rotations on identical operands
/// into a single rotation (RZ(a)·RZ(b) → RZ(a+b); likewise RX/RY/RZZ/...).
Circuit MergeRotations(const Circuit& circuit, double tol = 1e-12);

/// \brief Applies the full pipeline (identities → merge → cancel) until the
/// gate count stops shrinking.
Circuit OptimizeCircuit(const Circuit& circuit, double tol = 1e-12);

/// \brief Histogram of gate-name → count.
std::map<std::string, int> GateCounts(const Circuit& circuit);

}  // namespace qdb

#endif  // QDB_CIRCUIT_PASSES_H_
