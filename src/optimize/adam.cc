#include "optimize/adam.h"

#include <algorithm>
#include <cmath>

#include "obs/obs.h"

namespace qdb {

Result<OptimizeResult> MinimizeAdam(const Objective& objective,
                                    const GradientFn& gradient,
                                    const DVector& initial,
                                    const AdamOptions& options) {
  if (options.learning_rate <= 0.0) {
    return Status::InvalidArgument("learning rate must be positive");
  }
  if (options.beta1 < 0.0 || options.beta1 >= 1.0 || options.beta2 < 0.0 ||
      options.beta2 >= 1.0) {
    return Status::InvalidArgument("betas must be in [0, 1)");
  }
  QDB_TRACE_SCOPE("Adam::Minimize", "optimize");
  obs::Counter* iteration_counter = obs::GetCounter("optimize.adam.iterations");
  obs::Gauge* loss_gauge = obs::GetGauge("optimize.adam.last_loss");
  OptimizeResult result;
  result.params = initial;
  DVector m(initial.size(), 0.0);
  DVector v(initial.size(), 0.0);

  for (int iter = 1; iter <= options.max_iterations; ++iter) {
    QDB_TRACE_SCOPE("adam.iteration", "optimize");
    QDB_ASSIGN_OR_RETURN(DVector grad, gradient(result.params));
    double grad_inf = 0.0;
    double grad_sq = 0.0;
    for (double g : grad) {
      grad_inf = std::max(grad_inf, std::abs(g));
      grad_sq += g * g;
    }
    if (grad_inf < options.gradient_tolerance) {
      result.converged = true;
      break;
    }
    result.gradient_norm_history.push_back(std::sqrt(grad_sq));
    const double bc1 = 1.0 - std::pow(options.beta1, iter);
    const double bc2 = 1.0 - std::pow(options.beta2, iter);
    for (size_t k = 0; k < result.params.size(); ++k) {
      const double g = k < grad.size() ? grad[k] : 0.0;
      m[k] = options.beta1 * m[k] + (1.0 - options.beta1) * g;
      v[k] = options.beta2 * v[k] + (1.0 - options.beta2) * g * g;
      const double m_hat = m[k] / bc1;
      const double v_hat = v[k] / bc2;
      result.params[k] -=
          options.learning_rate * m_hat / (std::sqrt(v_hat) + options.epsilon);
    }
    ++result.iterations;
    iteration_counter->Increment();
    QDB_ASSIGN_OR_RETURN(double value, objective(result.params));
    result.history.push_back(value);
    loss_gauge->Set(value);
  }
  QDB_ASSIGN_OR_RETURN(result.value, objective(result.params));
  return result;
}

}  // namespace qdb
