/// \file adjoint.h
/// \brief Adjoint (reverse-mode) gradients: all ∂E/∂θ in a single
/// forward+backward sweep over the circuit — the simulator-native method
/// (cf. Jones & Gacon), vs the 2-evaluations-per-parameter cost of the
/// parameter-shift rule. Exact for the same gate classes; benchmarked
/// against parameter shift in E4.

#ifndef QDB_AUTODIFF_ADJOINT_H_
#define QDB_AUTODIFF_ADJOINT_H_

#include "circuit/circuit.h"
#include "common/result.h"
#include "linalg/types.h"
#include "ops/pauli.h"

namespace qdb {

/// \brief Result of an adjoint sweep: the expectation and its gradient.
struct AdjointResult {
  double value = 0.0;  ///< E(θ) = ⟨ψ(θ)|H|ψ(θ)⟩.
  DVector gradient;    ///< ∂E/∂θ_k for every symbolic parameter.
};

/// \brief Computes E and ∇E with one forward pass and one backward pass.
///
/// Method: after the forward pass ψ = U_L…U_1|0⟩, maintain φ = H·ψ and
/// walk the circuit backwards. At each parameterized gate with generator G
/// (U_k = e^{−iθG}), the contribution is ∂E/∂angle = 2·Im⟨φ|G|ψ_k⟩, then
/// both ψ and φ are rewound through U_k†. Chain-rule multipliers from
/// ParamExpr are applied per occurrence.
///
/// Supported parameterized gates: RX/RY/RZ/RXX/RYY/RZZ (Pauli generators)
/// and P/CP/CRX/CRY/CRZ (projected generators). Symbolic parameters inside
/// kU gates return Unimplemented.
Result<AdjointResult> AdjointGradient(const Circuit& circuit,
                                      const PauliSum& observable,
                                      const DVector& params);

}  // namespace qdb

#endif  // QDB_AUTODIFF_ADJOINT_H_
