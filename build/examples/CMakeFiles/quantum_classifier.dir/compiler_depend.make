# Empty compiler generated dependencies file for quantum_classifier.
# This may be replaced when dependencies are built.
