/// \file vqe.h
/// \brief Variational Quantum Eigensolver: minimizes ⟨ψ(θ)|H|ψ(θ)⟩ with
/// parameter-shift gradients and Adam.

#ifndef QDB_VARIATIONAL_VQE_H_
#define QDB_VARIATIONAL_VQE_H_

#include "autodiff/expectation.h"
#include "circuit/circuit.h"
#include "common/result.h"
#include "ops/pauli.h"
#include "optimize/adam.h"
#include "variational/gradient_method.h"

namespace qdb {

/// \brief Configuration for a VQE run.
struct VqeOptions {
  AdamOptions adam;
  GradientMethod gradient = GradientMethod::kAdjoint;
  uint64_t seed = 11;        ///< Seed for the initial parameter draw.
  double init_scale = 0.1;   ///< Initial parameters ~ U(−scale, scale).
};

/// \brief Outcome of a VQE run.
struct VqeResult {
  double energy = 0.0;       ///< Best variational energy found.
  DVector params;            ///< Parameters achieving it.
  DVector history;           ///< Energy per optimizer iteration.
  DVector gradient_norms;    ///< ‖∇E‖₂ per optimizer iteration.
  long circuit_evaluations = 0;
};

/// \brief Runs VQE for `hamiltonian` over the given ansatz.
Result<VqeResult> RunVqe(const Circuit& ansatz, const PauliSum& hamiltonian,
                         const VqeOptions& options = {});

/// \brief Exact ground-state energy by dense diagonalization (small n),
/// for validating VQE results.
Result<double> ExactGroundStateEnergy(const PauliSum& hamiltonian);

}  // namespace qdb

#endif  // QDB_VARIATIONAL_VQE_H_
