#include "db/join_order_qubo.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/strings.h"

namespace qdb {

int JoinOrderQubo::VarIndex(int relation, int position) const {
  QDB_CHECK_GE(relation, 0);
  QDB_CHECK_LT(relation, num_relations_);
  QDB_CHECK_GE(position, 0);
  QDB_CHECK_LT(position, num_relations_);
  return relation * num_relations_ + position;
}

Result<JoinOrderQubo> JoinOrderQubo::Create(
    const JoinQueryGraph& graph, const JoinOrderQuboOptions& options) {
  const int n = graph.num_relations();
  if (n > 16) {
    return Status::InvalidArgument(
        StrCat("join-order QUBO limited to 16 relations (", n * n,
               " variables), got ", n));
  }
  auto var = [n](int r, int p) { return r * n + p; };

  // Log-domain weights of the surrogate objective.
  std::vector<double> w_rel(n);
  for (int r = 0; r < n; ++r) w_rel[r] = std::log2(graph.cardinality(r));
  // max_r (w_r + Σ_{edges at r} |w_e|) bounds one prefix's sensitivity to
  // relation r; (n−1)× that bounds the whole objective's sensitivity.
  std::vector<double> sensitivity(w_rel);
  for (const auto& e : graph.edges()) {
    const double we = std::abs(std::log2(e.selectivity));
    sensitivity[e.a] += we;
    sensitivity[e.b] += we;
  }
  double max_sensitivity = 0.0;
  for (double s : sensitivity) max_sensitivity = std::max(max_sensitivity, s);
  const double penalty = options.penalty_weight > 0.0
                             ? options.penalty_weight
                             : (n - 1) * max_sensitivity + 1.0;

  Qubo qubo(n * n);

  // Objective, linear part: relation r placed at position q contributes its
  // log-cardinality to every prefix p ≥ max(q, 1).
  for (int r = 0; r < n; ++r) {
    for (int q = 0; q < n; ++q) {
      const int reach = n - std::max(q, 1);
      if (reach > 0) qubo.AddLinear(var(r, q), w_rel[r] * reach);
    }
  }
  // Objective, quadratic part: an internal join edge contributes its
  // log-selectivity to every prefix containing both endpoints.
  for (const auto& e : graph.edges()) {
    const double we = std::log2(e.selectivity);
    for (int q = 0; q < n; ++q) {
      for (int q2 = 0; q2 < n; ++q2) {
        const int reach = n - std::max({q, q2, 1});
        if (reach > 0) {
          qubo.AddQuadratic(var(e.a, q), var(e.b, q2), we * reach);
        }
      }
    }
  }
  // One-hot penalties: each relation at exactly one position...
  for (int r = 0; r < n; ++r) {
    qubo.AddOffset(penalty);
    for (int p = 0; p < n; ++p) {
      qubo.AddLinear(var(r, p), -penalty);
      for (int p2 = p + 1; p2 < n; ++p2) {
        qubo.AddQuadratic(var(r, p), var(r, p2), 2.0 * penalty);
      }
    }
  }
  // ...and each position holding exactly one relation.
  for (int p = 0; p < n; ++p) {
    qubo.AddOffset(penalty);
    for (int r = 0; r < n; ++r) {
      qubo.AddLinear(var(r, p), -penalty);
      for (int r2 = r + 1; r2 < n; ++r2) {
        qubo.AddQuadratic(var(r, p), var(r2, p), 2.0 * penalty);
      }
    }
  }

  return JoinOrderQubo(n, penalty, std::move(qubo));
}

bool JoinOrderQubo::IsValid(const std::vector<uint8_t>& bits) const {
  QDB_CHECK_EQ(static_cast<int>(bits.size()), num_relations_ * num_relations_);
  const int n = num_relations_;
  for (int r = 0; r < n; ++r) {
    int count = 0;
    for (int p = 0; p < n; ++p) count += bits[r * n + p];
    if (count != 1) return false;
  }
  for (int p = 0; p < n; ++p) {
    int count = 0;
    for (int r = 0; r < n; ++r) count += bits[r * n + p];
    if (count != 1) return false;
  }
  return true;
}

std::vector<int> JoinOrderQubo::Decode(const std::vector<uint8_t>& bits) const {
  QDB_CHECK_EQ(static_cast<int>(bits.size()), num_relations_ * num_relations_);
  const int n = num_relations_;
  std::vector<int> order(n, -1);
  std::vector<bool> used(n, false);
  // First pass: honor unambiguous placements.
  for (int p = 0; p < n; ++p) {
    int chosen = -1;
    for (int r = 0; r < n; ++r) {
      if (!bits[r * n + p]) continue;
      if (chosen >= 0 || used[r]) {
        chosen = -2;  // Conflict: leave for repair.
        break;
      }
      chosen = r;
    }
    if (chosen >= 0) {
      order[p] = chosen;
      used[chosen] = true;
    }
  }
  // Repair pass: fill gaps with unused relations in index order.
  int next_unused = 0;
  for (int p = 0; p < n; ++p) {
    if (order[p] >= 0) continue;
    while (used[next_unused]) ++next_unused;
    order[p] = next_unused;
    used[next_unused] = true;
  }
  return order;
}

}  // namespace qdb
