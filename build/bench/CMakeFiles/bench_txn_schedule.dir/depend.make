# Empty dependencies file for bench_txn_schedule.
# This may be replaced when dependencies are built.
