/// \file parallel_tempering.h
/// \brief Parallel tempering (replica-exchange Monte Carlo) — the strongest
/// standard classical sampler, added as the third point of comparison in
/// the annealer study (E12): K replicas at a temperature ladder exchange
/// configurations, letting hot replicas carry cold ones across barriers.

#ifndef QDB_ANNEAL_PARALLEL_TEMPERING_H_
#define QDB_ANNEAL_PARALLEL_TEMPERING_H_

#include "anneal/types.h"
#include "common/result.h"
#include "ops/ising.h"

namespace qdb {

/// \brief Parallel-tempering ladder and budget.
struct PtOptions {
  int num_replicas = 12;       ///< Temperature rungs.
  int num_sweeps = 1000;       ///< Metropolis sweeps (each followed by a
                               ///< neighbor-exchange attempt round).
  double beta_min = 0.1;       ///< Hottest rung (× scale⁻¹).
  double beta_max = 10.0;      ///< Coldest rung.
  bool scale_to_coefficients = true;  ///< Normalize by max |coefficient|.
  uint64_t seed = 53;
};

/// \brief Runs replica-exchange Monte Carlo and returns the best
/// configuration observed on any rung.
Result<SolveResult> ParallelTempering(const IsingModel& model,
                                      const PtOptions& options = {});

}  // namespace qdb

#endif  // QDB_ANNEAL_PARALLEL_TEMPERING_H_
