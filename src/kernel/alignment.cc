#include "kernel/alignment.h"

#include <cmath>

#include "common/strings.h"

namespace qdb {
namespace {

Status ValidateInputs(const Matrix& gram, const std::vector<int>& labels) {
  if (gram.rows() != gram.cols() || gram.rows() == 0) {
    return Status::InvalidArgument("Gram matrix must be square and non-empty");
  }
  if (labels.size() != gram.rows()) {
    return Status::InvalidArgument(
        StrCat("label count ", labels.size(), " != Gram size ", gram.rows()));
  }
  for (int y : labels) {
    if (y != 1 && y != -1) {
      return Status::InvalidArgument("labels must be +1 or -1");
    }
  }
  return Status::OK();
}

/// Frobenius inner products against yyᵀ computed without materializing yyᵀ.
double AlignmentOf(const Matrix& k, const std::vector<int>& labels) {
  const size_t n = k.rows();
  double k_dot_t = 0.0;  // ⟨K, yyᵀ⟩
  double k_norm_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double v = k(i, j).real();
      k_dot_t += v * labels[i] * labels[j];
      k_norm_sq += v * v;
    }
  }
  const double t_norm = static_cast<double>(n);  // ‖yyᵀ‖_F = n for ±1 labels.
  const double denom = std::sqrt(k_norm_sq) * t_norm;
  return denom > 0.0 ? k_dot_t / denom : 0.0;
}

}  // namespace

Result<double> KernelTargetAlignment(const Matrix& gram,
                                     const std::vector<int>& labels) {
  QDB_RETURN_IF_ERROR(ValidateInputs(gram, labels));
  return AlignmentOf(gram, labels);
}

Result<Matrix> CenterKernel(const Matrix& gram) {
  if (gram.rows() != gram.cols() || gram.rows() == 0) {
    return Status::InvalidArgument("Gram matrix must be square and non-empty");
  }
  const size_t n = gram.rows();
  // (HKH)_ij = K_ij − rowmean_i − colmean_j + grandmean.
  DVector row_mean(n, 0.0);
  double grand = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) row_mean[i] += gram(i, j).real();
    row_mean[i] /= static_cast<double>(n);
    grand += row_mean[i];
  }
  grand /= static_cast<double>(n);
  Matrix centered(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      centered(i, j) =
          Complex(gram(i, j).real() - row_mean[i] - row_mean[j] + grand, 0.0);
    }
  }
  return centered;
}

Result<double> CenteredKernelAlignment(const Matrix& gram,
                                       const std::vector<int>& labels) {
  QDB_RETURN_IF_ERROR(ValidateInputs(gram, labels));
  QDB_ASSIGN_OR_RETURN(Matrix centered_k, CenterKernel(gram));
  // Center the target: yyᵀ centered is (Hy)(Hy)ᵀ with Hy = y − mean(y).
  const size_t n = labels.size();
  double mean = 0.0;
  for (int y : labels) mean += y;
  mean /= static_cast<double>(n);
  DVector centered_y(n);
  for (size_t i = 0; i < n; ++i) centered_y[i] = labels[i] - mean;

  double k_dot_t = 0.0, k_norm_sq = 0.0, t_norm_sq = 0.0;
  for (size_t i = 0; i < n; ++i) {
    t_norm_sq += centered_y[i] * centered_y[i];
  }
  t_norm_sq *= t_norm_sq;  // ‖(Hy)(Hy)ᵀ‖_F² = (‖Hy‖²)².
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      const double v = centered_k(i, j).real();
      k_dot_t += v * centered_y[i] * centered_y[j];
      k_norm_sq += v * v;
    }
  }
  const double denom = std::sqrt(k_norm_sq) * std::sqrt(t_norm_sq);
  return denom > 0.0 ? k_dot_t / denom : 0.0;
}

}  // namespace qdb
