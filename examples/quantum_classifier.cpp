// Quantum machine learning for classification: a variational quantum
// classifier and a quantum-kernel SVM on the moons dataset, against a
// classical logistic-regression baseline (the E2/E3 story in one program).

#include <cmath>
#include <cstdio>

#include "classical/logistic.h"
#include "classical/metrics.h"
#include "classical/svm.h"
#include "kernel/quantum_kernel.h"
#include "variational/vqc.h"

int main() {
  using namespace qdb;

  Rng rng(11);
  Dataset all = MakeMoons(48, 0.12, rng);
  auto [train, test] = TrainTestSplit(all, 0.25, rng);
  MinMaxScale(train, test, 0.0, M_PI);
  MinMaxScale(train, train, 0.0, M_PI);
  std::printf("moons: %zu train / %zu test samples, 2 features\n\n",
              train.size(), test.size());

  auto report = [&](const char* name, auto&& predict) {
    std::vector<int> train_preds, test_preds;
    for (const auto& x : train.features) train_preds.push_back(predict(x));
    for (const auto& x : test.features) test_preds.push_back(predict(x));
    std::printf("%-22s train %.2f   test %.2f\n", name,
                Accuracy(train.labels, train_preds),
                Accuracy(test.labels, test_preds));
  };

  // Classical linear baseline.
  LogisticRegression logistic = LogisticRegression::Train(train).ValueOrDie();
  report("logistic regression",
         [&](const DVector& x) { return logistic.Predict(x); });

  // Variational quantum classifier with data re-uploading.
  VqcOptions vqc_options;
  vqc_options.encoding = VqcEncoding::kReuploading;
  vqc_options.ansatz_layers = 3;
  vqc_options.adam.max_iterations = 100;
  vqc_options.adam.learning_rate = 0.15;
  VqcClassifier vqc = VqcClassifier::Train(train, vqc_options).ValueOrDie();
  report("VQC (re-uploading)",
         [&](const DVector& x) { return vqc.Predict(x).ValueOrDie(); });
  std::printf("  (trained with %ld circuit evaluations)\n",
              vqc.circuit_evaluations());

  // Quantum-kernel SVM: fidelity kernel of the ZZ feature map.
  FidelityQuantumKernel kernel = MakeZZFeatureMapKernel(2);
  Matrix gram = kernel.GramMatrix(train.features).ValueOrDie();
  SvmOptions svm_options;
  svm_options.kernel = SvmKernel::kPrecomputed;
  svm_options.c = 20.0;
  Svm svm = Svm::Train(train, svm_options, &gram).ValueOrDie();
  Matrix cross = kernel.CrossMatrix(test.features, train.features).ValueOrDie();

  std::vector<int> test_preds;
  for (size_t i = 0; i < test.size(); ++i) {
    DVector row(train.size());
    for (size_t j = 0; j < train.size(); ++j) row[j] = cross(i, j).real();
    test_preds.push_back(svm.PredictFromKernelRow(row));
  }
  std::printf("%-22s test  %.2f  (%d support vectors)\n", "quantum-kernel SVM",
              Accuracy(test.labels, test_preds), svm.NumSupportVectors());
  return 0;
}
