// Tests for the variational quantum classifier.

#include <gtest/gtest.h>

#include <cmath>

#include "classical/metrics.h"
#include "variational/vqc.h"

namespace qdb {
namespace {

double TrainAccuracy(const VqcClassifier& model, const Dataset& data) {
  std::vector<int> preds;
  for (const auto& x : data.features) {
    auto p = model.Predict(x);
    EXPECT_TRUE(p.ok());
    preds.push_back(p.value());
  }
  return Accuracy(data.labels, preds);
}

TEST(VqcTest, LearnsSeparableBlobs) {
  Rng rng(3);
  Dataset data = MakeBlobs(24, 2, 3.0, 0.4, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  VqcOptions opts;
  opts.ansatz_layers = 1;
  opts.adam.max_iterations = 60;
  opts.adam.learning_rate = 0.2;
  auto model = VqcClassifier::Train(data, opts);
  ASSERT_TRUE(model.ok()) << model.status();
  EXPECT_GE(TrainAccuracy(model.value(), data), 0.9);
  EXPECT_GT(model.value().circuit_evaluations(), 0);
}

TEST(VqcTest, LossHistoryDecreases) {
  Rng rng(5);
  Dataset data = MakeBlobs(16, 2, 3.0, 0.4, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  VqcOptions opts;
  opts.ansatz_layers = 1;
  opts.adam.max_iterations = 40;
  opts.adam.learning_rate = 0.2;
  auto model = VqcClassifier::Train(data, opts);
  ASSERT_TRUE(model.ok());
  const auto& hist = model.value().loss_history();
  ASSERT_GE(hist.size(), 2u);
  EXPECT_LT(hist.back(), hist.front());
}

TEST(VqcTest, ReuploadingSolvesXor) {
  // Data re-uploading gives the circuit enough nonlinearity for XOR.
  Rng rng(7);
  Dataset data = MakeXor(24, 0.1, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  VqcOptions opts;
  opts.encoding = VqcEncoding::kReuploading;
  opts.ansatz_layers = 3;
  opts.adam.max_iterations = 120;
  opts.adam.learning_rate = 0.15;
  opts.seed = 5;
  auto model = VqcClassifier::Train(data, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(TrainAccuracy(model.value(), data), 0.85);
}

TEST(VqcTest, ScoreIsBoundedExpectation) {
  Rng rng(9);
  Dataset data = MakeBlobs(12, 2, 2.0, 0.5, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  VqcOptions opts;
  opts.adam.max_iterations = 10;
  auto model = VqcClassifier::Train(data, opts);
  ASSERT_TRUE(model.ok());
  for (const auto& x : data.features) {
    auto score = model.value().Score(x);
    ASSERT_TRUE(score.ok());
    EXPECT_GE(score.value(), -1.0 - 1e-9);
    EXPECT_LE(score.value(), 1.0 + 1e-9);
  }
}

TEST(VqcTest, ZZFeatureMapEncodingTrains) {
  Rng rng(11);
  Dataset data = MakeBlobs(12, 2, 3.0, 0.4, rng);
  MinMaxScale(data, data, 0.0, 1.0);
  VqcOptions opts;
  opts.encoding = VqcEncoding::kZZFeatureMap;
  opts.ansatz_layers = 1;
  opts.adam.max_iterations = 40;
  auto model = VqcClassifier::Train(data, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_GE(TrainAccuracy(model.value(), data), 0.7);
}

TEST(VqcTest, BuildCircuitWidthMatchesFeatures) {
  Rng rng(13);
  Dataset data = MakeBlobs(8, 3, 3.0, 0.4, rng);
  MinMaxScale(data, data, 0.0, M_PI);
  VqcOptions opts;
  opts.adam.max_iterations = 2;
  auto model = VqcClassifier::Train(data, opts);
  ASSERT_TRUE(model.ok());
  Circuit c = model.value().BuildCircuit(data.features[0]);
  EXPECT_EQ(c.num_qubits(), 3);
  EXPECT_GT(c.num_parameters(), 0);
}

TEST(VqcTest, InputValidation) {
  Dataset tiny;
  tiny.features = {{0.1, 0.2}};
  tiny.labels = {1};
  EXPECT_FALSE(VqcClassifier::Train(tiny, {}).ok());

  Rng rng(15);
  Dataset bad_labels = MakeBlobs(8, 2, 2.0, 0.4, rng);
  bad_labels.labels[0] = 0;
  EXPECT_FALSE(VqcClassifier::Train(bad_labels, {}).ok());

  Dataset ok = MakeBlobs(8, 2, 2.0, 0.4, rng);
  VqcOptions bad_layers;
  bad_layers.ansatz_layers = 0;
  EXPECT_FALSE(VqcClassifier::Train(ok, bad_layers).ok());
}

TEST(VqcTest, PredictRejectsWrongDimension) {
  Rng rng(17);
  Dataset data = MakeBlobs(8, 2, 3.0, 0.4, rng);
  VqcOptions opts;
  opts.adam.max_iterations = 2;
  auto model = VqcClassifier::Train(data, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE(model.value().Predict({0.1}).ok());
  EXPECT_FALSE(model.value().Score({0.1, 0.2, 0.3}).ok());
}

}  // namespace
}  // namespace qdb
