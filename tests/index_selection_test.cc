// Tests for the index-selection QUBO.

#include <gtest/gtest.h>

#include "anneal/exhaustive.h"
#include "anneal/simulated_annealing.h"
#include "db/index_selection.h"

namespace qdb {
namespace {

IndexSelectionInstance HandInstance() {
  // Knapsack-like: budget 10; best = {0, 2} with benefit 90.
  IndexSelectionInstance inst;
  inst.benefits = {50.0, 45.0, 40.0};
  inst.sizes = {5.0, 8.0, 4.0};
  inst.budget = 10.0;
  return inst;
}

TEST(IndexInstanceTest, BenefitAndFeasibility) {
  IndexSelectionInstance inst = HandInstance();
  EXPECT_NEAR(inst.BenefitOf({1, 0, 1}), 90.0, 1e-12);
  EXPECT_NEAR(inst.SizeOf({1, 0, 1}), 9.0, 1e-12);
  EXPECT_TRUE(inst.Feasible({1, 0, 1}));
  EXPECT_FALSE(inst.Feasible({1, 1, 0}));  // 13 > 10.
}

TEST(IndexInstanceTest, InteractionsReduceBenefit) {
  IndexSelectionInstance inst = HandInstance();
  inst.interactions.push_back({0, 2, -30.0});
  EXPECT_NEAR(inst.BenefitOf({1, 0, 1}), 60.0, 1e-12);
  EXPECT_NEAR(inst.BenefitOf({1, 0, 0}), 50.0, 1e-12);
}

TEST(IndexExhaustiveTest, FindsKnapsackOptimum) {
  IndexSelectionInstance inst = HandInstance();
  auto best = ExhaustiveIndexBenefit(inst);
  ASSERT_TRUE(best.ok());
  EXPECT_NEAR(best.value(), 90.0, 1e-12);
}

TEST(IndexGreedyTest, RatioGreedyIsFeasible) {
  Rng rng(3);
  IndexSelectionInstance inst = RandomIndexInstance(10, 0.4, 0.1, rng);
  std::vector<uint8_t> selection = GreedyIndexSelection(inst);
  EXPECT_TRUE(inst.Feasible(selection));
  auto exact = ExhaustiveIndexBenefit(inst);
  ASSERT_TRUE(exact.ok());
  EXPECT_LE(inst.BenefitOf(selection), exact.value() + 1e-9);
}

TEST(IndexQuboTest, GroundStateMatchesExhaustiveOptimum) {
  IndexSelectionInstance inst = HandInstance();
  auto qubo = IndexSelectionQubo::Create(inst);
  ASSERT_TRUE(qubo.ok());
  auto ground = ExhaustiveSolveQubo(qubo.value().qubo());
  ASSERT_TRUE(ground.ok());
  std::vector<uint8_t> selection =
      qubo.value().Decode(SpinsToBits(ground.value().best_spins));
  EXPECT_TRUE(inst.Feasible(selection));
  EXPECT_NEAR(inst.BenefitOf(selection), 90.0, 1e-9);
}

TEST(IndexQuboTest, GroundStateWithInteractions) {
  Rng rng(5);
  IndexSelectionInstance inst = RandomIndexInstance(6, 0.5, 0.3, rng);
  auto qubo = IndexSelectionQubo::Create(inst);
  ASSERT_TRUE(qubo.ok());
  auto ground = ExhaustiveSolveQubo(qubo.value().qubo());
  ASSERT_TRUE(ground.ok());
  std::vector<uint8_t> selection =
      qubo.value().Decode(SpinsToBits(ground.value().best_spins));
  EXPECT_TRUE(inst.Feasible(selection));
  auto exact = ExhaustiveIndexBenefit(inst);
  ASSERT_TRUE(exact.ok());
  // The slack encoding is exact for integer sizes, so the optimum matches.
  EXPECT_NEAR(inst.BenefitOf(selection), exact.value(), 1e-6);
}

TEST(IndexQuboTest, DecodeRepairsOverflow) {
  IndexSelectionInstance inst = HandInstance();
  auto qubo = IndexSelectionQubo::Create(inst).value();
  std::vector<uint8_t> bits(qubo.qubo().num_vars(), 0);
  bits[0] = bits[1] = bits[2] = 1;  // Size 17 > 10: infeasible.
  std::vector<uint8_t> selection = qubo.Decode(bits);
  EXPECT_TRUE(inst.Feasible(selection));
}

TEST(IndexQuboTest, AnnealingApproachesOptimum) {
  Rng rng(7);
  IndexSelectionInstance inst = RandomIndexInstance(8, 0.4, 0.2, rng);
  auto qubo = IndexSelectionQubo::Create(inst);
  ASSERT_TRUE(qubo.ok());
  SaOptions opts;
  opts.num_sweeps = 1000;
  opts.num_restarts = 4;
  auto annealed = SimulatedAnnealing(qubo.value().qubo().ToIsing(), opts);
  ASSERT_TRUE(annealed.ok());
  std::vector<uint8_t> selection =
      qubo.value().Decode(SpinsToBits(annealed.value().best_spins));
  auto exact = ExhaustiveIndexBenefit(inst);
  ASSERT_TRUE(exact.ok());
  EXPECT_TRUE(inst.Feasible(selection));
  EXPECT_GE(inst.BenefitOf(selection), 0.85 * exact.value());
}

TEST(IndexQuboTest, Validation) {
  IndexSelectionInstance empty;
  EXPECT_FALSE(IndexSelectionQubo::Create(empty).ok());
  IndexSelectionInstance bad = HandInstance();
  bad.budget = 0.0;
  EXPECT_FALSE(IndexSelectionQubo::Create(bad).ok());
  IndexSelectionInstance neg = HandInstance();
  neg.sizes[0] = -1.0;
  EXPECT_FALSE(IndexSelectionQubo::Create(neg).ok());
  IndexSelectionInstance bad_inter = HandInstance();
  bad_inter.interactions.push_back({0, 0, -1.0});
  EXPECT_FALSE(IndexSelectionQubo::Create(bad_inter).ok());
}

}  // namespace
}  // namespace qdb
