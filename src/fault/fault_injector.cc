#include "fault/fault_injector.h"

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <set>
#include <sstream>
#include <thread>

#include "common/strings.h"
#include "obs/obs.h"

namespace qdb {
namespace fault {

namespace {

/// fault.* metric handles, resolved once.
struct FaultMetrics {
  obs::Gauge* points_armed = obs::GetGauge("fault.points_armed");
  obs::Counter* evaluations = obs::GetCounter("fault.evaluations");
  obs::Counter* injected_error = obs::GetCounter("fault.injected.error");
  obs::Counter* injected_latency = obs::GetCounter("fault.injected.latency");
  obs::Counter* injected_torn = obs::GetCounter("fault.injected.torn_write");
  obs::Counter* injected_wake =
      obs::GetCounter("fault.injected.spurious_wake");
  obs::Counter* injected_kill = obs::GetCounter("fault.injected.kill");
  /// QDB_FAULTS specs naming a point this binary never registered.
  obs::Counter* unknown_point = obs::GetCounter("fault.unknown_point");
};

FaultMetrics& Metrics() {
  static FaultMetrics metrics;
  return metrics;
}

obs::Counter* FiredCounter(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError: return Metrics().injected_error;
    case FaultKind::kLatency: return Metrics().injected_latency;
    case FaultKind::kTornWrite: return Metrics().injected_torn;
    case FaultKind::kSpuriousWake: return Metrics().injected_wake;
    case FaultKind::kKill: return Metrics().injected_kill;
  }
  return Metrics().injected_error;
}

/// Fault points compiled into this binary. Call sites declare points as
/// string literals, so this list is maintained alongside them (fault_test
/// pins the names that matter to chaos profiles).
std::set<std::string>& KnownPoints() {
  static std::set<std::string>* points = new std::set<std::string>{
      "artifact.load",          // model_registry.cc LoadModel retry loop
      "artifact.save",          // binary_format.cc AtomicWriteFile
      "serve.dispatch",         // inference_server.cc batch execution
      "serve.queue_wait",       // inference_server.cc dispatcher cv wait
      "servable.compiled_exec", // servable.cc compiled-circuit execution
      "servable.run",           // servable.cc batch run
      "sim.run",                // simulator execution
      "store.journal.append",   // registry_journal.cc record append
      "store.journal.compact",  // registry_journal.cc snapshot→reset window
      "store.journal.replay",   // registry_journal.cc journal read at Open
      "store.prefetch",         // async_loader.cc worker jobs
      "store.read",             // binary_format.cc ReadFileBytes
  };
  return *points;
}

std::mutex& KnownPointsMu() {
  static std::mutex* mu = new std::mutex();
  return *mu;
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream is(text);
  while (std::getline(is, part, sep)) parts.push_back(part);
  return parts;
}

Result<double> ParseDoubleField(const std::string& raw, const char* what) {
  std::istringstream is(raw);
  double v = 0.0;
  if (!(is >> v) || !is.eof()) {
    return Status::InvalidArgument(
        StrCat("fault spec: '", raw, "' is not a valid ", what));
  }
  return v;
}

Result<long long> ParseIntField(const std::string& raw, const char* what) {
  std::istringstream is(raw);
  long long v = 0;
  if (!(is >> v) || !is.eof()) {
    return Status::InvalidArgument(
        StrCat("fault spec: '", raw, "' is not a valid ", what));
  }
  return v;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError: return "error";
    case FaultKind::kLatency: return "latency";
    case FaultKind::kTornWrite: return "torn_write";
    case FaultKind::kSpuriousWake: return "spurious_wake";
    case FaultKind::kKill: return "kill";
  }
  return "error";
}

Result<FaultKind> ParseFaultKind(const std::string& name) {
  if (name == "error") return FaultKind::kError;
  if (name == "latency") return FaultKind::kLatency;
  if (name == "torn_write" || name == "torn") return FaultKind::kTornWrite;
  if (name == "spurious_wake" || name == "wake") {
    return FaultKind::kSpuriousWake;
  }
  if (name == "kill") return FaultKind::kKill;
  return Status::InvalidArgument(
      StrCat("unknown fault kind '", name,
             "' (want error, latency, torn_write, spurious_wake, or kill)"));
}

void KillProcess() {
  // SIGKILL cannot be caught or ignored: no atexit handlers, no stream
  // flushes, no destructors run. The raise only "fails" if signals are
  // broken entirely, in which case abort keeps the promise of not
  // returning.
  std::raise(SIGKILL);
  std::abort();
}

bool IsKnownFaultPoint(const std::string& point) {
  std::lock_guard<std::mutex> lock(KnownPointsMu());
  return KnownPoints().count(point) > 0;
}

void RegisterFaultPoint(const std::string& point) {
  std::lock_guard<std::mutex> lock(KnownPointsMu());
  KnownPoints().insert(point);
}

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(const std::string& point, const FaultSpec& spec) {
  std::lock_guard<std::mutex> lock(mu_);
  ArmedPoint armed;
  armed.spec = spec;
  armed.spec.probability =
      spec.probability < 0.0 ? 0.0 : (spec.probability > 1.0 ? 1.0
                                                             : spec.probability);
  // Split off the point's private stream instead of using the seed state
  // directly: two points armed with the same seed still draw decorrelated
  // sequences, and re-arming resets the stream for reproducible runs.
  Rng base(spec.seed);
  armed.rng = base.Split();
  points_[point] = std::move(armed);
  armed_points_.store(static_cast<int>(points_.size()),
                      std::memory_order_relaxed);
  Metrics().points_armed->Set(static_cast<double>(points_.size()));
}

bool FaultInjector::Disarm(const std::string& point) {
  std::lock_guard<std::mutex> lock(mu_);
  const bool erased = points_.erase(point) > 0;
  armed_points_.store(static_cast<int>(points_.size()),
                      std::memory_order_relaxed);
  Metrics().points_armed->Set(static_cast<double>(points_.size()));
  return erased;
}

void FaultInjector::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  points_.clear();
  armed_points_.store(0, std::memory_order_relaxed);
  Metrics().points_armed->Set(0.0);
}

Status FaultInjector::ArmFromSpecString(const std::string& specs) {
  for (const std::string& entry : SplitOn(specs, ',')) {
    if (entry.empty()) continue;
    const std::vector<std::string> fields = SplitOn(entry, ':');
    if (fields.size() < 4 || fields.size() > 6) {
      return Status::InvalidArgument(
          StrCat("fault spec '", entry,
                 "' must be point:kind:probability:seed[:value][:target]"));
    }
    if (fields[0].empty()) {
      return Status::InvalidArgument(
          StrCat("fault spec '", entry, "' has an empty point name"));
    }
    FaultSpec spec;
    QDB_ASSIGN_OR_RETURN(spec.kind, ParseFaultKind(fields[1]));
    QDB_ASSIGN_OR_RETURN(spec.probability,
                         ParseDoubleField(fields[2], "probability"));
    if (spec.probability < 0.0 || spec.probability > 1.0) {
      return Status::InvalidArgument(
          StrCat("fault spec '", entry, "': probability must be in [0, 1]"));
    }
    QDB_ASSIGN_OR_RETURN(long long seed, ParseIntField(fields[3], "seed"));
    spec.seed = static_cast<uint64_t>(seed);
    if (fields.size() >= 5 && !fields[4].empty()) {
      switch (spec.kind) {
        case FaultKind::kError: {
          QDB_ASSIGN_OR_RETURN(long long code,
                               ParseIntField(fields[4], "status code"));
          if (code <= 0 || code > static_cast<long long>(
                                      StatusCode::kDeadlineExceeded)) {
            return Status::InvalidArgument(
                StrCat("fault spec '", entry, "': status code ", code,
                       " is not an error code"));
          }
          spec.error_code = static_cast<StatusCode>(code);
          break;
        }
        case FaultKind::kLatency: {
          QDB_ASSIGN_OR_RETURN(long long us,
                               ParseIntField(fields[4], "latency"));
          if (us < 0) {
            return Status::InvalidArgument(
                StrCat("fault spec '", entry, "': latency must be >= 0"));
          }
          spec.latency_us = static_cast<long>(us);
          break;
        }
        case FaultKind::kTornWrite:
        case FaultKind::kKill: {
          // For kill faults the fraction is how much of the payload a write
          // site persists before the SIGKILL lands.
          QDB_ASSIGN_OR_RETURN(spec.keep_fraction,
                               ParseDoubleField(fields[4], "keep fraction"));
          if (spec.keep_fraction < 0.0 || spec.keep_fraction > 1.0) {
            return Status::InvalidArgument(StrCat(
                "fault spec '", entry, "': keep fraction must be in [0, 1]"));
          }
          break;
        }
        case FaultKind::kSpuriousWake:
          break;  // No value field.
      }
    }
    if (fields.size() == 6) spec.target = fields[5];
    Arm(fields[0], spec);
  }
  return Status::OK();
}

Status FaultInjector::ArmFromEnv() {
  const char* env = std::getenv("QDB_FAULTS");
  if (env == nullptr || env[0] == '\0') return Status::OK();
  QDB_RETURN_IF_ERROR(ArmFromSpecString(env));
  // A typo'd point name parses fine and arms fine — and then never fires,
  // which reads as "the system survived chaos" when no chaos ran. Warn
  // loudly instead of silently blessing the run. The point stays armed: an
  // out-of-tree call site may still know it.
  for (const std::string& entry : SplitOn(env, ',')) {
    if (entry.empty()) continue;
    const std::string point = SplitOn(entry, ':').front();
    if (IsKnownFaultPoint(point)) continue;
    std::fprintf(stderr,
                 "warning: QDB_FAULTS names fault point '%s', which no call "
                 "site in this binary registers — it will never fire\n",
                 point.c_str());
    Metrics().unknown_point->Increment();
  }
  return Status::OK();
}

std::optional<FaultSpec> FaultInjector::Sample(const char* point,
                                               const std::string& scope) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  if (it == points_.end()) return std::nullopt;
  ArmedPoint& armed = it->second;
  if (!armed.spec.target.empty() && armed.spec.target != scope) {
    return std::nullopt;  // Filtered out: consumes no draw.
  }
  ++armed.evaluations;
  Metrics().evaluations->Increment();
  if (!armed.rng.Bernoulli(armed.spec.probability)) return std::nullopt;
  ++armed.fired;
  FiredCounter(armed.spec.kind)->Increment();
  return armed.spec;
}

Status FaultInjector::Inject(const char* point, const std::string& scope) {
  std::optional<FaultSpec> fired = Sample(point, scope);
  if (!fired.has_value()) return Status::OK();
  switch (fired->kind) {
    case FaultKind::kError:
      return Status(fired->error_code,
                    StrCat("injected fault at '", point, "'"));
    case FaultKind::kLatency:
      std::this_thread::sleep_for(
          std::chrono::microseconds(fired->latency_us));
      return Status::OK();
    case FaultKind::kKill:
      // A generic point has no payload to half-write: the process dies on
      // the spot. Write sites that want the partial-persist flavor handle
      // kKill themselves via Sample.
      KillProcess();
    case FaultKind::kTornWrite:
    case FaultKind::kSpuriousWake:
      // These kinds need call-site cooperation (Sample); a generic point
      // treats them as a no-op rather than failing spuriously.
      return Status::OK();
  }
  return Status::OK();
}

FaultInjector::PointStats FaultInjector::stats(
    const std::string& point) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = points_.find(point);
  PointStats stats;
  if (it != points_.end()) {
    stats.evaluations = it->second.evaluations;
    stats.fired = it->second.fired;
  }
  return stats;
}

std::vector<std::string> FaultInjector::ArmedPoints() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(points_.size());
  for (const auto& [name, armed] : points_) names.push_back(name);
  return names;
}

std::vector<FaultInjector::ArmedPointStatus> FaultInjector::SnapshotArmed()
    const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ArmedPointStatus> out;
  out.reserve(points_.size());
  for (const auto& [name, armed] : points_) {
    ArmedPointStatus status;
    status.point = name;
    status.spec = armed.spec;
    status.evaluations = armed.evaluations;
    status.fired = armed.fired;
    out.push_back(std::move(status));
  }
  return out;  // std::map iteration is already name-sorted.
}

}  // namespace fault
}  // namespace qdb
