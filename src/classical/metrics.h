/// \file metrics.h
/// \brief Classification metrics shared by the experiment harnesses.

#ifndef QDB_CLASSICAL_METRICS_H_
#define QDB_CLASSICAL_METRICS_H_

#include <vector>

#include "linalg/types.h"

namespace qdb {

/// Fraction of positions where predictions match labels (entries ±1).
double Accuracy(const std::vector<int>& labels,
                const std::vector<int>& predictions);

/// \brief 2x2 confusion counts for ±1 labels (+1 = positive class).
struct ConfusionMatrix {
  int true_positive = 0;
  int false_positive = 0;
  int true_negative = 0;
  int false_negative = 0;

  double Precision() const;
  double Recall() const;
  double F1() const;
};

ConfusionMatrix Confusion(const std::vector<int>& labels,
                          const std::vector<int>& predictions);

/// Mean squared error between real-valued scores and ±1 labels.
double MeanSquaredError(const std::vector<int>& labels, const DVector& scores);

}  // namespace qdb

#endif  // QDB_CLASSICAL_METRICS_H_
