// E16 — Learned cardinality estimation with a quantum regressor.
//
// Regenerates the learned-estimator comparison on correlated data: median
// and p90 q-error of (a) the variational quantum regressor trained on
// observed queries, (b) the attribute-independence histogram estimator,
// and (c) uniform row sampling, as inter-column correlation grows.
// Expected shape: at zero correlation the independence estimator is
// essentially exact and nothing beats it; as correlation rises its q-error
// explodes while the learned (quantum) model — which sees true
// selectivities during training — stays bounded, mirroring the classical
// learned-cardinality literature with a small quantum model in place of
// the neural estimator.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>

#include "db/cardinality.h"
#include "variational/vqr.h"

namespace qdb {
namespace {

struct Workload {
  SyntheticTable table;
  std::vector<RangeQuery> train_queries;
  std::vector<RangeQuery> test_queries;
  DVector train_targets;
};

/// Anti-diagonal box: low range on column 0, high range on column 1 — the
/// query class where positive correlation makes the independence
/// assumption fail hardest (true selectivity ≪ product of marginals).
RangeQuery AntiDiagonalQuery(Rng& rng) {
  RangeQuery q;
  const double w0 = rng.Uniform(0.15, 0.45);
  const double w1 = rng.Uniform(0.15, 0.45);
  q.lo = {rng.Uniform(0.0, 0.5 - w0 / 2), 0.0};
  q.hi = {q.lo[0] + w0, 0.0};
  q.hi[1] = rng.Uniform(0.5 + w1 / 2, 1.0);
  q.lo[1] = q.hi[1] - w1;
  return q;
}

Workload MakeWorkload(double correlation, uint64_t seed) {
  Rng rng(seed);
  Workload w;
  w.table = MakeCorrelatedTable(4000, 2, correlation, rng);
  // Half uncorrelated random boxes, half anti-diagonal boxes — the mix the
  // learned-cardinality literature stresses.
  for (int i = 0; i < 48; ++i) {
    RangeQuery q = (i % 2 == 0) ? RandomRangeQuery(2, rng, 0.05)
                                : AntiDiagonalQuery(rng);
    w.train_queries.push_back(q);
    w.train_targets.push_back(
        SelectivityToTarget(q.TrueSelectivity(w.table)));
  }
  for (int i = 0; i < 24; ++i) {
    w.test_queries.push_back((i % 2 == 0) ? RandomRangeQuery(2, rng, 0.05)
                                          : AntiDiagonalQuery(rng));
  }
  return w;
}

struct QErrorStats {
  double median = 0.0;
  double p90 = 0.0;
};

QErrorStats Summarize(DVector errors) {
  std::sort(errors.begin(), errors.end());
  QErrorStats s;
  s.median = errors[errors.size() / 2];
  s.p90 = errors[static_cast<size_t>(0.9 * (errors.size() - 1))];
  return s;
}

void BM_VqrCardinality(benchmark::State& state) {
  const double correlation = static_cast<double>(state.range(0)) / 100.0;
  Workload w = MakeWorkload(correlation, 71);

  QErrorStats stats;
  for (auto _ : state) {
    std::vector<DVector> features;
    for (const auto& q : w.train_queries) features.push_back(q.ToFeatures());
    VqrOptions opts;
    opts.ansatz_layers = 3;
    opts.feature_scale = M_PI;  // Features live in [0, 1].
    opts.adam.max_iterations = 140;
    opts.adam.learning_rate = 0.12;
    auto model = VqrRegressor::Train(features, w.train_targets, opts);
    if (!model.ok()) {
      state.SkipWithError(model.status().ToString().c_str());
      return;
    }
    DVector errors;
    for (const auto& q : w.test_queries) {
      const double target =
          model.value().Predict(q.ToFeatures()).ValueOrDie();
      const double estimate = TargetToSelectivity(target);
      errors.push_back(QError(estimate, q.TrueSelectivity(w.table)));
    }
    stats = Summarize(std::move(errors));
  }
  state.SetLabel("vqr (learned)");
  state.counters["correlation_pct"] = correlation * 100;
  state.counters["median_qerror"] = stats.median;
  state.counters["p90_qerror"] = stats.p90;
}

void BM_IndependenceCardinality(benchmark::State& state) {
  const double correlation = static_cast<double>(state.range(0)) / 100.0;
  Workload w = MakeWorkload(correlation, 71);
  QErrorStats stats;
  for (auto _ : state) {
    auto est = IndependenceEstimator::Build(w.table, 32);
    DVector errors;
    for (const auto& q : w.test_queries) {
      errors.push_back(QError(est.Estimate(q), q.TrueSelectivity(w.table)));
    }
    stats = Summarize(std::move(errors));
  }
  state.SetLabel("independence histograms");
  state.counters["correlation_pct"] = correlation * 100;
  state.counters["median_qerror"] = stats.median;
  state.counters["p90_qerror"] = stats.p90;
}

void BM_SamplingCardinality(benchmark::State& state) {
  const double correlation = static_cast<double>(state.range(0)) / 100.0;
  Workload w = MakeWorkload(correlation, 71);
  QErrorStats stats;
  for (auto _ : state) {
    Rng rng(73);
    DVector errors;
    for (const auto& q : w.test_queries) {
      const double estimate = SamplingEstimate(w.table, q, 200, rng);
      errors.push_back(QError(estimate, q.TrueSelectivity(w.table)));
    }
    stats = Summarize(std::move(errors));
  }
  state.SetLabel("row sampling (200)");
  state.counters["correlation_pct"] = correlation * 100;
  state.counters["median_qerror"] = stats.median;
  state.counters["p90_qerror"] = stats.p90;
}

const std::vector<int64_t> kCorrelations = {0, 60, 90, 95};

BENCHMARK(BM_VqrCardinality)
    ->Arg(0)
    ->Arg(60)
    ->Arg(90)
    ->Arg(95)
    ->Iterations(1)
    ->Unit(benchmark::kSecond);
BENCHMARK(BM_IndependenceCardinality)
    ->Arg(0)
    ->Arg(60)
    ->Arg(90)
    ->Arg(95)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SamplingCardinality)
    ->Arg(0)
    ->Arg(60)
    ->Arg(90)
    ->Arg(95)
    ->Iterations(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
