/// \file memory_budget.h
/// \brief Byte-budgeted, LRU/pin-aware residency accounting for the model
/// storage tier.
///
/// MemoryBudget is a pure policy object: it tracks which keys are resident,
/// how many bytes each holds, their recency, and which of them may be paged
/// out, and answers "who should go to get back under budget". It performs
/// no eviction itself and takes no locks — the owner (a ModelRegistry
/// slice) mutates it under its own mutex and acts on the plan. Keeping the
/// policy free of I/O and synchronization makes it unit-testable in
/// isolation and lets each registry slice run its own independent budget,
/// so eviction decisions never serialize across slices.
///
/// Semantics:
///   - budget_bytes == 0 means unlimited: nothing is ever planned for
///     eviction.
///   - Only keys added as `evictable` participate in eviction plans. A
///     model registered directly from memory (no backing artifact file)
///     cannot be reloaded, so it must never be paged out; the budget is
///     soft for such keys and resident_bytes may exceed the budget.
///   - Pinned keys are resident by fiat and are skipped by plans.
///   - PlanEvictions walks victims in least-recently-used order and stops
///     as soon as the hypothetical resident size fits the budget.

#ifndef QDB_STORE_MEMORY_BUDGET_H_
#define QDB_STORE_MEMORY_BUDGET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace qdb {
namespace store {

/// \brief Residency ledger + LRU eviction planner for one registry slice.
/// Not thread-safe; the owner serializes access.
class MemoryBudget {
 public:
  /// `budget_bytes` == 0 disables eviction planning (unlimited).
  explicit MemoryBudget(size_t budget_bytes = 0)
      : budget_bytes_(budget_bytes) {}

  /// Upserts a resident key. Re-adding an existing key replaces its byte
  /// count and flags and bumps its recency (a reload is a use).
  void Add(const std::string& key, size_t bytes, bool evictable,
           bool pinned = false);

  /// Bumps recency. Returns false if the key is not resident.
  bool Touch(const std::string& key);

  /// Removes a key from the ledger (evicted or unregistered). Unknown keys
  /// are ignored.
  void Drop(const std::string& key);

  /// Marks a resident key pinned/unpinned. Returns false if not resident.
  bool SetPinned(const std::string& key, bool pinned);

  /// Keys to evict, least-recently-used first, until the resident size
  /// would fit the budget. `protect` (when non-empty) is never planned —
  /// the caller passes the key it just loaded so a single oversized model
  /// does not evict itself. May return fewer victims than needed when the
  /// remaining residents are unevictable or pinned (soft budget).
  std::vector<std::string> PlanEvictions(const std::string& protect = "") const;

  bool over_budget() const {
    return budget_bytes_ != 0 && resident_bytes_ > budget_bytes_;
  }
  size_t budget_bytes() const { return budget_bytes_; }
  size_t resident_bytes() const { return resident_bytes_; }
  size_t resident_count() const { return items_.size(); }

 private:
  struct Item {
    size_t bytes = 0;
    uint64_t tick = 0;
    bool evictable = false;
    bool pinned = false;
  };

  size_t budget_bytes_;
  size_t resident_bytes_ = 0;
  uint64_t tick_ = 0;
  std::unordered_map<std::string, Item> items_;
};

}  // namespace store
}  // namespace qdb

#endif  // QDB_STORE_MEMORY_BUDGET_H_
