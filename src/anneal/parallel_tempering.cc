#include "anneal/parallel_tempering.h"

#include <cmath>
#include <limits>

#include "anneal/solver_metrics.h"
#include "common/rng.h"
#include "obs/obs.h"

namespace qdb {

Result<SolveResult> ParallelTempering(const IsingModel& model,
                                      const PtOptions& options) {
  if (options.num_replicas < 2) {
    return Status::InvalidArgument("parallel tempering needs >= 2 replicas");
  }
  if (options.num_sweeps < 1) {
    return Status::InvalidArgument("sweeps must be >= 1");
  }
  if (options.beta_min <= 0.0 || options.beta_max <= options.beta_min) {
    return Status::InvalidArgument("need 0 < beta_min < beta_max");
  }
  const int n = model.num_spins();
  const int k = options.num_replicas;
  const double scale = options.scale_to_coefficients
                           ? std::max(model.MaxAbsCoefficient(), 1e-12)
                           : 1.0;
  // Geometric temperature ladder, rung 0 hottest.
  std::vector<double> betas(k);
  const double ratio =
      std::pow(options.beta_max / options.beta_min, 1.0 / (k - 1));
  betas[0] = options.beta_min / scale;
  for (int r = 1; r < k; ++r) betas[r] = betas[r - 1] * ratio;

  Rng rng(options.seed);
  std::vector<std::vector<int8_t>> replicas(k, std::vector<int8_t>(n));
  std::vector<double> energies(k);
  for (int r = 0; r < k; ++r) {
    for (auto& s : replicas[r]) s = rng.Bernoulli(0.5) ? 1 : -1;
    energies[r] = model.Energy(replicas[r]);
  }

  QDB_TRACE_SCOPE("ParallelTempering", "anneal");
  SolveResult result;
  result.best_energy = std::numeric_limits<double>::infinity();
  long exchanges = 0;
  auto track_best = [&](int r) {
    if (energies[r] < result.best_energy) {
      result.best_energy = energies[r];
      result.best_spins = replicas[r];
    }
  };
  for (int r = 0; r < k; ++r) track_best(r);

  for (int sweep = 0; sweep < options.num_sweeps; ++sweep) {
    // Metropolis sweep on every rung.
    for (int r = 0; r < k; ++r) {
      for (int i = 0; i < n; ++i) {
        const double delta = model.FlipDelta(replicas[r], i);
        if (delta <= 0.0 || rng.Uniform() < std::exp(-betas[r] * delta)) {
          replicas[r][i] = -replicas[r][i];
          energies[r] += delta;
          ++result.moves_accepted;
        } else {
          ++result.moves_rejected;
        }
      }
      track_best(r);
    }
    // Neighbor exchanges: alternate even/odd pairs per sweep.
    for (int r = sweep % 2; r + 1 < k; r += 2) {
      const double arg =
          (betas[r + 1] - betas[r]) * (energies[r + 1] - energies[r]);
      if (arg >= 0.0 || rng.Uniform() < std::exp(arg)) {
        std::swap(replicas[r], replicas[r + 1]);
        std::swap(energies[r], energies[r + 1]);
        ++exchanges;
      }
    }
    ++result.sweeps;
  }
  RecordSolveMetrics("pt", result);
  obs::GetCounter("anneal.pt.replica_exchanges")->Increment(exchanges);
  return result;
}

}  // namespace qdb
