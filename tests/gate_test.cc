// Tests for the gate vocabulary: matrices, parameter expressions, arity
// metadata, and adjoint relations.

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/gate.h"

namespace qdb {
namespace {

const std::vector<GateType> kFixedGates = {
    GateType::kI,  GateType::kX,    GateType::kY,     GateType::kZ,
    GateType::kH,  GateType::kS,    GateType::kSdg,   GateType::kT,
    GateType::kTdg, GateType::kSX,  GateType::kCX,    GateType::kCY,
    GateType::kCZ, GateType::kCH,   GateType::kSwap,  GateType::kCCX,
    GateType::kCSwap};

const std::vector<GateType> kOneParamGates = {
    GateType::kRX,  GateType::kRY,  GateType::kRZ,  GateType::kPhase,
    GateType::kCRX, GateType::kCRY, GateType::kCRZ, GateType::kCPhase,
    GateType::kRXX, GateType::kRYY, GateType::kRZZ};

TEST(GateTest, AllFixedGateMatricesAreUnitary) {
  for (GateType t : kFixedGates) {
    EXPECT_TRUE(GateMatrix(t, {}).IsUnitary(1e-12)) << GateTypeName(t);
  }
}

TEST(GateTest, AllParameterizedMatricesAreUnitary) {
  for (GateType t : kOneParamGates) {
    for (double theta : {-2.1, 0.0, 0.3, M_PI, 5.0}) {
      EXPECT_TRUE(GateMatrix(t, {theta}).IsUnitary(1e-12))
          << GateTypeName(t) << "(" << theta << ")";
    }
  }
  EXPECT_TRUE(GateMatrix(GateType::kU, {0.4, 1.1, -0.6}).IsUnitary(1e-12));
}

TEST(GateTest, HadamardValues) {
  Matrix h = GateMatrix(GateType::kH, {});
  const double s = 1.0 / std::sqrt(2.0);
  EXPECT_NEAR(h(0, 0).real(), s, 1e-15);
  EXPECT_NEAR(h(1, 1).real(), -s, 1e-15);
}

TEST(GateTest, SSquaredIsZ) {
  Matrix s = GateMatrix(GateType::kS, {});
  EXPECT_TRUE((s * s).ApproxEqual(GateMatrix(GateType::kZ, {})));
}

TEST(GateTest, TSquaredIsS) {
  Matrix t = GateMatrix(GateType::kT, {});
  EXPECT_TRUE((t * t).ApproxEqual(GateMatrix(GateType::kS, {}), 1e-12));
}

TEST(GateTest, SXSquaredIsX) {
  Matrix sx = GateMatrix(GateType::kSX, {});
  EXPECT_TRUE((sx * sx).ApproxEqual(GateMatrix(GateType::kX, {}), 1e-12));
}

TEST(GateTest, SdgTdgAreAdjoints) {
  Matrix s = GateMatrix(GateType::kS, {});
  EXPECT_TRUE(GateMatrix(GateType::kSdg, {}).ApproxEqual(s.Adjoint()));
  Matrix t = GateMatrix(GateType::kT, {});
  EXPECT_TRUE(GateMatrix(GateType::kTdg, {}).ApproxEqual(t.Adjoint()));
}

TEST(GateTest, RotationsAtTwoPiAreMinusIdentity) {
  for (GateType t : {GateType::kRX, GateType::kRY, GateType::kRZ}) {
    Matrix m = GateMatrix(t, {2.0 * M_PI});
    EXPECT_TRUE(m.ApproxEqual(Matrix::Identity(2) * Complex(-1, 0), 1e-12))
        << GateTypeName(t);
  }
}

TEST(GateTest, RyAtPiIsMinusIY) {
  Matrix ry = GateMatrix(GateType::kRY, {M_PI});
  Matrix expected{{{0, 0}, {-1, 0}}, {{1, 0}, {0, 0}}};
  EXPECT_TRUE(ry.ApproxEqual(expected, 1e-12));
}

TEST(GateTest, PhaseGateValues) {
  Matrix p = GateMatrix(GateType::kPhase, {M_PI / 2});
  EXPECT_NEAR(p(1, 1).imag(), 1.0, 1e-12);  // P(π/2) = S.
  EXPECT_TRUE(p.ApproxEqual(GateMatrix(GateType::kS, {}), 1e-12));
}

TEST(GateTest, UGateGeneralizesRotations) {
  // U(θ, −π/2, π/2) = RX(θ); U(θ, 0, 0) = RY(θ).
  for (double theta : {0.3, 1.2}) {
    Matrix u_ry = GateMatrix(GateType::kU, {theta, 0.0, 0.0});
    EXPECT_TRUE(u_ry.ApproxEqual(GateMatrix(GateType::kRY, {theta}), 1e-12));
    Matrix u_rx = GateMatrix(GateType::kU, {theta, -M_PI / 2, M_PI / 2});
    EXPECT_TRUE(u_rx.ApproxEqual(GateMatrix(GateType::kRX, {theta}), 1e-12));
  }
}

TEST(GateTest, ControlledGatesBlockStructure) {
  Matrix cx = GateMatrix(GateType::kCX, {});
  // Control = qubit 0 (high bit): the |0⟩ block is identity.
  EXPECT_EQ(cx(0, 0), Complex(1, 0));
  EXPECT_EQ(cx(1, 1), Complex(1, 0));
  EXPECT_EQ(cx(2, 3), Complex(1, 0));
  EXPECT_EQ(cx(3, 2), Complex(1, 0));
  EXPECT_EQ(cx(2, 2), Complex(0, 0));
}

TEST(GateTest, RzzIsDiagonalWithCorrectPhases) {
  const double theta = 0.8;
  Matrix rzz = GateMatrix(GateType::kRZZ, {theta});
  EXPECT_NEAR(std::arg(rzz(0, 0)), -theta / 2, 1e-12);
  EXPECT_NEAR(std::arg(rzz(1, 1)), theta / 2, 1e-12);
  EXPECT_NEAR(std::arg(rzz(2, 2)), theta / 2, 1e-12);
  EXPECT_NEAR(std::arg(rzz(3, 3)), -theta / 2, 1e-12);
}

TEST(GateTest, RxxMatchesExponentialDefinition) {
  // exp(−iθ/2 X⊗X) = cos(θ/2) I − i sin(θ/2) X⊗X.
  const double theta = 1.1;
  Matrix x = GateMatrix(GateType::kX, {});
  Matrix xx = x.Kron(x);
  Matrix expected = Matrix::Identity(4) * Complex(std::cos(theta / 2), 0) +
                    xx * Complex(0, -std::sin(theta / 2));
  EXPECT_TRUE(GateMatrix(GateType::kRXX, {theta}).ApproxEqual(expected, 1e-12));
}

TEST(GateTest, RyyMatchesExponentialDefinition) {
  const double theta = 0.7;
  Matrix y = GateMatrix(GateType::kY, {});
  Matrix yy = y.Kron(y);
  Matrix expected = Matrix::Identity(4) * Complex(std::cos(theta / 2), 0) +
                    yy * Complex(0, -std::sin(theta / 2));
  EXPECT_TRUE(GateMatrix(GateType::kRYY, {theta}).ApproxEqual(expected, 1e-12));
}

TEST(GateTest, ToffoliPermutation) {
  Matrix ccx = GateMatrix(GateType::kCCX, {});
  EXPECT_EQ(ccx(6, 7), Complex(1, 0));
  EXPECT_EQ(ccx(7, 6), Complex(1, 0));
  for (int i = 0; i < 6; ++i) EXPECT_EQ(ccx(i, i), Complex(1, 0));
}

TEST(GateTest, FredkinPermutation) {
  Matrix cswap = GateMatrix(GateType::kCSwap, {});
  EXPECT_EQ(cswap(5, 6), Complex(1, 0));
  EXPECT_EQ(cswap(6, 5), Complex(1, 0));
  EXPECT_EQ(cswap(4, 4), Complex(1, 0));
  EXPECT_EQ(cswap(7, 7), Complex(1, 0));
}

TEST(GateTest, ArityAndParamCounts) {
  EXPECT_EQ(GateArity(GateType::kH), 1);
  EXPECT_EQ(GateArity(GateType::kCX), 2);
  EXPECT_EQ(GateArity(GateType::kCCX), 3);
  EXPECT_EQ(GateArity(GateType::kMCX), 0);  // variadic
  EXPECT_EQ(GateParamCount(GateType::kU), 3);
  EXPECT_EQ(GateParamCount(GateType::kRZZ), 1);
  EXPECT_EQ(GateParamCount(GateType::kH), 0);
}

TEST(GateTest, DiagonalGatePredicate) {
  EXPECT_TRUE(IsDiagonalGate(GateType::kRZ));
  EXPECT_TRUE(IsDiagonalGate(GateType::kCZ));
  EXPECT_TRUE(IsDiagonalGate(GateType::kRZZ));
  EXPECT_TRUE(IsDiagonalGate(GateType::kMCZ));
  EXPECT_FALSE(IsDiagonalGate(GateType::kRX));
  EXPECT_FALSE(IsDiagonalGate(GateType::kCX));
}

TEST(GateTest, AdjointTypeMapping) {
  EXPECT_EQ(AdjointType(GateType::kS), GateType::kSdg);
  EXPECT_EQ(AdjointType(GateType::kSdg), GateType::kS);
  EXPECT_EQ(AdjointType(GateType::kT), GateType::kTdg);
  EXPECT_EQ(AdjointType(GateType::kTdg), GateType::kT);
  EXPECT_EQ(AdjointType(GateType::kH), GateType::kH);
}

TEST(ParamExprTest, ConstantEvaluation) {
  ParamExpr c = ParamExpr::Constant(0.5);
  EXPECT_TRUE(c.is_constant());
  EXPECT_EQ(c.Evaluate({}), 0.5);
}

TEST(ParamExprTest, VariableAndAffine) {
  ParamExpr v = ParamExpr::Variable(1);
  EXPECT_FALSE(v.is_constant());
  EXPECT_EQ(v.Evaluate({10.0, 20.0}), 20.0);
  ParamExpr a = ParamExpr::Affine(0, 2.0, 1.0);
  EXPECT_EQ(a.Evaluate({3.0}), 7.0);
}

TEST(ParamExprTest, GateParamNegation) {
  Gate g{GateType::kRZ, {0}, {ParamExpr::Affine(2, 1.5, -0.25)}};
  Gate neg = g.WithNegatedParams();
  EXPECT_EQ(neg.params[0].multiplier, -1.5);
  EXPECT_EQ(neg.params[0].offset, 0.25);
  EXPECT_EQ(neg.params[0].index, 2);
}

TEST(GateTest, GateTypeNames) {
  EXPECT_STREQ(GateTypeName(GateType::kCX), "cx");
  EXPECT_STREQ(GateTypeName(GateType::kRZZ), "rzz");
  EXPECT_STREQ(GateTypeName(GateType::kMCZ), "mcz");
}

}  // namespace
}  // namespace qdb
