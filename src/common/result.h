/// \file result.h
/// \brief Result<T>: a value-or-Status sum type (the Arrow idiom).

#ifndef QDB_COMMON_RESULT_H_
#define QDB_COMMON_RESULT_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace qdb {

/// \brief Holds either a value of type T or a non-OK Status explaining why
/// the value could not be produced.
///
/// Access the value only after checking ok(); ValueOrDie() aborts on error
/// (use in tests and examples where failure is a bug).
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value)  // NOLINT(google-explicit-constructor)
      : status_(Status::OK()), value_(std::move(value)) {}

  /// Implicit construction from a non-OK status (failure).
  Result(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    QDB_CHECK(!status_.ok()) << "Result constructed from OK status without a value";
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Returns the held value; requires ok().
  const T& value() const& {
    QDB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    QDB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    QDB_CHECK(ok()) << "Result::value() on error: " << status_.ToString();
    return std::move(*value_);
  }

  /// Returns the held value or aborts with the error message.
  const T& ValueOrDie() const& { return value(); }
  T&& ValueOrDie() && { return std::move(*this).value(); }

  /// Returns the held value or `fallback` when this holds an error.
  T ValueOr(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Evaluates `rexpr` (a Result<T>), propagating its Status on failure,
/// otherwise assigning the value to `lhs` (which must name a declaration,
/// e.g. `QDB_ASSIGN_OR_RETURN(auto x, MakeX())`).
#define QDB_ASSIGN_OR_RETURN(lhs, rexpr)                        \
  QDB_ASSIGN_OR_RETURN_IMPL_(                                   \
      QDB_STATUS_MACROS_CONCAT_(_qdb_result, __LINE__), lhs, rexpr)

#define QDB_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                               \
  if (!result.ok()) return result.status();            \
  lhs = std::move(result).value()

#define QDB_STATUS_MACROS_CONCAT_(x, y) QDB_STATUS_MACROS_CONCAT_IMPL_(x, y)
#define QDB_STATUS_MACROS_CONCAT_IMPL_(x, y) x##y

}  // namespace qdb

#endif  // QDB_COMMON_RESULT_H_
