#include "optimize/nelder_mead.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "obs/trace.h"

namespace qdb {

Result<OptimizeResult> MinimizeNelderMead(const Objective& objective,
                                          const DVector& initial,
                                          const NelderMeadOptions& options) {
  const size_t n = initial.size();
  if (n == 0) {
    return Status::InvalidArgument("Nelder-Mead needs at least one dimension");
  }
  QDB_TRACE_SCOPE("NelderMead::Minimize", "optimize");
  // Initial simplex: x0 plus one vertex per coordinate offset.
  std::vector<DVector> simplex;
  simplex.push_back(initial);
  for (size_t i = 0; i < n; ++i) {
    DVector v = initial;
    v[i] += options.initial_step;
    simplex.push_back(v);
  }
  DVector values(n + 1);
  for (size_t i = 0; i <= n; ++i) {
    QDB_ASSIGN_OR_RETURN(values[i], objective(simplex[i]));
  }

  OptimizeResult result;
  std::vector<size_t> order(n + 1);

  for (int iter = 0; iter < options.max_iterations; ++iter) {
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return values[a] < values[b]; });
    const size_t best = order.front();
    const size_t worst = order.back();
    const size_t second_worst = order[n - 1];

    ++result.iterations;
    result.history.push_back(values[best]);
    if (std::abs(values[worst] - values[best]) < options.value_tolerance) {
      result.converged = true;
      break;
    }

    // Centroid of all but the worst vertex.
    DVector centroid(n, 0.0);
    for (size_t i = 0; i <= n; ++i) {
      if (i == worst) continue;
      for (size_t k = 0; k < n; ++k) centroid[k] += simplex[i][k];
    }
    for (auto& c : centroid) c /= static_cast<double>(n);

    auto blend = [&](double coeff) {
      DVector x(n);
      for (size_t k = 0; k < n; ++k) {
        x[k] = centroid[k] + coeff * (centroid[k] - simplex[worst][k]);
      }
      return x;
    };

    DVector reflected = blend(options.reflection);
    QDB_ASSIGN_OR_RETURN(double f_reflected, objective(reflected));

    if (f_reflected < values[best]) {
      DVector expanded = blend(options.reflection * options.expansion);
      QDB_ASSIGN_OR_RETURN(double f_expanded, objective(expanded));
      if (f_expanded < f_reflected) {
        simplex[worst] = std::move(expanded);
        values[worst] = f_expanded;
      } else {
        simplex[worst] = std::move(reflected);
        values[worst] = f_reflected;
      }
      continue;
    }
    if (f_reflected < values[second_worst]) {
      simplex[worst] = std::move(reflected);
      values[worst] = f_reflected;
      continue;
    }
    // Contraction (outside if the reflected point improved on the worst).
    const bool outside = f_reflected < values[worst];
    DVector contracted =
        blend(outside ? options.reflection * options.contraction
                      : -options.contraction);
    QDB_ASSIGN_OR_RETURN(double f_contracted, objective(contracted));
    const double reference = outside ? f_reflected : values[worst];
    if (f_contracted < reference) {
      simplex[worst] = std::move(contracted);
      values[worst] = f_contracted;
      continue;
    }
    // Shrink toward the best vertex.
    for (size_t i = 0; i <= n; ++i) {
      if (i == best) continue;
      for (size_t k = 0; k < n; ++k) {
        simplex[i][k] = simplex[best][k] +
                        options.shrink * (simplex[i][k] - simplex[best][k]);
      }
      QDB_ASSIGN_OR_RETURN(values[i], objective(simplex[i]));
    }
  }

  size_t best = 0;
  for (size_t i = 1; i <= n; ++i) {
    if (values[i] < values[best]) best = i;
  }
  result.params = simplex[best];
  result.value = values[best];
  return result;
}

}  // namespace qdb
