// E4 — Gradient computation: parameter-shift vs finite differences.
//
// Regenerates the gradient-methods comparison: accuracy (max deviation
// from a tight finite-difference reference) and circuit-evaluation cost of
// the exact parameter-shift rule against central finite differences at
// several step sizes. Expected shape: parameter-shift is exact at 2 evals
// per parameter; finite differences degrade both for large ε (truncation)
// and tiny ε (cancellation).

#include <benchmark/benchmark.h>

#include <cmath>

#include "autodiff/adjoint.h"
#include "autodiff/parameter_shift.h"
#include "common/rng.h"
#include "variational/ansatz.h"

namespace qdb {
namespace {

struct Setup {
  Circuit circuit;
  PauliSum observable;
  DVector params;
};

Setup MakeSetup() {
  Circuit ansatz = EfficientSU2Ansatz(4, 2, Entanglement::kLinear);
  PauliSum obs(4);
  obs.Add(1.0, "ZIII").Add(0.5, "ZZII").Add(-0.7, "IXYI").Add(0.2, "ZZZZ");
  Rng rng(3);
  DVector params = rng.UniformVector(ansatz.num_parameters(), -M_PI, M_PI);
  return {std::move(ansatz), std::move(obs), std::move(params)};
}

// Richardson-extrapolated reference gradient (effectively exact).
DVector ReferenceGradient(const ExpectationFunction& f, const DVector& params) {
  DVector g1 = FiniteDifferenceGradient(f, params, 1e-4).ValueOrDie();
  DVector g2 = FiniteDifferenceGradient(f, params, 5e-5).ValueOrDie();
  DVector out(g1.size());
  for (size_t i = 0; i < g1.size(); ++i) {
    out[i] = (4.0 * g2[i] - g1[i]) / 3.0;
  }
  return out;
}

double MaxError(const DVector& a, const DVector& b) {
  double worst = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    worst = std::max(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

void BM_ParameterShift(benchmark::State& state) {
  Setup setup = MakeSetup();
  ExpectationFunction f(setup.circuit, setup.observable);
  DVector reference = ReferenceGradient(f, setup.params);

  DVector grad;
  long evals = 0;
  for (auto _ : state) {
    f.reset_evaluation_count();
    grad = ParameterShiftGradient(f, setup.params).ValueOrDie();
    evals = f.evaluation_count();
  }
  state.SetLabel("parameter-shift");
  state.counters["max_error"] = MaxError(grad, reference);
  state.counters["circuit_evals"] = static_cast<double>(evals);
  state.counters["num_params"] = setup.circuit.num_parameters();
}

BENCHMARK(BM_ParameterShift)->Unit(benchmark::kMillisecond);

void BM_AdjointGradient(benchmark::State& state) {
  // The simulator-native method: exact like parameter-shift, but one
  // forward + one backward sweep regardless of the parameter count.
  Setup setup = MakeSetup();
  ExpectationFunction f(setup.circuit, setup.observable);
  DVector reference = ReferenceGradient(f, setup.params);

  DVector grad;
  for (auto _ : state) {
    auto result = AdjointGradient(setup.circuit, setup.observable,
                                  setup.params);
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    grad = result.value().gradient;
  }
  state.SetLabel("adjoint (reverse-mode)");
  state.counters["max_error"] = MaxError(grad, reference);
  state.counters["circuit_evals"] = 2;  // One forward + one backward sweep.
  state.counters["num_params"] = setup.circuit.num_parameters();
}

BENCHMARK(BM_AdjointGradient)->Unit(benchmark::kMillisecond);

void BM_FiniteDifference(benchmark::State& state) {
  // range(0) is −log10(ε): ε = 10^{−k} for k = 1…7.
  const double epsilon = std::pow(10.0, -static_cast<double>(state.range(0)));
  Setup setup = MakeSetup();
  ExpectationFunction f(setup.circuit, setup.observable);
  DVector reference = ReferenceGradient(f, setup.params);

  DVector grad;
  long evals = 0;
  for (auto _ : state) {
    f.reset_evaluation_count();
    grad = FiniteDifferenceGradient(f, setup.params, epsilon).ValueOrDie();
    evals = f.evaluation_count();
  }
  state.SetLabel("finite-diff eps=1e-" + std::to_string(state.range(0)));
  state.counters["max_error"] = MaxError(grad, reference);
  state.counters["circuit_evals"] = static_cast<double>(evals);
}

BENCHMARK(BM_FiniteDifference)->DenseRange(1, 7)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace qdb

BENCHMARK_MAIN();
