#!/usr/bin/env bash
# Tier-1 gate: configure + build + full test suite, then rebuild the
# observability test under ThreadSanitizer and run it. Run from the repo root:
#
#   ./scripts/tier1.sh
#
# Build directories: build/ (regular), build-tsan/ (TSan, library + tests
# only). Both are incremental across invocations.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: build + ctest =="
cmake -B build -S . >/dev/null
cmake --build build -j
(cd build && ctest --output-on-failure -j "$(nproc)")

echo
echo "== tier 1: concurrency tests under ThreadSanitizer =="
cmake -B build-tsan -S . \
  -DQDB_SANITIZE=thread \
  -DQDB_BUILD_BENCHMARKS=OFF \
  -DQDB_BUILD_EXAMPLES=OFF >/dev/null
cmake --build build-tsan -j --target obs_test --target thread_pool_test \
  --target sim_parallel_test --target compiled_circuit_test \
  --target serve_test --target fault_test
./build-tsan/tests/obs_test
./build-tsan/tests/thread_pool_test
QDB_THREADS=4 ./build-tsan/tests/sim_parallel_test
QDB_THREADS=4 ./build-tsan/tests/compiled_circuit_test
QDB_THREADS=4 ./build-tsan/tests/serve_test
QDB_THREADS=4 ./build-tsan/tests/fault_test

echo
echo "== tier 1: seeded chaos profiles =="
./scripts/chaos.sh

echo
echo "tier 1 PASS"
