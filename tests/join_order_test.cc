// Tests for the join-ordering optimizers: DP, greedy, and the QUBO encoding.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>

#include "anneal/exhaustive.h"
#include "anneal/simulated_annealing.h"
#include "db/join_order_dp.h"
#include "db/join_order_greedy.h"
#include "db/join_order_qubo.h"

namespace qdb {
namespace {

double BruteForceBestLeftDeep(const JoinQueryGraph& g) {
  std::vector<int> order(g.num_relations());
  std::iota(order.begin(), order.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, CostOfLeftDeepOrder(g, order).value());
  } while (std::next_permutation(order.begin(), order.end()));
  return best;
}

class JoinOrderShapeTest : public ::testing::TestWithParam<QueryShape> {};

TEST_P(JoinOrderShapeTest, DpMatchesPermutationBruteForce) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 50);
  auto g = RandomQuery(GetParam(), 7, rng);
  ASSERT_TRUE(g.ok());
  auto dp = OptimalLeftDeepPlan(g.value());
  ASSERT_TRUE(dp.ok());
  EXPECT_NEAR(dp.value().cost, BruteForceBestLeftDeep(g.value()),
              1e-6 * dp.value().cost);
  // The reconstructed order realizes the reported cost.
  EXPECT_NEAR(CostOfLeftDeepOrder(g.value(), dp.value().order).value(),
              dp.value().cost, 1e-6 * dp.value().cost);
}

TEST_P(JoinOrderShapeTest, GreedyNeverBeatsDp) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 80);
  auto g = RandomQuery(GetParam(), 9, rng);
  ASSERT_TRUE(g.ok());
  auto dp = OptimalLeftDeepPlan(g.value());
  auto greedy = GreedyLeftDeepPlan(g.value());
  ASSERT_TRUE(dp.ok());
  ASSERT_TRUE(greedy.ok());
  EXPECT_GE(greedy.value().cost, dp.value().cost - 1e-9);
  EXPECT_NEAR(CostOfLeftDeepOrder(g.value(), greedy.value().order).value(),
              greedy.value().cost, 1e-6 * greedy.value().cost + 1e-9);
}

TEST_P(JoinOrderShapeTest, BushyNeverWorseThanLeftDeep) {
  Rng rng(static_cast<uint64_t>(GetParam()) + 110);
  auto g = RandomQuery(GetParam(), 8, rng);
  ASSERT_TRUE(g.ok());
  auto left_deep = OptimalLeftDeepPlan(g.value());
  auto bushy = OptimalBushyCost(g.value());
  ASSERT_TRUE(left_deep.ok());
  ASSERT_TRUE(bushy.ok());
  EXPECT_LE(bushy.value(), left_deep.value().cost + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, JoinOrderShapeTest,
                         ::testing::Values(QueryShape::kChain,
                                           QueryShape::kStar,
                                           QueryShape::kCycle,
                                           QueryShape::kClique));

TEST(JoinOrderDpTest, ChainPrefersSmallIntermediates) {
  // Chain with tiny tail relation: starting from the small end wins.
  auto g = JoinQueryGraph::Create({1000, 100, 10}).value();
  ASSERT_TRUE(g.AddJoin(0, 1, 0.1).ok());
  ASSERT_TRUE(g.AddJoin(1, 2, 0.01).ok());
  auto dp = OptimalLeftDeepPlan(g);
  ASSERT_TRUE(dp.ok());
  EXPECT_NEAR(dp.value().cost, 1010.0, 1e-9);
}

TEST(JoinOrderDpTest, SizeLimits) {
  auto g = JoinQueryGraph::Create(std::vector<double>(21, 100.0));
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(OptimalLeftDeepPlan(g.value()).ok());
  auto g2 = JoinQueryGraph::Create(std::vector<double>(17, 100.0));
  ASSERT_TRUE(g2.ok());
  EXPECT_FALSE(OptimalBushyCost(g2.value()).ok());
}

TEST(JoinOrderQuboTest, VariableLayout) {
  Rng rng(7);
  auto g = RandomQuery(QueryShape::kChain, 4, rng);
  ASSERT_TRUE(g.ok());
  auto encoding = JoinOrderQubo::Create(g.value());
  ASSERT_TRUE(encoding.ok());
  EXPECT_EQ(encoding.value().qubo().num_vars(), 16);
  EXPECT_EQ(encoding.value().VarIndex(0, 0), 0);
  EXPECT_EQ(encoding.value().VarIndex(3, 3), 15);
}

TEST(JoinOrderQuboTest, ValidityDetection) {
  Rng rng(7);
  auto g = RandomQuery(QueryShape::kChain, 3, rng);
  ASSERT_TRUE(g.ok());
  auto enc = JoinOrderQubo::Create(g.value()).value();
  // Permutation (1, 0, 2) as a permutation matrix.
  std::vector<uint8_t> bits(9, 0);
  bits[enc.VarIndex(1, 0)] = 1;
  bits[enc.VarIndex(0, 1)] = 1;
  bits[enc.VarIndex(2, 2)] = 1;
  EXPECT_TRUE(enc.IsValid(bits));
  EXPECT_EQ(enc.Decode(bits), (std::vector<int>{1, 0, 2}));
  bits[enc.VarIndex(2, 2)] = 0;
  EXPECT_FALSE(enc.IsValid(bits));
}

TEST(JoinOrderQuboTest, DecodeRepairsInvalidAssignments) {
  Rng rng(9);
  auto g = RandomQuery(QueryShape::kStar, 4, rng);
  ASSERT_TRUE(g.ok());
  auto enc = JoinOrderQubo::Create(g.value()).value();
  // All-zero bits: repair must still yield a valid permutation.
  std::vector<uint8_t> zeros(16, 0);
  std::vector<int> order = enc.Decode(zeros);
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
  // Conflicting bits (two relations at one position).
  std::vector<uint8_t> conflict(16, 0);
  conflict[enc.VarIndex(0, 0)] = 1;
  conflict[enc.VarIndex(1, 0)] = 1;
  order = enc.Decode(conflict);
  sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3}));
}

TEST(JoinOrderQuboTest, GroundStateIsValidPermutation) {
  // The penalty weight must force the exact QUBO optimum to be one-hot
  // valid on a small instance.
  Rng rng(11);
  auto g = RandomQuery(QueryShape::kChain, 4, rng);
  ASSERT_TRUE(g.ok());
  auto enc = JoinOrderQubo::Create(g.value()).value();
  auto ground = ExhaustiveSolveQubo(enc.qubo());
  ASSERT_TRUE(ground.ok());
  std::vector<uint8_t> bits = SpinsToBits(ground.value().best_spins);
  EXPECT_TRUE(enc.IsValid(bits));
}

TEST(JoinOrderQuboTest, GroundStateMinimizesLogSurrogate) {
  // Among all permutations, the QUBO ground state attains the smallest
  // Σ_p log2 card(prefix_p) (its declared objective).
  Rng rng(13);
  auto g = RandomQuery(QueryShape::kCycle, 4, rng);
  ASSERT_TRUE(g.ok());
  auto enc = JoinOrderQubo::Create(g.value()).value();
  auto ground = ExhaustiveSolveQubo(enc.qubo());
  ASSERT_TRUE(ground.ok());
  std::vector<int> decoded =
      enc.Decode(SpinsToBits(ground.value().best_spins));

  auto surrogate = [&](const std::vector<int>& order) {
    double total = 0.0;
    uint64_t mask = uint64_t{1} << order[0];
    for (size_t k = 1; k < order.size(); ++k) {
      mask |= uint64_t{1} << order[k];
      total += std::log2(SubsetCardinality(g.value(), mask));
    }
    return total;
  };
  std::vector<int> perm = {0, 1, 2, 3};
  double best = std::numeric_limits<double>::infinity();
  do {
    best = std::min(best, surrogate(perm));
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_NEAR(surrogate(decoded), best, 1e-6);
}

TEST(JoinOrderQuboTest, AnnealedSolutionBeatsWorstCase) {
  Rng rng(17);
  auto g = RandomQuery(QueryShape::kStar, 6, rng);
  ASSERT_TRUE(g.ok());
  auto enc = JoinOrderQubo::Create(g.value()).value();
  SaOptions opts;
  opts.num_sweeps = 800;
  opts.num_restarts = 3;
  auto annealed = SimulatedAnnealing(enc.qubo().ToIsing(), opts);
  ASSERT_TRUE(annealed.ok());
  std::vector<int> order = enc.Decode(SpinsToBits(annealed.value().best_spins));
  const double annealed_cost = CostOfLeftDeepOrder(g.value(), order).value();
  // Find the worst left-deep cost for scale.
  std::vector<int> perm(6);
  std::iota(perm.begin(), perm.end(), 0);
  double worst = 0.0;
  do {
    worst = std::max(worst, CostOfLeftDeepOrder(g.value(), perm).value());
  } while (std::next_permutation(perm.begin(), perm.end()));
  EXPECT_LT(annealed_cost, worst);
}

TEST(JoinOrderGreedyTest, GooIsBoundedByBushyOptimum) {
  Rng rng(41);
  for (auto shape : {QueryShape::kChain, QueryShape::kStar,
                     QueryShape::kCycle, QueryShape::kClique}) {
    auto g = RandomQuery(shape, 8, rng);
    ASSERT_TRUE(g.ok());
    auto goo = GreedyOperatorOrderingCost(g.value());
    auto bushy = OptimalBushyCost(g.value());
    ASSERT_TRUE(goo.ok());
    ASSERT_TRUE(bushy.ok());
    EXPECT_GE(goo.value(), bushy.value() - 1e-9) << QueryShapeName(shape);
    // GOO may build bushy trees, so it can also beat the best left-deep.
    auto left_deep = OptimalLeftDeepPlan(g.value());
    ASSERT_TRUE(left_deep.ok());
    EXPECT_GT(goo.value(), 0.0);
    EXPECT_LE(bushy.value(), left_deep.value().cost + 1e-9);
  }
}

TEST(JoinOrderGreedyTest, GooHandComputedExample) {
  // R0(10) ⋈ R1(10) with sel 0.1 is the cheapest first merge (card 10);
  // the final join has card 10·10·100·0.1·0.01 = 10. GOO total: 20.
  auto g = JoinQueryGraph::Create({10, 10, 100}).value();
  ASSERT_TRUE(g.AddJoin(0, 1, 0.1).ok());
  ASSERT_TRUE(g.AddJoin(1, 2, 0.01).ok());
  auto goo = GreedyOperatorOrderingCost(g);
  ASSERT_TRUE(goo.ok());
  EXPECT_NEAR(goo.value(), 20.0, 1e-9);
}

TEST(JoinOrderGreedyTest, SwapPolishNeverWorsens) {
  Rng rng(23);
  for (auto shape : {QueryShape::kChain, QueryShape::kClique}) {
    auto g = RandomQuery(shape, 7, rng);
    ASSERT_TRUE(g.ok());
    std::vector<int> order = {6, 5, 4, 3, 2, 1, 0};  // Deliberately poor.
    const double before = CostOfLeftDeepOrder(g.value(), order).value();
    auto polished = ImproveOrderBySwaps(g.value(), order);
    ASSERT_TRUE(polished.ok());
    const double after =
        CostOfLeftDeepOrder(g.value(), polished.value()).value();
    EXPECT_LE(after, before + 1e-9);
    // Polished order is still a permutation.
    std::vector<int> sorted = polished.value();
    std::sort(sorted.begin(), sorted.end());
    EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2, 3, 4, 5, 6}));
  }
}

TEST(JoinOrderGreedyTest, SwapPolishReachesOptimumOnSmallInstances) {
  Rng rng(29);
  auto g = RandomQuery(QueryShape::kStar, 5, rng);
  ASSERT_TRUE(g.ok());
  auto dp = OptimalLeftDeepPlan(g.value());
  ASSERT_TRUE(dp.ok());
  // From any start, pairwise-swap descent on 5 relations should land at or
  // near the optimum; assert within 2x (it is a local search).
  auto polished = ImproveOrderBySwaps(g.value(), {4, 3, 2, 1, 0});
  ASSERT_TRUE(polished.ok());
  EXPECT_LE(CostOfLeftDeepOrder(g.value(), polished.value()).value(),
            2.0 * dp.value().cost);
}

TEST(JoinOrderGreedyTest, SwapPolishRejectsInvalidOrder) {
  Rng rng(31);
  auto g = RandomQuery(QueryShape::kChain, 4, rng);
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(ImproveOrderBySwaps(g.value(), {0, 1, 2}).ok());
  EXPECT_FALSE(ImproveOrderBySwaps(g.value(), {0, 1, 2, 2}).ok());
}

TEST(JoinOrderQuboTest, RejectsOversizedInstances) {
  auto g = JoinQueryGraph::Create(std::vector<double>(17, 100.0));
  ASSERT_TRUE(g.ok());
  EXPECT_FALSE(JoinOrderQubo::Create(g.value()).ok());
}

}  // namespace
}  // namespace qdb
