/// \file readout.h
/// \brief Readout-error mitigation by confusion-matrix inversion: undo the
/// classical bit-flip channel measurement hardware applies to outcomes.

#ifndef QDB_MITIGATION_READOUT_H_
#define QDB_MITIGATION_READOUT_H_

#include <cstdint>
#include <map>

#include "common/result.h"
#include "linalg/types.h"

namespace qdb {

/// \brief Inverts a tensor product of per-qubit 2×2 confusion matrices over
/// sampled counts. With p01 = P(read 1 | true 0) and p10 = P(read 0 |
/// true 1), the per-qubit confusion is [[1−p01, p10], [p01, 1−p10]]; its
/// inverse applies qubit-by-qubit in O(n·2ⁿ).
class ReadoutMitigator {
 public:
  /// Builds the mitigator; requires p01 + p10 < 1 (otherwise the confusion
  /// matrix is singular or anti-diagonal-dominant and inversion is
  /// meaningless).
  static Result<ReadoutMitigator> Create(int num_qubits, double p01,
                                         double p10);

  int num_qubits() const { return num_qubits_; }

  /// Converts raw counts into a mitigated quasi-probability vector
  /// (entries can be slightly negative; they are clipped and renormalized).
  Result<DVector> MitigateCounts(const std::map<uint64_t, int>& counts) const;

  /// Mitigated ⟨Z_qubit⟩ from raw counts.
  Result<double> MitigatedExpectationZ(const std::map<uint64_t, int>& counts,
                                       int qubit) const;

 private:
  ReadoutMitigator(int num_qubits, double p01, double p10)
      : num_qubits_(num_qubits), p01_(p01), p10_(p10) {}

  int num_qubits_;
  double p01_;
  double p10_;
};

}  // namespace qdb

#endif  // QDB_MITIGATION_READOUT_H_
