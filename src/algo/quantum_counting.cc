#include "algo/quantum_counting.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "algo/phase_estimation.h"
#include "common/strings.h"
#include "sim/statevector_simulator.h"

namespace qdb {
namespace {

/// Appends the controlled phase flip of one system basis state: X-conjugate
/// the zero bits, then an MCZ whose control set includes `control`. The
/// X layers need no control — conjugation commutes with adding controls.
void AppendControlledStateFlip(Circuit& circuit, int control, int sys_offset,
                               int num_sys, uint64_t index) {
  std::vector<int> zero_bits;
  for (int q = 0; q < num_sys; ++q) {
    if (!(index & (uint64_t{1} << (num_sys - 1 - q)))) {
      zero_bits.push_back(sys_offset + q);
    }
  }
  for (int q : zero_bits) circuit.X(q);
  std::vector<int> controls = {control};
  for (int q = 0; q + 1 < num_sys; ++q) controls.push_back(sys_offset + q);
  circuit.MCZ(controls, sys_offset + num_sys - 1);
  for (int q : zero_bits) circuit.X(q);
}

/// Appends one controlled Grover iterate C-G, G = D·O with
/// O = I − 2Σ|m⟩⟨m| and D = I − 2|s⟩⟨s| (this library's convention;
/// G here equals −G_textbook, which shifts every eigenphase by π — the
/// decode formula below accounts for it).
void AppendControlledGrover(Circuit& circuit, int control, int sys_offset,
                            int num_sys,
                            const std::vector<uint64_t>& marked) {
  for (uint64_t m : marked) {
    AppendControlledStateFlip(circuit, control, sys_offset, num_sys, m);
  }
  for (int q = 0; q < num_sys; ++q) circuit.H(sys_offset + q);
  AppendControlledStateFlip(circuit, control, sys_offset, num_sys, 0);
  for (int q = 0; q < num_sys; ++q) circuit.H(sys_offset + q);
}

}  // namespace

Result<Circuit> QuantumCountingCircuit(int num_qubits,
                                       const std::vector<uint64_t>& marked,
                                       int precision_qubits) {
  if (num_qubits < 1 || num_qubits > 12) {
    return Status::InvalidArgument(
        StrCat("num_qubits must be in [1, 12], got ", num_qubits));
  }
  if (precision_qubits < 1 || precision_qubits > 10) {
    return Status::InvalidArgument(
        StrCat("precision_qubits must be in [1, 10], got ", precision_qubits));
  }
  if (marked.empty()) {
    return Status::InvalidArgument("need at least one marked state");
  }
  const uint64_t dim = uint64_t{1} << num_qubits;
  for (uint64_t m : marked) {
    if (m >= dim) {
      return Status::OutOfRange(StrCat("marked index ", m, " >= ", dim));
    }
  }
  const int t = precision_qubits;
  Circuit circuit(t + num_qubits);
  for (int a = 0; a < t; ++a) circuit.H(a);
  for (int q = 0; q < num_qubits; ++q) circuit.H(t + q);
  // Ancilla a (MSB of the reading) controls G^(2^{t−1−a}).
  for (int a = 0; a < t; ++a) {
    const uint64_t power = uint64_t{1} << (t - 1 - a);
    for (uint64_t rep = 0; rep < power; ++rep) {
      AppendControlledGrover(circuit, a, t, num_qubits, marked);
    }
  }
  Circuit iqft = InverseQftCircuit(t);
  std::vector<int> mapping(t);
  for (int a = 0; a < t; ++a) mapping[a] = a;
  circuit.AppendMapped(iqft, mapping);
  return circuit;
}

Result<CountEstimate> EstimateMarkedCount(int num_qubits,
                                          const std::vector<uint64_t>& marked,
                                          int precision_qubits, int shots,
                                          Rng& rng) {
  if (shots < 1) {
    return Status::InvalidArgument("shots must be >= 1");
  }
  QDB_ASSIGN_OR_RETURN(
      Circuit circuit,
      QuantumCountingCircuit(num_qubits, marked, precision_qubits));
  StateVectorSimulator sim;
  QDB_ASSIGN_OR_RETURN(StateVector state, sim.Run(circuit));
  auto counts = state.SampleCounts(rng, shots);

  // Aggregate over the ancilla register (top t qubits of the index).
  std::map<uint64_t, int> readings;
  for (const auto& [outcome, count] : counts) {
    readings[outcome >> num_qubits] += count;
  }
  uint64_t modal = 0;
  int modal_count = -1;
  for (const auto& [reading, count] : readings) {
    if (count > modal_count) {
      modal_count = count;
      modal = reading;
    }
  }

  const double n_states = static_cast<double>(uint64_t{1} << num_qubits);
  const double phase = static_cast<double>(modal) /
                       static_cast<double>(uint64_t{1} << precision_qubits);
  // This G equals −G_textbook: eigenphases are π ± 2θ instead of ±2θ, so
  // sin²θ = cos²(π·phase).
  const double fraction = std::pow(std::cos(M_PI * phase), 2);

  CountEstimate estimate;
  estimate.raw_reading = modal;
  estimate.estimated_fraction = fraction;
  estimate.estimated_count = fraction * n_states;
  estimate.oracle_calls =
      static_cast<long>(shots) *
      ((long{1} << precision_qubits) - 1);
  return estimate;
}

double ClassicalSampledFraction(int num_qubits,
                                const std::vector<uint64_t>& marked,
                                int samples, Rng& rng) {
  QDB_CHECK_GE(samples, 1);
  const uint64_t dim = uint64_t{1} << num_qubits;
  int hits = 0;
  for (int s = 0; s < samples; ++s) {
    const uint64_t key = rng.UniformInt(dim);
    hits += std::find(marked.begin(), marked.end(), key) != marked.end();
  }
  return static_cast<double>(hits) / samples;
}

}  // namespace qdb
