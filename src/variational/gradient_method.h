/// \file gradient_method.h
/// \brief Gradient-backend selector shared by the variational trainers.

#ifndef QDB_VARIATIONAL_GRADIENT_METHOD_H_
#define QDB_VARIATIONAL_GRADIENT_METHOD_H_

namespace qdb {

/// How variational trainers compute ∇E.
enum class GradientMethod {
  kAdjoint,         ///< Reverse-mode sweep: fastest, simulator-native.
  kParameterShift,  ///< Hardware-compatible two-evaluation rule.
};

}  // namespace qdb

#endif  // QDB_VARIATIONAL_GRADIENT_METHOD_H_
