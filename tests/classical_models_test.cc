// Tests for datasets, metrics, logistic regression, and kNN.

#include <gtest/gtest.h>

#include <cmath>

#include "classical/dataset.h"
#include "classical/knn.h"
#include "classical/logistic.h"
#include "classical/metrics.h"

namespace qdb {
namespace {

TEST(DatasetTest, GeneratorsProduceBalancedLabels) {
  Rng rng(1);
  for (auto make : {+[](Rng& r) { return MakeMoons(40, 0.1, r); },
                    +[](Rng& r) { return MakeCircles(40, 0.1, 0.5, r); },
                    +[](Rng& r) { return MakeXor(40, 0.2, r); },
                    +[](Rng& r) { return MakeBlobs(40, 2, 2.0, 0.5, r); }}) {
    Dataset d = make(rng);
    EXPECT_EQ(d.size(), 40u);
    EXPECT_EQ(d.num_features(), 2);
    int pos = 0;
    for (int y : d.labels) {
      ASSERT_TRUE(y == 1 || y == -1);
      pos += y == 1;
    }
    EXPECT_EQ(pos, 20);
  }
}

TEST(DatasetTest, XorIsNotLinearlySeparable) {
  Rng rng(3);
  Dataset d = MakeXor(200, 0.15, rng);
  auto model = LogisticRegression::Train(d);
  ASSERT_TRUE(model.ok());
  std::vector<int> preds;
  for (const auto& x : d.features) preds.push_back(model.value().Predict(x));
  EXPECT_LT(Accuracy(d.labels, preds), 0.7);  // A linear model fails on XOR.
}

TEST(DatasetTest, TrainTestSplitSizesAndContent) {
  Rng rng(5);
  Dataset d = MakeBlobs(50, 3, 2.0, 0.5, rng);
  auto [train, test] = TrainTestSplit(d, 0.2, rng);
  EXPECT_EQ(test.size(), 10u);
  EXPECT_EQ(train.size(), 40u);
  EXPECT_EQ(train.num_features(), 3);
}

TEST(DatasetTest, MinMaxScaleMapsToRange) {
  Rng rng(7);
  Dataset d = MakeMoons(30, 0.1, rng);
  MinMaxScale(d, d, 0.0, M_PI);
  for (const auto& row : d.features) {
    for (double v : row) {
      EXPECT_GE(v, -1e-12);
      EXPECT_LE(v, M_PI + 1e-12);
    }
  }
}

TEST(DatasetTest, MinMaxScaleUsesReferenceRanges) {
  Dataset ref;
  ref.features = {{0.0}, {10.0}};
  ref.labels = {1, -1};
  Dataset target;
  target.features = {{5.0}, {20.0}};
  target.labels = {1, -1};
  MinMaxScale(ref, target, 0.0, 1.0);
  EXPECT_NEAR(target.features[0][0], 0.5, 1e-12);
  EXPECT_NEAR(target.features[1][0], 2.0, 1e-12);  // Out-of-range passes through.
}

TEST(MetricsTest, AccuracyAndConfusion) {
  std::vector<int> labels = {1, 1, -1, -1, 1};
  std::vector<int> preds = {1, -1, -1, 1, 1};
  EXPECT_NEAR(Accuracy(labels, preds), 0.6, 1e-12);
  ConfusionMatrix cm = Confusion(labels, preds);
  EXPECT_EQ(cm.true_positive, 2);
  EXPECT_EQ(cm.false_negative, 1);
  EXPECT_EQ(cm.true_negative, 1);
  EXPECT_EQ(cm.false_positive, 1);
  EXPECT_NEAR(cm.Precision(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.Recall(), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cm.F1(), 2.0 / 3.0, 1e-12);
}

TEST(MetricsTest, DegenerateConfusionIsZeroNotNan) {
  std::vector<int> labels = {-1, -1};
  std::vector<int> preds = {-1, -1};
  ConfusionMatrix cm = Confusion(labels, preds);
  EXPECT_EQ(cm.Precision(), 0.0);
  EXPECT_EQ(cm.Recall(), 0.0);
  EXPECT_EQ(cm.F1(), 0.0);
}

TEST(MetricsTest, MeanSquaredError) {
  std::vector<int> labels = {1, -1};
  DVector scores = {0.5, -1.0};
  EXPECT_NEAR(MeanSquaredError(labels, scores), 0.125, 1e-12);
}

TEST(LogisticTest, SolvesSeparableBlobs) {
  Rng rng(9);
  Dataset d = MakeBlobs(60, 2, 4.0, 0.4, rng);
  auto model = LogisticRegression::Train(d);
  ASSERT_TRUE(model.ok());
  std::vector<int> preds;
  for (const auto& x : d.features) preds.push_back(model.value().Predict(x));
  EXPECT_NEAR(Accuracy(d.labels, preds), 1.0, 1e-12);
}

TEST(LogisticTest, ProbabilitiesAreCalibratedDirectionally) {
  Rng rng(11);
  Dataset d = MakeBlobs(60, 2, 4.0, 0.4, rng);
  auto model = LogisticRegression::Train(d);
  ASSERT_TRUE(model.ok());
  // Deep inside the positive blob the probability should be near 1.
  EXPECT_GT(model.value().ProbabilityPositive({2.0, 2.0}), 0.9);
  EXPECT_LT(model.value().ProbabilityPositive({-2.0, -2.0}), 0.1);
}

TEST(LogisticTest, RejectsEmptyData) {
  EXPECT_FALSE(LogisticRegression::Train(Dataset{}).ok());
}

TEST(KnnTest, MajorityVoteOnBlobs) {
  Rng rng(13);
  Dataset d = MakeBlobs(50, 2, 3.0, 0.5, rng);
  auto knn = KnnClassifier::Create(d, 5);
  ASSERT_TRUE(knn.ok());
  auto pred_pos = knn.value().Predict({1.5, 1.5});
  auto pred_neg = knn.value().Predict({-1.5, -1.5});
  ASSERT_TRUE(pred_pos.ok());
  ASSERT_TRUE(pred_neg.ok());
  EXPECT_EQ(pred_pos.value(), 1);
  EXPECT_EQ(pred_neg.value(), -1);
}

TEST(KnnTest, KOneMemorizesTrainingSet) {
  Rng rng(15);
  Dataset d = MakeMoons(30, 0.05, rng);
  auto knn = KnnClassifier::Create(d, 1);
  ASSERT_TRUE(knn.ok());
  for (size_t i = 0; i < d.size(); ++i) {
    auto p = knn.value().Predict(d.features[i]);
    ASSERT_TRUE(p.ok());
    EXPECT_EQ(p.value(), d.labels[i]);
  }
}

TEST(KnnTest, Validation) {
  EXPECT_FALSE(KnnClassifier::Create(Dataset{}, 1).ok());
  Rng rng(17);
  Dataset d = MakeBlobs(10, 2, 2.0, 0.5, rng);
  EXPECT_FALSE(KnnClassifier::Create(d, 0).ok());
  EXPECT_FALSE(KnnClassifier::Create(d, 11).ok());
  Dataset bad = d;
  bad.labels[0] = 0;
  EXPECT_FALSE(KnnClassifier::Create(bad, 3).ok());
  auto knn = KnnClassifier::Create(d, 3);
  ASSERT_TRUE(knn.ok());
  EXPECT_FALSE(knn.value().Predict({1.0}).ok());  // Dimension mismatch.
}

}  // namespace
}  // namespace qdb
