/// \file index_selection.h
/// \brief Index selection under a storage budget as QUBO (E10): choose a
/// subset of candidate indexes maximizing workload benefit, with pairwise
/// interaction terms (overlapping indexes yield diminishing returns) and a
/// slack-encoded budget constraint.

#ifndef QDB_DB_INDEX_SELECTION_H_
#define QDB_DB_INDEX_SELECTION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "common/rng.h"
#include "linalg/types.h"
#include "ops/qubo.h"

namespace qdb {

/// \brief One index-selection instance.
struct IndexSelectionInstance {
  DVector benefits;   ///< Per-index workload benefit (> 0).
  DVector sizes;      ///< Per-index storage size (> 0).
  double budget = 0;  ///< Storage budget.
  /// Pairwise interaction: selecting both i and j changes total benefit by
  /// `delta` (negative models redundancy between overlapping indexes).
  struct Interaction {
    int i, j;
    double delta;
  };
  std::vector<Interaction> interactions;

  int num_candidates() const { return static_cast<int>(benefits.size()); }

  /// Total benefit of a selection (bits 0/1), interactions included.
  double BenefitOf(const std::vector<uint8_t>& selection) const;

  /// Total size of a selection.
  double SizeOf(const std::vector<uint8_t>& selection) const;

  /// True when SizeOf ≤ budget.
  bool Feasible(const std::vector<uint8_t>& selection) const;
};

/// \brief Random instance: benefits in [10, 100], sizes in [1, 20], budget
/// = `budget_fraction` × total size, negative interactions with probability
/// `interaction_probability`.
IndexSelectionInstance RandomIndexInstance(int num_candidates,
                                           double budget_fraction,
                                           double interaction_probability,
                                           Rng& rng);

/// \brief QUBO: minimize −benefit(x) + penalty·max(0, size−budget)²
/// (the overflow is encoded exactly with binary slack variables:
/// Σ size_i x_i + Σ 2^k s_k = budget for feasible points).
class IndexSelectionQubo {
 public:
  static Result<IndexSelectionQubo> Create(
      const IndexSelectionInstance& instance, double penalty_weight = -1.0);

  const Qubo& qubo() const { return qubo_; }
  int num_slack_bits() const { return num_slack_; }

  /// Extracts the index-selection bits (dropping slack) and repairs budget
  /// overflow by dropping lowest benefit/size items until feasible.
  std::vector<uint8_t> Decode(const std::vector<uint8_t>& bits) const;

 private:
  IndexSelectionQubo(IndexSelectionInstance instance, Qubo qubo, int slack)
      : instance_(std::move(instance)),
        qubo_(std::move(qubo)),
        num_slack_(slack) {}

  IndexSelectionInstance instance_;
  Qubo qubo_;
  int num_slack_;
};

/// \brief Greedy baseline: add candidates by benefit/size ratio while the
/// budget allows (re-evaluating interactions incrementally).
std::vector<uint8_t> GreedyIndexSelection(const IndexSelectionInstance& instance);

/// \brief Exact optimum by enumeration (n ≤ 24).
Result<double> ExhaustiveIndexBenefit(const IndexSelectionInstance& instance);

}  // namespace qdb

#endif  // QDB_DB_INDEX_SELECTION_H_
