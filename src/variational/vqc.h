/// \file vqc.h
/// \brief Variational Quantum Classifier: data encoding + trainable ansatz,
/// read out as ⟨Z_0⟩, trained by parameter-shift gradients and Adam.

#ifndef QDB_VARIATIONAL_VQC_H_
#define QDB_VARIATIONAL_VQC_H_

#include <cstdint>

#include "circuit/circuit.h"
#include "classical/dataset.h"
#include "common/result.h"
#include "optimize/adam.h"
#include "sim/statevector_simulator.h"
#include "variational/ansatz.h"
#include "variational/gradient_method.h"

namespace qdb {

/// How classical features enter the circuit.
enum class VqcEncoding {
  kAngle,         ///< RY(x_i) per qubit, once.
  kZZFeatureMap,  ///< IQP-style ZZ feature map, then the ansatz.
  kReuploading,   ///< Angle encoding re-applied before every ansatz layer.
};

/// \brief VQC hyperparameters.
struct VqcOptions {
  VqcEncoding encoding = VqcEncoding::kAngle;
  int ansatz_layers = 2;
  Entanglement entanglement = Entanglement::kLinear;
  double feature_scale = 1.0;  ///< Multiplier on encoded feature angles.
  AdamOptions adam;
  GradientMethod gradient = GradientMethod::kAdjoint;
  uint64_t seed = 31;          ///< Initial-parameter draw.
  double init_scale = 0.3;     ///< θ₀ ~ U(−scale, scale).
  /// Simulator execution mode for the per-sample loss circuits. Training
  /// re-runs one circuit structure per sample every iteration, so the
  /// kAuto default compiles each once and replays from the cache.
  ExecutionMode execution = ExecutionMode::kAuto;
};

/// \brief A trained variational classifier over ±1 labels.
///
/// The decision function is sign⟨Z_0⟩ of the state produced by
/// encode(x) · ansatz(θ); training minimizes the mean squared error between
/// ⟨Z_0⟩ ∈ [−1, 1] and the ±1 label.
class VqcClassifier {
 public:
  /// Trains on `data` (features should be pre-scaled to roughly [0, π]).
  static Result<VqcClassifier> Train(const Dataset& data,
                                     const VqcOptions& options = {});

  /// ⟨Z_0⟩ ∈ [−1, 1] for a feature vector.
  Result<double> Score(const DVector& x) const;

  /// sign(Score) as ±1 (0 maps to +1).
  Result<int> Predict(const DVector& x) const;

  const DVector& params() const { return params_; }
  /// The hyperparameters the model was trained with — together with
  /// num_features() and params() these fully determine the inference
  /// circuit, so serving artifacts can be built from a trained model.
  const VqcOptions& options() const { return options_; }
  int num_features() const { return num_features_; }
  const DVector& loss_history() const { return loss_history_; }
  /// ‖∇L‖₂ per training iteration (barren-plateau diagnostics).
  const DVector& gradient_norm_history() const {
    return gradient_norm_history_;
  }
  /// Circuit executions through the expectation path. Note: with the
  /// default adjoint gradient backend, gradient sweeps bypass this counter
  /// (they are two state passes, not circuit evaluations); under
  /// kParameterShift every shifted evaluation is counted.
  long circuit_evaluations() const { return circuit_evaluations_; }

  /// The full circuit (data bound, θ symbolic) for a given sample — exposed
  /// so benches can report depth/width.
  Circuit BuildCircuit(const DVector& x) const;

 private:
  VqcClassifier() = default;

  VqcOptions options_;
  int num_features_ = 0;
  DVector params_;
  DVector loss_history_;
  DVector gradient_norm_history_;
  long circuit_evaluations_ = 0;
};

}  // namespace qdb

#endif  // QDB_VARIATIONAL_VQC_H_
