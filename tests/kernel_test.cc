// Tests for fidelity quantum kernels and alignment diagnostics.

#include <gtest/gtest.h>

#include <cmath>

#include "classical/dataset.h"
#include "kernel/alignment.h"
#include "kernel/quantum_kernel.h"
#include "linalg/eigen.h"

namespace qdb {
namespace {

std::vector<DVector> SmallDataset(int count, int dims, uint64_t seed) {
  Rng rng(seed);
  std::vector<DVector> xs(count, DVector(dims));
  for (auto& x : xs) {
    for (auto& v : x) v = rng.Uniform(0.0, M_PI);
  }
  return xs;
}

TEST(QuantumKernelTest, SelfKernelIsOne) {
  FidelityQuantumKernel kernel = MakeAngleKernel();
  const DVector x = {0.3, 1.1};
  auto k = kernel.Evaluate(x, x);
  ASSERT_TRUE(k.ok());
  EXPECT_NEAR(k.value(), 1.0, 1e-10);
}

TEST(QuantumKernelTest, KernelValuesInUnitInterval) {
  FidelityQuantumKernel kernel = MakeZZFeatureMapKernel(2);
  auto xs = SmallDataset(6, 2, 3);
  for (size_t i = 0; i < xs.size(); ++i) {
    for (size_t j = 0; j < xs.size(); ++j) {
      auto k = kernel.Evaluate(xs[i], xs[j]);
      ASSERT_TRUE(k.ok());
      EXPECT_GE(k.value(), -1e-12);
      EXPECT_LE(k.value(), 1.0 + 1e-12);
    }
  }
}

TEST(QuantumKernelTest, AngleKernelAnalyticValue) {
  // 1 feature, RY encoding: k(x, y) = cos²((x−y)/2).
  FidelityQuantumKernel kernel = MakeAngleKernel();
  const double x = 0.7, y = 1.9;
  auto k = kernel.Evaluate({x}, {y});
  ASSERT_TRUE(k.ok());
  const double expected = std::pow(std::cos((x - y) / 2.0), 2);
  EXPECT_NEAR(k.value(), expected, 1e-10);
}

class GramMatrixPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(GramMatrixPropertyTest, SymmetricUnitDiagonalPsd) {
  // Property: every fidelity Gram matrix is symmetric, has unit diagonal,
  // and is positive semidefinite.
  FidelityQuantumKernel kernel =
      GetParam() == 0 ? MakeAngleKernel()
      : GetParam() == 1 ? MakeZZFeatureMapKernel(1)
                        : MakeAmplitudeKernel();
  auto xs = SmallDataset(8, 2, 40 + GetParam());
  // Amplitude encoding rejects zero vectors; our samples are positive.
  auto gram = kernel.GramMatrix(xs);
  ASSERT_TRUE(gram.ok()) << gram.status();
  const Matrix& k = gram.value();
  for (size_t i = 0; i < k.rows(); ++i) {
    EXPECT_NEAR(k(i, i).real(), 1.0, 1e-10);
    for (size_t j = 0; j < k.cols(); ++j) {
      EXPECT_NEAR(k(i, j).real(), k(j, i).real(), 1e-12);
      EXPECT_NEAR(k(i, j).imag(), 0.0, 1e-12);
    }
  }
  auto psd = IsPositiveSemidefinite(k, 1e-7);
  ASSERT_TRUE(psd.ok());
  EXPECT_TRUE(psd.value());
}

INSTANTIATE_TEST_SUITE_P(Kernels, GramMatrixPropertyTest,
                         ::testing::Values(0, 1, 2));

TEST(QuantumKernelTest, CrossMatrixMatchesPairwiseEvaluation) {
  FidelityQuantumKernel kernel = MakeAngleKernel();
  auto train = SmallDataset(4, 2, 7);
  auto test = SmallDataset(3, 2, 8);
  auto cross = kernel.CrossMatrix(test, train);
  ASSERT_TRUE(cross.ok());
  for (size_t i = 0; i < test.size(); ++i) {
    for (size_t j = 0; j < train.size(); ++j) {
      auto direct = kernel.Evaluate(test[i], train[j]);
      ASSERT_TRUE(direct.ok());
      EXPECT_NEAR(cross.value()(i, j).real(), direct.value(), 1e-10);
    }
  }
}

TEST(QuantumKernelTest, CrossFromEncodedMatchesCrossMatrix) {
  // The serving hot path: reference states encoded once, reused across
  // request batches. Must agree with the from-scratch CrossMatrix.
  FidelityQuantumKernel kernel = MakeZZFeatureMapKernel();
  auto train = SmallDataset(4, 2, 9);
  auto test = SmallDataset(3, 2, 10);
  auto ref = kernel.EncodedStates(train);
  ASSERT_TRUE(ref.ok());
  auto fast = kernel.CrossFromEncoded(test, ref.value());
  auto full = kernel.CrossMatrix(test, train);
  ASSERT_TRUE(fast.ok() && full.ok());
  for (size_t i = 0; i < test.size(); ++i) {
    for (size_t j = 0; j < train.size(); ++j) {
      EXPECT_NEAR(fast.value()(i, j).real(), full.value()(i, j).real(),
                  1e-12);
    }
  }
  // Width mismatch between test encoding and reference states is caught.
  auto bad = kernel.CrossFromEncoded(SmallDataset(2, 3, 11), ref.value());
  EXPECT_FALSE(bad.ok());
}

TEST(QuantumKernelTest, EmptyInputsRejected) {
  FidelityQuantumKernel kernel = MakeAngleKernel();
  EXPECT_FALSE(kernel.GramMatrix({}).ok());
  EXPECT_FALSE(kernel.CrossMatrix({}, SmallDataset(2, 2, 1)).ok());
  EXPECT_FALSE(kernel.EncodedState({}).ok());
}

TEST(AlignmentTest, PerfectKernelAlignsToOne) {
  // K = yyᵀ (up to PSD scaling) has alignment exactly 1.
  std::vector<int> labels = {1, -1, 1, -1};
  Matrix k(4, 4);
  for (int i = 0; i < 4; ++i) {
    for (int j = 0; j < 4; ++j) {
      k(i, j) = Complex(labels[i] * labels[j], 0.0);
    }
  }
  auto a = KernelTargetAlignment(k, labels);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a.value(), 1.0, 1e-12);
}

TEST(AlignmentTest, AntiAlignedKernelIsNegative) {
  std::vector<int> labels = {1, -1};
  Matrix k(2, 2);
  k(0, 0) = k(1, 1) = Complex(1, 0);
  k(0, 1) = k(1, 0) = Complex(1, 0);  // Constant kernel: sees no structure.
  auto a = KernelTargetAlignment(k, labels);
  ASSERT_TRUE(a.ok());
  EXPECT_NEAR(a.value(), 0.0, 1e-12);  // ⟨K, yyᵀ⟩ = 2−2 = 0... constant.
}

TEST(AlignmentTest, InputValidation) {
  Matrix k = Matrix::Identity(3);
  EXPECT_FALSE(KernelTargetAlignment(k, {1, -1}).ok());         // Size.
  EXPECT_FALSE(KernelTargetAlignment(k, {1, 2, -1}).ok());      // Labels.
  EXPECT_FALSE(KernelTargetAlignment(Matrix(2, 3), {1, -1}).ok());
}

TEST(AlignmentTest, CenteredKernelRowSumsVanish) {
  Rng rng(9);
  Matrix k(5, 5);
  for (int i = 0; i < 5; ++i) {
    for (int j = i; j < 5; ++j) {
      double v = rng.Uniform(0.0, 1.0);
      k(i, j) = Complex(v, 0);
      k(j, i) = Complex(v, 0);
    }
  }
  auto centered = CenterKernel(k);
  ASSERT_TRUE(centered.ok());
  for (size_t i = 0; i < 5; ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < 5; ++j) row_sum += centered.value()(i, j).real();
    EXPECT_NEAR(row_sum, 0.0, 1e-10);
  }
}

TEST(AlignmentTest, CenteredAlignmentDetectsStructure) {
  // Labels follow feature sign; the angle kernel on well-separated points
  // should align positively once centered.
  std::vector<DVector> xs;
  std::vector<int> labels;
  for (int i = 0; i < 6; ++i) {
    const bool pos = i % 2 == 0;
    xs.push_back({pos ? 0.3 : 2.8});
    labels.push_back(pos ? 1 : -1);
  }
  auto gram = MakeAngleKernel().GramMatrix(xs);
  ASSERT_TRUE(gram.ok());
  auto alignment = CenteredKernelAlignment(gram.value(), labels);
  ASSERT_TRUE(alignment.ok());
  EXPECT_GT(alignment.value(), 0.5);
}

}  // namespace
}  // namespace qdb
