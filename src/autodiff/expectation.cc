#include "autodiff/expectation.h"

#include "common/strings.h"

namespace qdb {

ExpectationFunction::ExpectationFunction(Circuit circuit, PauliSum observable)
    : circuit_(std::move(circuit)), observable_(std::move(observable)) {
  QDB_CHECK_EQ(circuit_.num_qubits(), observable_.num_qubits());
}

void ExpectationFunction::set_initial_state(StateVector state) {
  QDB_CHECK_EQ(state.num_qubits(), circuit_.num_qubits());
  initial_state_ = std::move(state);
}

Result<double> ExpectationFunction::RunAndMeasure(const Circuit& circuit,
                                                  const DVector& params) const {
  StateVector state =
      initial_state_ ? *initial_state_ : StateVector(circuit.num_qubits());
  QDB_RETURN_IF_ERROR(simulator_.RunInPlace(circuit, state, params));
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  return Expectation(state, observable_);
}

Result<double> ExpectationFunction::Evaluate(const DVector& params) const {
  return RunAndMeasure(circuit_, params);
}

Result<Circuit> ExpectationFunction::ShiftedCircuit(size_t gate_index,
                                                    size_t slot,
                                                    double delta) const {
  if (gate_index >= circuit_.size()) {
    return Status::OutOfRange(StrCat("gate index ", gate_index, " out of range"));
  }
  Circuit rebuilt(circuit_.num_qubits());
  for (size_t i = 0; i < circuit_.gates().size(); ++i) {
    Gate g = circuit_.gates()[i];
    if (i == gate_index) {
      if (slot >= g.params.size()) {
        return Status::OutOfRange(StrCat("slot ", slot, " out of range"));
      }
      g.params[slot].offset += delta;
    }
    rebuilt.Append(g);
  }
  return rebuilt;
}

Result<double> ExpectationFunction::EvaluateWithShift(const DVector& params,
                                                      size_t gate_index,
                                                      size_t slot,
                                                      double delta) const {
  QDB_ASSIGN_OR_RETURN(Circuit rebuilt, ShiftedCircuit(gate_index, slot, delta));
  return RunAndMeasure(rebuilt, params);
}

Result<DVector> ExpectationFunction::EvaluateShiftBatch(
    const DVector& params, const std::vector<ShiftSpec>& shifts) const {
  std::vector<Circuit> circuits;
  circuits.reserve(shifts.size());
  for (const ShiftSpec& spec : shifts) {
    QDB_ASSIGN_OR_RETURN(
        Circuit c, ShiftedCircuit(spec.gate_index, spec.slot, spec.delta));
    circuits.push_back(std::move(c));
  }
  DVector values(shifts.size(), 0.0);
  const StateVector* initial = initial_state_ ? &*initial_state_ : nullptr;
  QDB_RETURN_IF_ERROR(simulator_.RunBatchReduce(
      circuits, {params}, initial,
      [this, &values](size_t i, StateVector&& state) {
        values[i] = Expectation(state, observable_);
        return Status::OK();
      }));
  evaluations_.fetch_add(static_cast<long>(shifts.size()),
                         std::memory_order_relaxed);
  return values;
}

Result<DVector> ExpectationFunction::EvaluateBatch(
    const std::vector<DVector>& params_list) const {
  DVector values(params_list.size(), 0.0);
  const StateVector* initial = initial_state_ ? &*initial_state_ : nullptr;
  QDB_RETURN_IF_ERROR(simulator_.RunBatchReduce(
      {circuit_}, params_list, initial,
      [this, &values](size_t i, StateVector&& state) {
        values[i] = Expectation(state, observable_);
        return Status::OK();
      }));
  evaluations_.fetch_add(static_cast<long>(params_list.size()),
                         std::memory_order_relaxed);
  return values;
}

}  // namespace qdb
