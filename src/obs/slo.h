/// \file slo.h
/// \brief Per-model service-level objectives with multi-window burn rates.
///
/// An SloTracker records (latency, ok/error) samples per model into bucketed
/// ring buffers — one ring per configured window — and reports, for each
/// window, the observed error rate, the latency-threshold violation rate,
/// and the *burn rate*: error_rate / error_budget, where the budget is
/// 1 − availability objective. Burn ≥ 1 means the model is consuming its
/// error budget at least as fast as the objective allows; multi-window
/// evaluation (the classic 5m + 1h pairing) makes the short window catch
/// fast regressions while the long window filters one-off blips.
///
/// The clock is injected (`now_us`, the caller's monotonic microseconds,
/// e.g. obs::TraceNowMicros()), so tests drive windows deterministically
/// without sleeping. Recording is one mutex-guarded bucket update; the
/// tracker is sized for a serving tier with tens of models, not a per-gate
/// hot path.

#ifndef QDB_OBS_SLO_H_
#define QDB_OBS_SLO_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace qdb {
namespace obs {

/// \brief Targets for one model. Defaults: 99.9% availability, no latency
/// objective (latency_threshold_us == 0 disables the latency dimension).
struct SloObjective {
  double availability = 0.999;      ///< Fraction of requests that must be ok.
  long latency_threshold_us = 0;    ///< 0 = no latency objective.
};

/// \brief Burn-rate report for one (model, window) pair.
struct SloWindowStatus {
  long window_s = 0;        ///< Window length in seconds.
  long total = 0;           ///< Samples currently inside the window.
  long errors = 0;          ///< Failed samples inside the window.
  long slow = 0;            ///< Samples over the latency threshold.
  double error_rate = 0.0;  ///< errors / total (0 when empty).
  double slow_rate = 0.0;   ///< slow / total (0 when empty).
  /// error_rate / (1 − availability objective). With the latency objective
  /// enabled, a slow-but-ok request also burns budget (worst of the two
  /// rates), matching "good request" SLI semantics.
  double burn_rate = 0.0;
};

/// \brief Full report for one model.
struct SloModelStatus {
  std::string model;
  SloObjective objective;
  std::vector<SloWindowStatus> windows;
  /// True when every window that has samples burns at ≥ 1.0 — the
  /// multi-window AND that pages only on sustained fast burn.
  bool breached = false;
};

/// \brief Tracks per-model SLO compliance over multiple look-back windows.
/// Thread-safe. Models are registered implicitly on first Record; objectives
/// can be set per model (SetObjective) or fall back to the default passed at
/// construction.
class SloTracker {
 public:
  /// `windows_s` must be non-empty, strictly increasing. Each window is
  /// divided into ~60 buckets (at least 1 s each) that age out as `now_us`
  /// advances.
  explicit SloTracker(SloObjective default_objective = SloObjective{},
                      std::vector<long> windows_s = {300, 3600});

  /// Overrides the objective for one model (affects future Report calls).
  void SetObjective(const std::string& model, SloObjective objective);

  /// Records one request outcome at injected time `now_us`.
  void Record(const std::string& model, long latency_us, bool ok,
              int64_t now_us);

  /// Burn-rate report for every model seen so far, sorted by model name.
  /// Also publishes slo.burn_rate{model,window} / slo.error_rate{...}
  /// gauges into the global MetricsRegistry so SLO state rides along in the
  /// ordinary metrics export.
  std::vector<SloModelStatus> Report(int64_t now_us) const;

  /// Report for a single model (empty windows if the model is unknown).
  SloModelStatus ReportModel(const std::string& model, int64_t now_us) const;

  /// Drops all recorded samples and objectives. Test helper.
  void Reset();

 private:
  /// One ring of per-bucket tallies covering one window.
  struct WindowRing {
    long window_s = 0;
    long bucket_s = 0;
    std::vector<long> total;
    std::vector<long> errors;
    std::vector<long> slow;
    std::vector<int64_t> bucket_index;  ///< Absolute bucket each slot holds.
  };

  struct ModelState {
    SloObjective objective;
    bool objective_set = false;
    std::vector<WindowRing> rings;
  };

  ModelState& StateLocked(const std::string& model);
  static void RecordInRing(WindowRing& ring, int64_t now_us, bool error,
                           bool slow);
  static SloWindowStatus SummarizeRing(const WindowRing& ring, int64_t now_us,
                                       const SloObjective& objective);
  SloModelStatus StatusLocked(const std::string& model,
                              const ModelState& state, int64_t now_us) const;

  const SloObjective default_objective_;
  const std::vector<long> windows_s_;

  mutable std::mutex mu_;
  std::map<std::string, ModelState> models_;
};

}  // namespace obs
}  // namespace qdb

#endif  // QDB_OBS_SLO_H_
