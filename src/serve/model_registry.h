/// \file model_registry.h
/// \brief Versioned store of servable models: register, look up (latest or
/// pinned version), evict, and persist to / restore from disk.
///
/// Registration turns an artifact into a ServableModel (validating it and
/// precomputing its inference path) and assigns the next version when the
/// artifact does not pin one. Lookups hand out shared_ptr<const
/// ServableModel>, so evicting a model never invalidates requests already
/// holding it — the servable dies when its last in-flight request drops it.

#ifndef QDB_SERVE_MODEL_REGISTRY_H_
#define QDB_SERVE_MODEL_REGISTRY_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/retry.h"
#include "serve/model_artifact.h"
#include "serve/servable.h"

namespace qdb {
namespace serve {

/// Retry policy LoadModel uses by default: a few quick attempts covering
/// transient read failures and torn reads that race an in-progress save
/// (the writer renames a complete file into place between attempts).
RetryPolicy DefaultArtifactLoadRetry();

/// One row of ModelRegistry::List.
struct ModelEntry {
  std::string name;
  int version = 0;
  ModelType type = ModelType::kVqcClassifier;
  int num_features = 0;
};

/// \brief Thread-safe name → version → servable map.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  /// Validates and loads `artifact`. version == 0 assigns (highest existing
  /// version) + 1; an explicitly pinned version that already exists fails
  /// with kAlreadyExists. Returns the loaded servable (with its assigned
  /// version and stamped circuit fingerprint).
  Result<std::shared_ptr<const ServableModel>> Register(ModelArtifact artifact);

  /// Looks up a model; version < 0 means "latest registered version".
  Result<std::shared_ptr<const ServableModel>> Lookup(const std::string& name,
                                                      int version = -1) const;

  /// Removes one version, or every version when version < 0. Fails with
  /// kNotFound if nothing matched. In-flight requests holding the servable
  /// are unaffected.
  Status Evict(const std::string& name, int version = -1);

  /// Every registered (name, version), sorted by name then version.
  std::vector<ModelEntry> List() const;

  /// Number of registered (name, version) pairs.
  size_t size() const;

  /// Serializes one registered model's artifact to `path` (the on-disk
  /// format of model_artifact.h).
  Status SaveModel(const std::string& name, int version,
                   const std::string& path) const;

  /// Loads an artifact file and registers it. The file's version is kept if
  /// free, otherwise registration fails with kAlreadyExists; pass
  /// reassign_version to force "next version" semantics instead. The read
  /// is retried under `retry` so a load racing a crash-safe save (or an
  /// injected transient fault) settles on the complete artifact.
  Result<std::shared_ptr<const ServableModel>> LoadModel(
      const std::string& path, bool reassign_version = false,
      const RetryPolicy& retry = DefaultArtifactLoadRetry());

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::map<int, std::shared_ptr<const ServableModel>>>
      models_;
};

}  // namespace serve
}  // namespace qdb

#endif  // QDB_SERVE_MODEL_REGISTRY_H_
