# Empty compiler generated dependencies file for join_order_quantum.
# This may be replaced when dependencies are built.
